"""Replay engine: execute a pseudo-application on a fresh testbed.

Each rank walks its script: charge the think time, perform the I/O.
``sync`` ops become real barriers when ``honor_sync`` is on — //TRACE's
dependency knowledge; with it off (no dependency information, e.g. heavy
sampling), ranks free-run on think times alone and can drift, degrading
end-to-end fidelity — the fidelity/overhead trade the paper describes
("user-control over replay accuracy by using sampling", §4.3).

Two documented timing policies (``timing=``):

``"preserve"`` (inter-arrival-preserving, the default)
    every op charges its recorded think time first, so the replay
    reproduces the source's pacing and its end-to-end run time is
    comparable to the original's (the paper's §3.1 fidelity check);
``"afap"`` (as fast as possible)
    think times are dropped and ops are issued back-to-back — the mode
    for stress-replaying an op schedule against a different simulated
    cluster, where only the op mix and byte totals are meant to carry
    over, not the wall time.

Either way the *op schedule* is identical: per-rank executed-op counts
and issued bytes — what :mod:`repro.replay.fidelity` compares against
the source — do not depend on the policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, Optional, Tuple

from repro.errors import ReplayDivergence, ReplayError, SimOSError
from repro.harness.testbed import TestbedConfig, build_testbed
from repro.replay.pseudoapp import PseudoApp, RankScript
from repro.simfs.vfs import O_CREAT, O_RDWR
from repro.simmpi.comm import MPIRank
from repro.simmpi.runtime import JobResult, mpirun

__all__ = ["RankReplayStats", "ReplayResult", "TIMING_POLICIES", "replay"]

TIMING_POLICIES = ("preserve", "afap")


@dataclass(frozen=True)
class RankReplayStats:
    """One rank's replay outcome: per-class executed ops and bytes.

    ``bytes_written``/``bytes_read`` are the bytes the simulated storage
    actually moved; ``issued_*`` are the bytes the script *requested*
    (what fidelity compares against the source trace — a read past EOF
    transfers less but was still issued exactly as scripted).  ``ops``
    counts executed script ops per kind; ``skipped`` counts script ops
    that could not execute (close/fsync with no open descriptor — the
    partial-capture case).  Both are sorted tuples so the dataclass stays
    hashable and canonical-JSON-stable.
    """

    rank: int
    bytes_written: int = 0
    bytes_read: int = 0
    issued_write_bytes: int = 0
    issued_read_bytes: int = 0
    ops: Tuple[Tuple[str, int], ...] = ()
    skipped: Tuple[Tuple[str, int], ...] = ()

    @property
    def bytes_moved(self) -> int:
        return self.bytes_written + self.bytes_read

    def ops_dict(self) -> Dict[str, int]:
        """Executed ops per kind, as a plain dict."""
        return dict(self.ops)

    def skipped_dict(self) -> Dict[str, int]:
        """Unexecutable ops per kind, as a plain dict."""
        return dict(self.skipped)


def _ensure_parents(proc, path: str) -> Generator[Any, Any, None]:
    """mkdir -p the directories above ``path`` on the replay machine.

    Traces carry file paths but not the mkdir history that created their
    directories (those may predate tracing); the replayer recreates them.
    These infrastructure mkdirs are *not* counted as executed ops — only
    script ops are, so fidelity op counts compare schedule to schedule.
    """
    parts = path.strip("/").split("/")[:-1]
    for depth in range(1, len(parts) + 1):
        prefix = "/" + "/".join(parts[:depth])
        try:
            yield from proc.mkdir(prefix)
        except Exception:
            pass  # exists, or is a mount point


def _replay_rank(mpi: MPIRank, args: Dict[str, Any]) -> Generator[Any, Any, RankReplayStats]:
    """The pseudo-application body for one rank."""
    app: PseudoApp = args["pseudoapp"]
    honor_sync: bool = args.get("honor_sync", True)
    preserve_timing: bool = args.get("timing", "preserve") == "preserve"
    script: Optional[RankScript] = app.scripts.get(mpi.rank)
    if script is None:
        return RankReplayStats(rank=mpi.rank)
    proc = mpi.proc
    fds: Dict[str, int] = {}
    made_dirs: set = set()
    written = read = issued_w = issued_r = 0
    executed: Dict[str, int] = {}
    skipped: Dict[str, int] = {}

    def _open(path: str) -> Generator[Any, Any, int]:
        parent = path.rsplit("/", 1)[0]
        if parent not in made_dirs:
            yield from _ensure_parents(proc, path)
            made_dirs.add(parent)
        fd = yield from proc.open(path, O_RDWR | O_CREAT)
        return fd

    for op in script.ops:
        if preserve_timing and op.think_time > 0:
            yield from proc._charge(op.think_time)
        if op.kind == "sync":
            if honor_sync:
                yield from mpi.barrier()
            executed["sync"] = executed.get("sync", 0) + 1
            continue
        if op.path is None:
            raise ReplayError("%s op without a path" % op.kind)
        if op.kind == "open":
            if op.path not in fds:
                fds[op.path] = yield from _open(op.path)
            executed["open"] = executed.get("open", 0) + 1
            continue
        if op.kind in ("close", "fsync"):
            fd = fds.get(op.path)
            if fd is None:
                skipped[op.kind] = skipped.get(op.kind, 0) + 1
                continue
            if op.kind == "close":
                yield from proc.close(fds.pop(op.path))
            else:
                yield from proc.fsync(fd)
            executed[op.kind] = executed.get(op.kind, 0) + 1
            continue
        if op.kind in ("stat", "unlink", "mkdir"):
            # Replayed metadata calls tolerate state divergence (a stat
            # of a never-replayed file, mkdir of an existing directory):
            # the op still executes — and is counted — even if the
            # simulated kernel answers with an errno, exactly as the
            # original's failed calls were still traced.
            try:
                if op.kind == "stat":
                    yield from proc.stat(op.path)
                elif op.kind == "unlink":
                    yield from proc.unlink(op.path)
                else:
                    yield from proc.mkdir(op.path)
            except SimOSError:
                pass
            executed[op.kind] = executed.get(op.kind, 0) + 1
            continue
        if op.kind in ("write", "read"):
            fd = fds.get(op.path)
            if fd is None:
                fd = fds[op.path] = yield from _open(op.path)
            nbytes = op.nbytes or 0
            if op.kind == "write":
                written += yield from proc.pwrite(fd, nbytes, op.offset or 0)
                issued_w += nbytes
            else:
                # Replayed reads hit whatever the replay wrote; reading
                # past EOF (never-written regions) is fine — size is what
                # the storage model charges for.
                read += yield from proc.pread(fd, nbytes, op.offset or 0)
                issued_r += nbytes
            executed[op.kind] = executed.get(op.kind, 0) + 1
            continue
        raise ReplayError("unknown replay op kind %r" % op.kind)
    for path in sorted(fds):
        yield from proc.close(fds[path])
    return RankReplayStats(
        rank=mpi.rank,
        bytes_written=written,
        bytes_read=read,
        issued_write_bytes=issued_w,
        issued_read_bytes=issued_r,
        ops=tuple(sorted(executed.items())),
        skipped=tuple(sorted(skipped.items())),
    )


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of replaying a pseudo-application."""

    elapsed: float
    bytes_replayed: int
    job: JobResult
    timing: str = "preserve"
    #: Kernel events the replay testbed executed — the determinism
    #: fingerprint and the numerator of ``zoo_replay_events_per_sec``.
    events_executed: int = 0

    @property
    def rank_stats(self) -> Tuple[RankReplayStats, ...]:
        return tuple(self.job.results)

    def op_counts(self) -> Dict[str, int]:
        """Executed script ops per kind, aggregated over ranks."""
        total: Dict[str, int] = {}
        for stats in self.job.results:
            for kind, n in stats.ops:
                total[kind] = total.get(kind, 0) + n
        return dict(sorted(total.items()))

    def skipped_counts(self) -> Dict[str, int]:
        """Script ops that could not execute, per kind, over all ranks."""
        total: Dict[str, int] = {}
        for stats in self.job.results:
            for kind, n in stats.skipped:
                total[kind] = total.get(kind, 0) + n
        return dict(sorted(total.items()))

    def issued_bytes(self) -> Dict[str, int]:
        """Requested payload bytes per direction, over all ranks."""
        return {
            "read": sum(s.issued_read_bytes for s in self.job.results),
            "write": sum(s.issued_write_bytes for s in self.job.results),
        }


def replay(
    app: PseudoApp,
    config: Optional[TestbedConfig] = None,
    seed: int = 0,
    honor_sync: bool = True,
    timing: str = "preserve",
) -> ReplayResult:
    """Run the pseudo-application on a fresh testbed.

    ``timing`` selects the documented policy: ``"preserve"`` charges
    every op's recorded think time (inter-arrival-preserving),
    ``"afap"`` drops them (as fast as possible).  See the module
    docstring for when each applies.

    When ``honor_sync`` is on, the rank scripts must agree on how many
    synchronization points they recorded: a partial capture (a crashed
    rank's truncated trace) would otherwise leave the surviving ranks
    blocked in a barrier the missing rank never reaches.  That case is
    detected *before* launch and reported as
    :class:`~repro.errors.ReplayDivergence` — replay reports divergence
    instead of hanging.
    """
    if timing not in TIMING_POLICIES:
        raise ReplayError(
            "unknown timing policy %r (known: %s)" % (timing, ", ".join(TIMING_POLICIES))
        )
    if honor_sync:
        sync_counts = {
            r: (
                sum(1 for op in app.scripts[r].ops if op.kind == "sync")
                if r in app.scripts
                else 0
            )
            for r in range(app.nprocs)
        }
        if len(set(sync_counts.values())) > 1:
            raise ReplayDivergence(sync_counts)
    tb = build_testbed(config, seed=seed)
    job = mpirun(
        tb.cluster,
        tb.vfs,
        _replay_rank,
        nprocs=app.nprocs,
        args={"pseudoapp": app, "honor_sync": honor_sync, "timing": timing},
    )
    return ReplayResult(
        elapsed=job.elapsed,
        bytes_replayed=sum(s.bytes_moved for s in job.results),
        job=job,
        timing=timing,
        events_executed=tb.sim.events_executed,
    )
