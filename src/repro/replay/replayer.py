"""Replay engine: execute a pseudo-application on a fresh testbed.

Each rank walks its script: charge the think time, perform the I/O.
``sync`` ops become real barriers when ``honor_sync`` is on — //TRACE's
dependency knowledge; with it off (no dependency information, e.g. heavy
sampling), ranks free-run on think times alone and can drift, degrading
end-to-end fidelity — the fidelity/overhead trade the paper describes
("user-control over replay accuracy by using sampling", §4.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, Optional

from repro.errors import ReplayDivergence, ReplayError
from repro.harness.testbed import TestbedConfig, build_testbed
from repro.replay.pseudoapp import PseudoApp, RankScript
from repro.simfs.vfs import O_CREAT, O_RDONLY, O_RDWR
from repro.simmpi.comm import MPIRank
from repro.simmpi.runtime import JobResult, mpirun

__all__ = ["ReplayResult", "replay"]


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of replaying a pseudo-application."""

    elapsed: float
    bytes_replayed: int
    job: JobResult


def _ensure_parents(proc, path: str) -> Generator[Any, Any, None]:
    """mkdir -p the directories above ``path`` on the replay machine.

    Traces carry file paths but not the mkdir history that created their
    directories (those may predate tracing); the replayer recreates them.
    """
    parts = path.strip("/").split("/")[:-1]
    for depth in range(1, len(parts) + 1):
        prefix = "/" + "/".join(parts[:depth])
        try:
            yield from proc.mkdir(prefix)
        except Exception:
            pass  # exists, or is a mount point


def _replay_rank(mpi: MPIRank, args: Dict[str, Any]) -> Generator[Any, Any, int]:
    """The pseudo-application body for one rank."""
    app: PseudoApp = args["pseudoapp"]
    honor_sync: bool = args.get("honor_sync", True)
    script: Optional[RankScript] = app.scripts.get(mpi.rank)
    if script is None:
        return 0
    proc = mpi.proc
    fds: Dict[str, int] = {}
    made_dirs: set = set()
    moved = 0
    for op in script.ops:
        if op.think_time > 0:
            yield from proc._charge(op.think_time)
        if op.kind == "sync":
            if honor_sync:
                yield from mpi.barrier()
            continue
        if op.kind == "open":
            if op.path is None:
                raise ReplayError("open op without a path")
            if op.path not in fds:
                parent = op.path.rsplit("/", 1)[0]
                if parent not in made_dirs:
                    yield from _ensure_parents(proc, op.path)
                    made_dirs.add(parent)
                fds[op.path] = yield from proc.open(op.path, O_RDWR | O_CREAT)
            continue
        if op.kind == "close":
            if op.path in fds:
                yield from proc.close(fds.pop(op.path))
            continue
        if op.kind == "fsync":
            if op.path in fds:
                yield from proc.fsync(fds[op.path])
            continue
        if op.kind in ("write", "read"):
            if op.path is None:
                raise ReplayError("%s op without a path" % op.kind)
            fd = fds.get(op.path)
            if fd is None:
                parent = op.path.rsplit("/", 1)[0]
                if parent not in made_dirs:
                    yield from _ensure_parents(proc, op.path)
                    made_dirs.add(parent)
                fd = fds[op.path] = yield from proc.open(op.path, O_RDWR | O_CREAT)
            nbytes = op.nbytes or 0
            if op.kind == "write":
                moved += yield from proc.pwrite(fd, nbytes, op.offset or 0)
            else:
                # Replayed reads hit whatever the replay wrote; reading
                # past EOF (never-written regions) is fine — size is what
                # the storage model charges for.
                got = yield from proc.pread(fd, nbytes, op.offset or 0)
                moved += got
            continue
        raise ReplayError("unknown replay op kind %r" % op.kind)
    for fd in fds.values():
        yield from proc.close(fd)
    return moved


def replay(
    app: PseudoApp,
    config: Optional[TestbedConfig] = None,
    seed: int = 0,
    honor_sync: bool = True,
) -> ReplayResult:
    """Run the pseudo-application on a fresh testbed.

    When ``honor_sync`` is on, the rank scripts must agree on how many
    synchronization points they recorded: a partial capture (a crashed
    rank's truncated trace) would otherwise leave the surviving ranks
    blocked in a barrier the missing rank never reaches.  That case is
    detected *before* launch and reported as
    :class:`~repro.errors.ReplayDivergence` — replay reports divergence
    instead of hanging.
    """
    if honor_sync:
        sync_counts = {
            r: (
                sum(1 for op in app.scripts[r].ops if op.kind == "sync")
                if r in app.scripts
                else 0
            )
            for r in range(app.nprocs)
        }
        if len(set(sync_counts.values())) > 1:
            raise ReplayDivergence(sync_counts)
    tb = build_testbed(config, seed=seed)
    job = mpirun(
        tb.cluster,
        tb.vfs,
        _replay_rank,
        nprocs=app.nprocs,
        args={"pseudoapp": app, "honor_sync": honor_sync},
    )
    return ReplayResult(
        elapsed=job.elapsed,
        bytes_replayed=sum(job.results),
        job=job,
    )
