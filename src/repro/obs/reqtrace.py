"""End-to-end request tracing for the TraceBank service.

The simulator's telemetry (:mod:`repro.obs.spans`) observes *simulated*
time; the service (PR 8) runs on the wall clock and, until now, was the
least-observed layer in the repo — a slow ingest crossed client → HTTP
front end → WAL append → commit worker → TraceBank with no causal
trail.  This module closes that loop ReLayTracer-style:

* **Trace context** — a ``traceparent``-style header
  (``00-<trace_id:32hex>-<span_id:16hex>-<flags>``) carried on every
  request.  The loadgen derives its ids deterministically from the load
  plan (:func:`make_context` over ``(seed, client, op)``), so a bench
  run's ids are reproducible and client-side spans join server-side
  spans by id alone.
* **Request spans** — every hop records a wall-clock span on one of the
  five component tracks (:data:`TRACKS`): the synthesized ``client``
  envelope, the ``http`` front end, the ``wal`` append + queue wait, the
  ``commit`` worker, and the ``bank`` ingest.  Parent links are explicit
  span ids, not interval containment — commit spans land *after* the
  202 response was written.
* **Span ring + tail exemplars** — finished traces live in a bounded
  in-memory ring (:class:`RequestTraceLog`); the N slowest per route are
  retained past eviction, which is what ``GET /v1/traces/slowest`` and
  ``repro obs reqtrace`` serve.
* **Export** — :func:`trace_to_chrome` renders one trace through the
  existing :mod:`repro.obs.perfetto` machinery (validated Chrome
  trace-event JSON, one Perfetto process row per component track);
  :func:`trace_flamegraph_lines` emits the same collapsed-stack format
  as :func:`repro.obs.critpath.flamegraph_lines`, reusing its
  :class:`~repro.obs.critpath.SpanNode` self-time accounting.

Timestamps are microseconds of server uptime (monotonic); ids are the
only thing two runs share, which is exactly the join the taxonomy's
cross-layer causality feature asks for.
"""

from __future__ import annotations

import hashlib
import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.critpath import SpanNode
from repro.obs.metrics import quantile_from_snapshot
from repro.obs.perfetto import to_chrome_trace
from repro.obs.spans import SpanRecorder

__all__ = [
    "REQTRACE_SCHEMA",
    "TRACKS",
    "TraceContext",
    "RequestTrace",
    "RequestTraceLog",
    "make_context",
    "child_span_id",
    "parse_traceparent",
    "trace_to_chrome",
    "trace_flamegraph_lines",
    "render_trace",
    "render_top",
]

REQTRACE_SCHEMA = "repro/obs/reqtrace/v1"

#: Component tracks a request crosses, in export (pid) order.
TRACKS: Tuple[str, ...] = ("client", "http", "wal", "commit", "bank")

_TRACK_PID = {name: i for i, name in enumerate(TRACKS)}


class TraceContext:
    """One ``traceparent`` triple: trace id, span id, flags."""

    __slots__ = ("trace_id", "span_id", "flags")

    def __init__(self, trace_id: str, span_id: str, flags: str = "01"):
        self.trace_id = trace_id
        self.span_id = span_id
        self.flags = flags

    def header(self) -> str:
        """The wire form: ``00-<trace_id>-<span_id>-<flags>``."""
        return "00-%s-%s-%s" % (self.trace_id, self.span_id, self.flags)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "TraceContext(%s)" % self.header()


def make_context(*parts: Any) -> TraceContext:
    """A deterministic trace context derived from ``parts``.

    The loadgen calls this with ``("repro-loadgen", seed, client, op)``
    so the same plan always deals the same trace ids; the server calls
    it with a per-process nonce for requests that arrive without a
    ``traceparent`` header.
    """
    digest = hashlib.sha256(
        ":".join(str(p) for p in parts).encode("utf-8")
    ).hexdigest()
    return TraceContext(trace_id=digest[:32], span_id=digest[32:48])


def child_span_id(trace_id: str, name: str, seq: int = 0) -> str:
    """A deterministic 16-hex child span id unique per (trace, name, seq)."""
    return hashlib.sha256(
        ("%s:%s:%d" % (trace_id, name, seq)).encode("utf-8")
    ).hexdigest()[:16]


def parse_traceparent(value: Optional[str]) -> Optional[TraceContext]:
    """Parse a ``traceparent`` header; ``None`` for absent/malformed ones.

    A malformed header must not fail the request — the trail simply
    starts server-side, exactly as if the client sent nothing.
    """
    if not value:
        return None
    parts = value.strip().lower().split("-")
    if len(parts) != 4:
        return None
    version, trace_id, span_id, flags = parts
    if len(version) != 2 or len(trace_id) != 32 or len(span_id) != 16:
        return None
    try:
        int(trace_id, 16), int(span_id, 16), int(version, 16), int(flags, 16)
    except ValueError:
        return None
    if trace_id == "0" * 32 or span_id == "0" * 16:
        return None
    return TraceContext(trace_id=trace_id, span_id=span_id, flags=flags or "01")


class RequestTrace:
    """One request's accumulating span chain (mutable until exported)."""

    __slots__ = (
        "trace_id", "client_span_id", "route", "tenant", "status",
        "wall_us", "queue_depth", "spans", "_seq",
    )

    def __init__(self, trace_id: str, client_span_id: str):
        self.trace_id = trace_id
        self.client_span_id = client_span_id
        self.route = "other"
        self.tenant: Optional[str] = None
        self.status = 0
        self.wall_us = 0
        self.queue_depth = 0
        self.spans: List[Dict[str, Any]] = []
        self._seq = 0

    def add(
        self,
        track: str,
        name: str,
        ts: float,
        dur: float,
        parent_span_id: Optional[str] = None,
        args: Optional[Dict[str, Any]] = None,
    ) -> str:
        """Record one finished span; returns its span id for chaining.

        ``ts``/``dur`` are server-uptime seconds; stored as integer µs.
        """
        span_id = child_span_id(self.trace_id, name, self._seq)
        self._seq += 1
        span: Dict[str, Any] = {
            "track": track,
            "name": name,
            "ts_us": int(round(ts * 1e6)),
            "dur_us": max(0, int(round(dur * 1e6))),
            "span_id": span_id,
            "parent_span_id": parent_span_id or self.client_span_id,
        }
        if args:
            span["args"] = dict(args)
        self.spans.append(span)
        return span_id

    def report(self) -> Dict[str, Any]:
        """The canonical ``repro/obs/reqtrace/v1`` dict for this trace.

        The ``client`` envelope span is synthesized here — its id is the
        span id the client sent, its interval covers every recorded
        span, so it is correct whether or not the async commit has
        landed yet.
        """
        spans = sorted(
            self.spans,
            key=lambda s: (s["ts_us"], _TRACK_PID.get(s["track"], 99), s["name"]),
        )
        if spans:
            t0 = min(s["ts_us"] for s in spans)
            t1 = max(s["ts_us"] + s["dur_us"] for s in spans)
        else:  # pragma: no cover - the http span always exists
            t0 = t1 = 0
        client_span = {
            "track": "client",
            "name": "client.request",
            "ts_us": t0,
            "dur_us": t1 - t0,
            "span_id": self.client_span_id,
            "parent_span_id": None,
        }
        return {
            "schema": REQTRACE_SCHEMA,
            "trace_id": self.trace_id,
            "route": self.route,
            "tenant": self.tenant,
            "status": self.status,
            "wall_us": self.wall_us,
            "queue_depth": self.queue_depth,
            "spans": [client_span] + spans,
        }

    def summary(self) -> Dict[str, Any]:
        """The one-line form the slowest listing serves."""
        return {
            "trace_id": self.trace_id,
            "route": self.route,
            "tenant": self.tenant,
            "status": self.status,
            "wall_us": self.wall_us,
            "n_spans": len(self.spans) + 1,
        }


class RequestTraceLog:
    """Bounded span ring + per-route slowest-trace retention.

    ``finish()`` appends a completed request to the ring (evicting the
    oldest once ``ring_size`` is reached) and promotes it into the
    per-route top-``slowest_per_route`` table when it qualifies; commit
    workers keep attaching spans to a trace for as long as either
    structure still holds it.  Thread-safe — the HTTP loop and the
    executor threads both touch it.
    """

    def __init__(self, ring_size: int = 512, slowest_per_route: int = 8):
        self.ring_size = max(1, int(ring_size))
        self.slowest_per_route = max(1, int(slowest_per_route))
        self._lock = threading.Lock()
        self._ring: List[str] = []
        self._traces: Dict[str, RequestTrace] = {}
        #: route -> [(wall_us, trace_id)] sorted slowest-first.
        self._slowest: Dict[str, List[Tuple[int, str]]] = {}
        self.finished = 0
        self.evicted = 0

    def finish(self, trace: RequestTrace) -> None:
        """Register one completed request (response already written)."""
        with self._lock:
            self.finished += 1
            self._traces[trace.trace_id] = trace
            self._ring.append(trace.trace_id)
            route_top = self._slowest.setdefault(trace.route, [])
            route_top.append((trace.wall_us, trace.trace_id))
            route_top.sort(key=lambda wt: (-wt[0], wt[1]))
            del route_top[self.slowest_per_route:]
            while len(self._ring) > self.ring_size:
                victim = self._ring.pop(0)
                self.evicted += 1
                if not self._is_retained(victim):
                    self._traces.pop(victim, None)

    def _is_retained(self, trace_id: str) -> bool:
        return any(
            trace_id == tid
            for top in self._slowest.values()
            for _w, tid in top
        ) or trace_id in self._ring

    def get(self, trace_id: str) -> Optional[RequestTrace]:
        """The live trace object for an id still in the ring/exemplars."""
        with self._lock:
            return self._traces.get(trace_id)

    def attach(
        self,
        trace_id: str,
        track: str,
        name: str,
        ts: float,
        dur: float,
        parent_span_id: Optional[str] = None,
        args: Optional[Dict[str, Any]] = None,
    ) -> Optional[str]:
        """Append one post-response span (commit workers); None if evicted."""
        with self._lock:
            trace = self._traces.get(trace_id)
            if trace is None:
                return None
            return trace.add(track, name, ts, dur, parent_span_id, args)

    def slowest(
        self, route: Optional[str] = None, limit: Optional[int] = None
    ) -> List[Dict[str, Any]]:
        """Slowest-trace summaries, slowest first (optionally one route)."""
        with self._lock:
            if route is not None:
                pairs = list(self._slowest.get(route, []))
            else:
                pairs = sorted(
                    (wt for top in self._slowest.values() for wt in top),
                    key=lambda wt: (-wt[0], wt[1]),
                )
            out = []
            for _wall, tid in pairs[: (limit or self.slowest_per_route)]:
                trace = self._traces.get(tid)
                if trace is not None:
                    out.append(trace.summary())
            return out

    def stats(self) -> Dict[str, int]:
        """Ring occupancy counters for ``/v1/stats``."""
        with self._lock:
            return {
                "ring": len(self._ring),
                "ring_size": self.ring_size,
                "retained": len(self._traces),
                "finished": self.finished,
                "evicted": self.evicted,
            }


# -- export -------------------------------------------------------------------


def trace_to_chrome(report: Dict[str, Any]) -> Dict[str, Any]:
    """One reqtrace report as validated-shape Chrome trace-event JSON.

    Rendered through the same :class:`~repro.obs.spans.SpanRecorder` +
    :func:`~repro.obs.perfetto.to_chrome_trace` path the simulator uses
    — one Perfetto process row per component track, span args carrying
    the span/parent ids so the causal chain is inspectable in the UI.
    """
    rec = SpanRecorder()
    for i, track in enumerate(TRACKS):
        rec.name_track(i, track, 0, report["trace_id"][:8])
    for span in report.get("spans", []):
        pid = _TRACK_PID.get(span["track"], len(TRACKS))
        if pid == len(TRACKS):  # pragma: no cover - unknown track guard
            rec.name_track(pid, str(span["track"]), 0, report["trace_id"][:8])
        args = {
            "span_id": span["span_id"],
            "parent_span_id": span.get("parent_span_id") or "",
            "trace_id": report["trace_id"],
        }
        for k, v in (span.get("args") or {}).items():
            args[k] = v
        rec.complete(
            pid, 0, span["name"], "service",
            span["ts_us"] / 1e6, span["dur_us"] / 1e6, args,
        )
    return to_chrome_trace(rec)


def _span_tree(report: Dict[str, Any]) -> Tuple[List[SpanNode], Dict[int, str]]:
    """Explicit-parent span forest (critpath ``SpanNode``s) + track map.

    The track map is keyed by ``id(node)`` — ``SpanNode`` is slotted, so
    the component track rides alongside rather than on the node.
    """
    nodes: Dict[str, SpanNode] = {}
    tracks: Dict[int, str] = {}
    for span in report.get("spans", []):
        node = SpanNode(
            span["name"], "service", span["ts_us"] / 1e6, span["dur_us"] / 1e6
        )
        nodes[span["span_id"]] = node
        tracks[id(node)] = span["track"]
    roots: List[SpanNode] = []
    for span in report.get("spans", []):
        parent = span.get("parent_span_id")
        node = nodes[span["span_id"]]
        if parent and parent in nodes and nodes[parent] is not node:
            nodes[parent].children.append(node)
        else:
            roots.append(node)
    return roots, tracks


def trace_flamegraph_lines(report: Dict[str, Any]) -> List[str]:
    """Collapsed-stack lines for one trace, self-time-weighted in µs.

    Same format as :func:`repro.obs.critpath.flamegraph_lines` (sorted,
    integer-µs weights, zero-weight stacks dropped), with the route as
    the root frame and explicit parent links instead of interval
    containment supplying the nesting.
    """
    roots, _tracks = _span_tree(report)
    weights: Dict[str, int] = {}

    def add(prefix: str, node: SpanNode) -> None:
        stack = "%s;%s" % (prefix, node.name.replace(";", ","))
        us = int(round(node.self_time * 1e6))
        if us > 0:
            weights[stack] = weights.get(stack, 0) + us
        for child in sorted(node.children, key=lambda n: (n.ts, n.name)):
            add(stack, child)

    prefix = str(report.get("route") or "other")
    for root in sorted(roots, key=lambda n: (n.ts, n.name)):
        add(prefix, root)
    return ["%s %d" % (stack, us) for stack, us in sorted(weights.items())]


def render_trace(report: Dict[str, Any]) -> str:
    """Human-readable rendering of one request trace (indented chain)."""
    lines: List[str] = []
    title = "request %s  route=%s tenant=%s status=%s wall=%.3f ms" % (
        report["trace_id"][:16],
        report.get("route"),
        report.get("tenant") or "-",
        report.get("status"),
        report.get("wall_us", 0) / 1e3,
    )
    lines.append(title)
    lines.append("=" * len(title))
    roots, tracks = _span_tree(report)

    def walk(node: SpanNode, depth: int) -> None:
        lines.append(
            "  %s%-26s [%-6s] t=%9.3f ms  dur=%9.3f ms  self=%9.3f ms"
            % ("  " * depth, node.name, tracks.get(id(node), "?"),
               node.ts * 1e3, node.dur * 1e3, node.self_time * 1e3)
        )
        for child in sorted(node.children, key=lambda n: (n.ts, n.name)):
            walk(child, depth + 1)

    for root in sorted(roots, key=lambda n: (n.ts, n.name)):
        walk(root, 0)
    crossed = sorted(
        {s["track"] for s in report.get("spans", [])},
        key=lambda t: _TRACK_PID.get(t, 99),
    )
    lines.append("tracks crossed: %s" % " -> ".join(crossed))
    return "\n".join(lines) + "\n"


# -- live dashboard (repro obs top) ------------------------------------------


def _route_rows(metrics: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Per-route latency rows from ``service.request_seconds{...}``."""
    hists: Dict[str, Any] = metrics.get("histograms") or {}
    rows: List[Dict[str, Any]] = []
    for key in sorted(hists):
        if not key.startswith("service.route_seconds{route="):
            continue
        route = key[len("service.route_seconds{route="):].rstrip("}")
        h = hists[key]
        rows.append(
            {
                "route": route,
                "count": int(h.get("count", 0)),
                "p50_ms": quantile_from_snapshot(h, 0.50) * 1e3,
                "p99_ms": quantile_from_snapshot(h, 0.99) * 1e3,
            }
        )
    return rows


def render_top(
    stats: Dict[str, Any],
    metrics: Dict[str, Any],
    slowest: List[Dict[str, Any]],
    prev_counters: Optional[Dict[str, Any]] = None,
    interval: Optional[float] = None,
) -> str:
    """One frame of the live operational dashboard (``repro obs top``).

    ``stats``/``metrics`` are the ``/v1/stats`` and ``/v1/metrics``
    bodies; ``slowest`` the ``/v1/traces/slowest`` listing.  When the
    previous poll's counters and the poll interval are given, the frame
    carries a live req/s figure; the first frame shows totals only.
    """
    counters: Dict[str, Any] = metrics.get("counters") or {}
    lines: List[str] = []
    uptime = float(metrics.get("end_time", 0.0))
    total = int(counters.get("service.requests", 0))
    rate = ""
    if prev_counters is not None and interval and interval > 0:
        delta = total - int(prev_counters.get("service.requests", 0))
        rate = "  %8.1f req/s" % (delta / interval)
    queue = stats.get("queue") or {}
    title = "repro service — up %8.1f s   %d requests%s" % (uptime, total, rate)
    lines.append(title)
    lines.append("=" * len(title))
    lines.append(
        "queue %d/%d in flight   committed %d   discarded %d   tenants %d"
        % (
            int(queue.get("depth", 0)),
            int(queue.get("capacity", 0)),
            int(queue.get("committed", 0)),
            int(queue.get("discarded", 0)),
            int(stats.get("tenants", len(stats.get("per_tenant", {}) or {}))),
        )
    )
    statuses = sorted(
        (k[len("service.status."):], v)
        for k, v in counters.items()
        if k.startswith("service.status.") and not k.endswith("xx")
    )
    if statuses:
        lines.append(
            "status mix: "
            + "  ".join("%s=%d" % (code, n) for code, n in statuses)
        )
    rows = _route_rows(metrics)
    if rows:
        lines.append("%-10s %10s %12s %12s" % ("route", "count", "p50 ms", "p99 ms"))
        for row in rows:
            lines.append(
                "%-10s %10d %12.3f %12.3f"
                % (row["route"], row["count"], row["p50_ms"], row["p99_ms"])
            )
    if slowest:
        lines.append("slowest requests:")
        for s in slowest[:8]:
            lines.append(
                "  %s  %-8s %-10s %4s %10.3f ms  (%d spans)"
                % (
                    s["trace_id"][:16],
                    s.get("route"),
                    s.get("tenant") or "-",
                    s.get("status"),
                    s.get("wall_us", 0) / 1e3,
                    s.get("n_spans", 0),
                )
            )
    return "\n".join(lines) + "\n"
