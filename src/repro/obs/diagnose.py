"""Archive-scale anomaly diagnosis over a TraceBank.

DIO-style automated diagnosis (PAPERS.md): instead of eyeballing one
run, fingerprint *every* archived run, find the ones that do not look
like their peers, and explain each with a causal slice
(:mod:`repro.obs.slice`).  The pipeline:

1. **Fingerprint** each run by its DFG shape (the directly-follows edge
   set over per-``(run, rank)`` op sequences) plus its per-layer
   self-time vector, read with column-projected scans where the archive
   is columnar — runs never re-execute.
2. **Group** runs by their workload identity (framework, workload, args,
   nprocs) — only peers are comparable — and **cluster** them globally
   by fingerprint distance (edge-set Jaccard + normalized layer-vector
   L1), so a sweep over thousands of runs reads as a handful of shapes.
3. **Score** each run against its group with the repo's median/MAD
   machinery (:mod:`repro.obs.baseline`): elapsed time, per-layer self
   seconds, and the straggler spread all gate with
   ``max(k*1.4826*MAD, rel_floor*|median|, abs_floor)``.  With
   ``--against`` the reference is a single pinned baseline run instead
   of the group median.
4. **Auto-slice** every outlier (straggler anchor) and emit the ranked
   "suspect layer + suspect op + suspect rank" report.

Per-run work fans out over :func:`~repro.harness.parallel.parallel_map`
and merges in sorted-run order, so the ``repro/obs/diagnose/v1`` report
is byte-identical across ``jobs=1``/``jobs=N`` and cold/warm cache.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import StoreError, TelemetryError
from repro.obs.baseline import mad, median, robust_threshold
from repro.obs.critpath import build_forest, stack_layer
from repro.obs.metrics import canonical_json
from repro.obs.slice import MAX_CHAIN_ROOTS, slice_from_store

__all__ = [
    "DIAGNOSE_SCHEMA",
    "fingerprint_run",
    "fingerprint_distance",
    "cluster_fingerprints",
    "diagnose_archive",
    "render_diagnose",
]

DIAGNOSE_SCHEMA = "repro/obs/diagnose/v1"

#: Manifest meta keys that define "the same experiment" — runs are only
#: scored against peers sharing all of them.  Scenario / seed / status
#: are deliberately excluded: those are the axes anomalies live on.
GROUP_KEYS = (
    "kind",
    "framework",
    "framework_params",
    "workload",
    "workload_args",
    "nprocs",
)

#: Default robust-scoring knobs.  The simulator is deterministic, so the
#: relative floor is tight — a few percent of the group median is
#: already a real behaviour change; the absolute floor absorbs float
#: noise on near-zero layers.
DEFAULT_K = 4.0
DEFAULT_REL_FLOOR = 0.05
DEFAULT_ABS_FLOOR = 1e-4

#: Default fingerprint-distance radius for clustering.
DEFAULT_EPS = 0.25

#: Groups smaller than this have no meaningful median (unless --against
#: pins an external reference).
MIN_GROUP = 3


# -- fingerprints ------------------------------------------------------------


def _segment_seq(bank, sha: str) -> List[Tuple[str, str, float, float]]:
    """One segment's ``(name, layer, ts, dur)`` sequence, capture order.

    Columnar segments project just the four columns the fingerprint
    needs; v1 segments fall back to a full row decode.
    """
    from repro.store.segments import decode_segment
    from repro.trace.columnar import is_columnar, read_columns

    blob = bank.read_segment_blob(sha)
    if is_columnar(blob):
        cols = read_columns(blob, ("name", "layer", "timestamp", "duration"))
        return [
            (cols["name"][i], cols["layer"][i],
             cols["timestamp"][i] or 0.0, cols["duration"][i] or 0.0)
            for i in range(len(cols["name"]))
        ]
    tf = decode_segment(blob, expected_sha=sha)
    return [
        (e.name, e.layer.value, e.timestamp or 0.0, e.duration or 0.0)
        for e in tf.events
    ]


def fingerprint_run(bank, run_id: str) -> Dict[str, Any]:
    """One run's diagnosis fingerprint, straight from archived segments.

    DFG shape (edge set + per-edge mean gap), per-layer self-time vector
    (span containment recovered per rank, exactly the critpath rules),
    per-op totals, and per-rank completion profile.  Timestamps are
    shifted to the run's first event so fingerprints from different
    capture epochs compare.
    """
    m = bank.manifest(run_id)
    per_rank: Dict[int, List[Tuple[str, str, float, float]]] = {}
    edges: Dict[str, int] = {}
    edge_gaps: Dict[str, List[float]] = {}
    for seg in m.segments:
        seq = _segment_seq(bank, seg.sha256)
        per_rank.setdefault(seg.rank, []).extend(seq)
        for (a, _la, a_ts, a_dur), (b, _lb, b_ts, _bd) in zip(seq, seq[1:]):
            key = "%s->%s" % (a, b)
            edges[key] = edges.get(key, 0) + 1
            cell = edge_gaps.setdefault(key, [0.0])
            cell[0] += b_ts - (a_ts + a_dur)

    origin = min(
        (ts for seq in per_rank.values() for (_n, _l, ts, _d) in seq),
        default=0.0,
    )
    spans = [
        (0, rank, name, layer, ts - origin, dur)
        for rank in sorted(per_rank)
        for (name, layer, ts, dur) in per_rank[rank]
    ]
    forest = build_forest(spans)

    layers: Dict[str, float] = {}
    ops: Dict[str, Dict[str, float]] = {}
    ranks: List[Dict[str, Any]] = []
    for track in sorted(forest):
        _pid, rank = track
        end = 0.0
        self_total = 0.0
        rank_layers: Dict[str, float] = {}
        stack = list(forest[track])
        while stack:
            node = stack.pop()
            stack.extend(node.children)
            end = max(end, node.end)
            layer = stack_layer(node.cat, node.name)
            self_t = node.self_time
            self_total += self_t
            rank_layers[layer] = rank_layers.get(layer, 0.0) + self_t
            layers[layer] = layers.get(layer, 0.0) + self_t
            cell = ops.setdefault(node.name, {"count": 0, "total": 0.0, "self": 0.0})
            cell["count"] += 1
            cell["total"] += node.dur
            cell["self"] += self_t
        ranks.append(
            {
                "rank": rank,
                "end": end,
                "self": self_total,
                "layers": {k: v for k, v in sorted(rank_layers.items())},
            }
        )

    fingerprint = {
        "run_id": m.run_id,
        "meta": {
            k: m.meta[k]
            for k in ("kind", "scenario", "status", "framework", "workload",
                      "nprocs", "seed")
            if k in m.meta
        },
        "group": canonical_json({k: m.meta.get(k) for k in GROUP_KEYS}),
        "n_events": m.n_events,
        "elapsed": max((r["end"] for r in ranks), default=0.0),
        "layers": {k: v for k, v in sorted(layers.items())},
        "ops": {k: ops[k] for k in sorted(ops)},
        "edges": {k: edges[k] for k in sorted(edges)},
        "edge_mean_gap": {
            k: edge_gaps[k][0] / edges[k] for k in sorted(edge_gaps)
        },
        "ranks": ranks,
    }
    return json.loads(canonical_json(fingerprint))


def _fingerprint_task(task: Tuple[str, str]) -> Dict[str, Any]:
    """Parallel-map worker entry: fingerprint one archived run."""
    root, run_id = task
    from repro.store.bank import TraceBank

    return fingerprint_run(TraceBank(root, create=False), run_id)


def _slice_task(task: Tuple[str, str, int]) -> Optional[Dict[str, Any]]:
    """Parallel-map worker entry: auto-slice one outlier (straggler)."""
    root, run_id, max_roots = task
    from repro.store.bank import TraceBank

    try:
        return slice_from_store(
            TraceBank(root, create=False), run_id, anchor="straggler",
            max_roots=max_roots,
        )
    except (TelemetryError, StoreError):
        return None


# -- distance + clustering ---------------------------------------------------


def fingerprint_distance(a: Dict[str, Any], b: Dict[str, Any]) -> float:
    """Distance in ``[0, 1]``: DFG-shape Jaccard + layer-vector L1.

    Half the weight is *which ops follow which* (edge-set Jaccard
    distance), half is *where the time went* (L1 between the normalized
    per-layer self-time vectors).
    """
    ea, eb = set(a["edges"]), set(b["edges"])
    union = ea | eb
    shape = 1.0 - (len(ea & eb) / len(union)) if union else 0.0
    la, lb = a["layers"], b["layers"]
    ta = sum(la.values()) or 1.0
    tb = sum(lb.values()) or 1.0
    l1 = sum(
        abs(la.get(k, 0.0) / ta - lb.get(k, 0.0) / tb) for k in set(la) | set(lb)
    )
    return 0.5 * shape + 0.5 * (l1 / 2.0)


def cluster_fingerprints(
    fingerprints: List[Dict[str, Any]], eps: float = DEFAULT_EPS
) -> List[Dict[str, Any]]:
    """Greedy leader clustering in run-id order (deterministic).

    Each run joins the first cluster whose *leader* (first member) is
    within ``eps``; otherwise it founds a new cluster.  Cheap, stable,
    and good enough to read a thousand-run archive as a few shapes.
    """
    clusters: List[Dict[str, Any]] = []
    leaders: List[Dict[str, Any]] = []
    for fp in sorted(fingerprints, key=lambda f: f["run_id"]):
        placed = False
        for i, leader in enumerate(leaders):
            if fingerprint_distance(leader, fp) <= eps:
                clusters[i]["members"].append(fp["run_id"])
                placed = True
                break
        if not placed:
            leaders.append(fp)
            clusters.append({"leader": fp["run_id"], "members": [fp["run_id"]]})
    for c in clusters:
        c["size"] = len(c["members"])
    return clusters


# -- robust scoring ----------------------------------------------------------


def _run_features(fp: Dict[str, Any]) -> Dict[str, float]:
    """The scalar features a run is scored on (all time-like: larger is
    worse)."""
    features = {"elapsed": fp["elapsed"]}
    for layer, v in fp["layers"].items():
        features["layer:%s" % layer] = v
    ends = [r["end"] for r in fp["ranks"]]
    features["rank_spread"] = (max(ends) - min(ends)) if ends else 0.0
    return features


def _score_features(
    values: Dict[str, List[float]],
    mine: Dict[str, float],
    k: float,
    rel_floor: float,
    abs_floor: float,
    against: Optional[Dict[str, float]] = None,
) -> List[Dict[str, Any]]:
    """Robust z-style scores for one run's features against its peers.

    ``score > 1`` means the value sits beyond the change threshold in
    the *worse* (larger) direction.  With ``against``, the reference is
    that single run's value and MAD collapses to the floors.
    """
    rows = []
    for name in sorted(mine):
        value = mine[name]
        if against is not None:
            center = against.get(name, 0.0)
            spread = 0.0
        else:
            series = values.get(name, [])
            center = median(series) if series else 0.0
            spread = mad(series, center) if series else 0.0
        threshold = robust_threshold(center, spread, k, rel_floor, abs_floor)
        deviation = value - center
        rows.append(
            {
                "feature": name,
                "value": value,
                "median": center,
                "mad": spread,
                "threshold": threshold,
                "score": deviation / threshold,
            }
        )
    return rows


def _suspect_rank(fp: Dict[str, Any]) -> Optional[int]:
    """The run's straggler rank (latest completion, ties to smallest)."""
    if not fp["ranks"]:
        return None
    return min(fp["ranks"], key=lambda r: (-r["end"], r["rank"]))["rank"]


def _suspect_op(
    fp: Dict[str, Any],
    op_values: Dict[str, List[float]],
    k: float,
    rel_floor: float,
    abs_floor: float,
    against: Optional[Dict[str, Any]] = None,
) -> Optional[Dict[str, Any]]:
    """The op whose total time deviates most from the group median."""
    best = None
    for name in sorted(fp["ops"]):
        value = fp["ops"][name]["total"]
        if against is not None:
            center = against["ops"].get(name, {}).get("total", 0.0)
            spread = 0.0
        else:
            series = op_values.get(name, [])
            center = median(series) if series else 0.0
            spread = mad(series, center) if series else 0.0
        threshold = robust_threshold(center, spread, k, rel_floor, abs_floor)
        score = (value - center) / threshold
        row = {"op": name, "total": value, "median": center, "score": score}
        if best is None or (row["score"], row["op"]) > (best["score"], best["op"]):
            best = row
    return best


# -- the diagnosis pipeline --------------------------------------------------


def diagnose_archive(
    store_root: str,
    run_prefixes: Optional[List[str]] = None,
    against: Optional[str] = None,
    jobs: int = 1,
    k: float = DEFAULT_K,
    eps: float = DEFAULT_EPS,
    rel_floor: float = DEFAULT_REL_FLOOR,
    abs_floor: float = DEFAULT_ABS_FLOOR,
    max_roots: int = MAX_CHAIN_ROOTS,
    slice_outliers: bool = True,
) -> Dict[str, Any]:
    """Diagnose every (selected) archived run; return the ranked report.

    ``run_prefixes`` restricts the candidate set (any-prefix match);
    ``against`` pins a baseline run (prefix) every candidate is scored
    against instead of its group median.  Fan-out over ``jobs`` worker
    processes changes wall time only — the report is byte-identical.
    """
    from repro.harness.parallel import parallel_map
    from repro.store.bank import TraceBank

    bank = TraceBank(store_root, create=False)
    manifests = bank.manifests()
    if run_prefixes:
        manifests = [
            m for m in manifests
            if any(m.run_id.startswith(p) for p in run_prefixes)
        ]
    if not manifests:
        raise StoreError(
            "no archived runs match%s in %s"
            % (" prefixes %s" % run_prefixes if run_prefixes else "", store_root)
        )
    against_id = bank.manifest(against).run_id if against else None

    run_ids = sorted(m.run_id for m in manifests)
    fp_ids = list(run_ids)
    if against_id is not None and against_id not in fp_ids:
        fp_ids.append(against_id)
    tasks = [(str(bank.root), run_id) for run_id in fp_ids]
    fingerprints = parallel_map(_fingerprint_task, tasks, jobs=jobs)
    by_id = {fp["run_id"]: fp for fp in fingerprints}
    candidates = [by_id[r] for r in run_ids if r != against_id]
    against_fp = by_id.get(against_id) if against_id else None

    # Group peers; collect group-wide feature series.
    groups: Dict[str, List[Dict[str, Any]]] = {}
    for fp in candidates:
        groups.setdefault(fp["group"], []).append(fp)

    outliers: List[Dict[str, Any]] = []
    group_rows: List[Dict[str, Any]] = []
    for gi, group_key in enumerate(sorted(groups)):
        members = groups[group_key]
        insufficient = against_fp is None and len(members) < MIN_GROUP
        group_rows.append(
            {
                "key": json.loads(group_key),
                "members": [fp["run_id"] for fp in members],
                "insufficient": insufficient,
            }
        )
        if insufficient:
            continue
        feature_values: Dict[str, List[float]] = {}
        op_values: Dict[str, List[float]] = {}
        op_names = sorted({name for fp in members for name in fp["ops"]})
        for fp in members:
            for name, v in _run_features(fp).items():
                feature_values.setdefault(name, []).append(v)
            for name in op_names:
                op_values.setdefault(name, []).append(
                    fp["ops"].get(name, {}).get("total", 0.0)
                )
        against_features = _run_features(against_fp) if against_fp else None
        for fp in members:
            rows = _score_features(
                feature_values, _run_features(fp), k, rel_floor, abs_floor,
                against=against_features,
            )
            flagged = [r for r in rows if r["score"] > 1.0]
            if not flagged:
                continue
            score = max(r["score"] for r in flagged)
            layer_rows = sorted(
                (r for r in rows if r["feature"].startswith("layer:")),
                key=lambda r: (-r["score"], r["feature"]),
            )
            suspects = [
                dict(r, layer=r["feature"].split(":", 1)[1]) for r in layer_rows
            ]
            outliers.append(
                {
                    "run_id": fp["run_id"],
                    "group": gi,
                    "meta": fp["meta"],
                    "score": score,
                    "flagged": flagged,
                    "suspects": suspects,
                    "suspect_layer": suspects[0]["layer"] if suspects else None,
                    "suspect_op": _suspect_op(
                        fp, op_values, k, rel_floor, abs_floor, against=against_fp
                    ),
                    "suspect_rank": _suspect_rank(fp),
                }
            )

    outliers.sort(key=lambda o: (-o["score"], o["run_id"]))

    if slice_outliers and outliers:
        slice_tasks = [
            (str(bank.root), o["run_id"], max_roots) for o in outliers
        ]
        slices = parallel_map(_slice_task, slice_tasks, jobs=jobs)
        for o, s in zip(outliers, slices):
            o["slice"] = s
            # An overlapping injected fault is the strongest evidence
            # there is — let it lead the suspect ranking.
            if s and s["fault_candidates"]:
                fault_layer = s["fault_candidates"][0]["layer"]
                for suspect in o["suspects"]:
                    if suspect["layer"] == fault_layer:
                        suspect["fault_overlap"] = True
    else:
        for o in outliers:
            o["slice"] = None

    clusters = cluster_fingerprints(candidates, eps=eps)

    report = {
        "schema": DIAGNOSE_SCHEMA,
        "params": {
            "k": k,
            "eps": eps,
            "rel_floor": rel_floor,
            "abs_floor": abs_floor,
            "max_roots": max_roots,
            "run_prefixes": sorted(run_prefixes) if run_prefixes else None,
            "against": against_id,
            "min_group": MIN_GROUP,
        },
        "runs": [
            {
                "run_id": fp["run_id"],
                "meta": fp["meta"],
                "n_events": fp["n_events"],
                "elapsed": fp["elapsed"],
                "layers": fp["layers"],
                "straggler_rank": _suspect_rank(fp),
            }
            for fp in candidates
        ],
        "groups": group_rows,
        "clusters": clusters,
        "outliers": outliers,
        "summary": {
            "runs": len(candidates),
            "groups": len(group_rows),
            "insufficient_groups": sum(
                1 for g in group_rows if g["insufficient"]
            ),
            "clusters": len(clusters),
            "outliers": len(outliers),
        },
    }
    return json.loads(canonical_json(report))


def render_diagnose(report: Dict[str, Any]) -> str:
    """Human rendering: headline + the ranked suspect table."""
    s = report["summary"]
    lines = [
        "diagnosed %d run(s) in %d group(s) (%d too small to gate), "
        "%d cluster(s): %d outlier(s)"
        % (s["runs"], s["groups"], s["insufficient_groups"], s["clusters"],
           s["outliers"])
    ]
    if not report["outliers"]:
        lines.append("no outliers — every run sits inside its group's band")
        return "\n".join(lines) + "\n"
    lines.append(
        "%-14s %-14s %9s  %-10s %-22s %s"
        % ("run", "scenario", "score", "layer", "op", "rank")
    )
    for o in report["outliers"]:
        op = o["suspect_op"]["op"] if o["suspect_op"] else "-"
        lines.append(
            "%-14s %-14s %8.1fx  %-10s %-22s %s"
            % (
                o["run_id"][:12],
                str(o["meta"].get("scenario", o["meta"].get("kind", "?"))),
                o["score"],
                o["suspect_layer"] or "-",
                op,
                "-" if o["suspect_rank"] is None else o["suspect_rank"],
            )
        )
    for o in report["outliers"]:
        sl = o.get("slice")
        if not sl:
            continue
        lines.append(
            "%s: chain crosses %s; window %.6f..%.6f s"
            % (
                o["run_id"][:12],
                " -> ".join(sl["layers_crossed"]) or "(no chain)",
                sl["window_rel"][0],
                sl["window_rel"][1],
            )
        )
    return "\n".join(lines) + "\n"
