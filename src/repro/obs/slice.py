"""Cross-layer causal slicing: why was *this* part of the run slow?

The critical path (:mod:`repro.obs.critpath`) answers one question — which
rank bounded elapsed time.  A *slice* generalizes it: given any anchor —
a rank, an op name, a path glob, or "the straggler" (the default) — it
extracts the part of the run that explains the anchor's latency and
attributes it across the simulated stack (``des`` / ``simos`` /
``network`` / ``simfs`` / ``simmpi`` / ``framework``):

* the **anchor window** on one ``(node, rank)`` track;
* per-layer **self time** inside the window (anchor track and all
  tracks), per-op self time, and the window's share of elapsed time;
* the **bounding chain**: the time-ordered root spans covering the
  window, each extended down its dominant-descendant path, so one slice
  reads ``MPI_File_write_at -> SYS_write`` and crosses layers the way
  the capture did;
* **fault-plane candidates**: injected fault events (read back from a
  chaos run's archived schedule) whose windows overlap the slice —
  ranked first among suspects, because a fault that covers the window
  *is* the leading explanation;
* a ranked **suspect-layer** list combining self-time share with fault
  overlap.

Reports are canonical ``repro/obs/slice/v1`` JSON — a pure function of
the payload (plus the optional fault/event context), so byte-identical
across ``jobs`` counts and cache temperature.  Renderings: text
(:func:`render_slice`), a Perfetto-loadable Chrome trace of just the
slice (:func:`slice_trace`), and collapsed-stack flamegraph lines
(:func:`slice_flamegraph_lines`).
"""

from __future__ import annotations

import json
from fnmatch import fnmatchcase
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import TelemetryError
from repro.obs.critpath import (
    SpanNode,
    build_forest,
    payload_spans,
    stack_layer,
    track_names,
)
from repro.obs.metrics import canonical_json

__all__ = [
    "SLICE_SCHEMA",
    "ANCHOR_KINDS",
    "FAULT_SUSPECT_LAYER",
    "MAX_CHAIN_ROOTS",
    "causal_slice",
    "slice_from_store",
    "render_slice",
    "slice_trace",
    "slice_flamegraph_lines",
]

SLICE_SCHEMA = "repro/obs/slice/v1"

#: Anchor kinds ``causal_slice`` resolves.
ANCHOR_KINDS = ("straggler", "rank", "op", "path")

#: Which stack layer an injected fault event indicts.  Disk faults land
#: on the data path (``simfs``), fabric faults on ``network``, a node
#: crash on the OS layer that starts failing dispatches.
FAULT_SUSPECT_LAYER = {
    "DiskSlowdown": "simfs",
    "DiskErrorStorm": "simfs",
    "NetworkPartition": "network",
    "LinkDegradation": "network",
    "NodeCrash": "simos",
}

#: Chain roots kept before truncation (kept = widest, re-sorted by time).
MAX_CHAIN_ROOTS = 32

_US = 1e6  # Chrome trace microseconds <-> simulated seconds


def _walk(node: SpanNode):
    yield node
    for child in node.children:
        yield from _walk(child)


def _track_ends(forest) -> Dict[Tuple[int, int], float]:
    ends: Dict[Tuple[int, int], float] = {}
    for track, roots in forest.items():
        end = 0.0
        for root in roots:
            for node in _walk(root):
                end = max(end, node.end)
        ends[track] = end
    return ends


def _resolve_anchor(
    forest,
    ends: Dict[Tuple[int, int], float],
    kind: str,
    value: Any,
    events: Optional[List[Dict[str, Any]]],
) -> Tuple[Tuple[int, int], Tuple[float, float], Optional[Dict[str, Any]]]:
    """Resolve the anchor to ``(track, window, anchor_span)``."""
    if kind == "straggler":
        track = min(ends, key=lambda t: (-ends[t], t))
        t0 = min(r.ts for r in forest[track])
        return track, (t0, ends[track]), None
    if kind == "rank":
        rank = int(value)
        candidates = [t for t in forest if t[1] == rank]
        if not candidates:
            raise TelemetryError(
                "no track for rank %d (ranks present: %s)"
                % (rank, sorted({t[1] for t in forest}))
            )
        track = min(candidates, key=lambda t: (-ends[t], t))
        t0 = min(r.ts for r in forest[track])
        return track, (t0, ends[track]), None
    if kind == "op":
        name = str(value)
        best: Optional[Tuple[float, float, Tuple[int, int], SpanNode]] = None
        for track in sorted(forest):
            for root in forest[track]:
                for node in _walk(root):
                    if node.name != name:
                        continue
                    key = (-node.dur, node.ts, track, node)
                    if best is None or key[:3] < best[:3]:
                        best = key
        if best is None:
            raise TelemetryError("no span named %r in this run" % name)
        node = best[3]
        track = best[2]
        span = {
            "name": node.name,
            "cat": node.cat,
            "ts": node.ts,
            "dur": node.dur,
        }
        return track, (node.ts, node.end), span
    if kind == "path":
        glob = str(value)
        if events is None:
            raise TelemetryError(
                "path anchors need per-event paths — slice a store-archived "
                "run (file-based telemetry payloads carry no paths)"
            )
        per_rank: Dict[int, float] = {}
        t0, t1 = None, None
        for e in events:
            path = e.get("path")
            if path is None or not fnmatchcase(str(path), glob):
                continue
            ts = float(e["ts"])
            dur = float(e.get("dur") or 0.0)
            per_rank[e["rank"]] = per_rank.get(e["rank"], 0.0) + dur
            t0 = ts if t0 is None else min(t0, ts)
            t1 = ts + dur if t1 is None else max(t1, ts + dur)
        if t0 is None:
            raise TelemetryError("no events with a path matching %r" % glob)
        rank = min(per_rank, key=lambda r: (-per_rank[r], r))
        candidates = [t for t in forest if t[1] == rank]
        if not candidates:
            raise TelemetryError("path glob matched rank %d, which has no track" % rank)
        track = min(candidates, key=lambda t: (-ends[t], t))
        return track, (t0, t1), None
    raise TelemetryError(
        "unknown anchor kind %r (expected one of %s)" % (kind, ", ".join(ANCHOR_KINDS))
    )


def _overlap(a0: float, a1: float, b0: float, b1: float) -> float:
    return max(0.0, min(a1, b1) - max(a0, b0))


def _window_rollup(
    roots: List[SpanNode], t0: float, t1: float, pid: int
) -> Tuple[Dict[str, float], Dict[str, Dict[str, float]]]:
    """Per-layer and per-op self time of spans overlapping the window."""
    layers: Dict[str, float] = {}
    ops: Dict[str, Dict[str, float]] = {}
    for root in roots:
        for node in _walk(root):
            if node.end <= t0 or node.ts >= t1:
                continue
            layer = stack_layer(node.cat, node.name, pid)
            layers[layer] = layers.get(layer, 0.0) + node.self_time
            cell = ops.setdefault(node.name, {"count": 0, "self": 0.0, "total": 0.0})
            cell["count"] += 1
            cell["self"] += node.self_time
            cell["total"] += node.dur
    return layers, ops


def _dominant_path(root: SpanNode, pid: int) -> List[Dict[str, Any]]:
    """The root plus its dominant-descendant chain, as report links."""
    links = []
    node, depth = root, 0
    while True:
        links.append(
            {
                "depth": depth,
                "name": node.name,
                "cat": node.cat,
                "layer": stack_layer(node.cat, node.name, pid),
                "ts": node.ts,
                "dur": node.dur,
                "self": node.self_time,
            }
        )
        if not node.children:
            return links
        node = max(node.children, key=lambda c: (c.dur, -c.ts, c.name))
        depth += 1


def _fault_candidates(
    fault_events: Optional[List[Dict[str, Any]]],
    origin: float,
    t0: float,
    t1: float,
) -> List[Dict[str, Any]]:
    """Injected faults whose windows overlap the slice window.

    Fault windows are relative to the run's simulated start; span stamps
    may carry a capture-epoch base, so they are shifted by ``origin``
    (the first span's start) before the overlap test.
    """
    out: List[Dict[str, Any]] = []
    for ev in fault_events or []:
        window = ev.get("window") or [ev.get("at", 0.0), None]
        f0 = origin + float(window[0])
        f1 = float("inf") if window[1] is None else origin + float(window[1])
        overlap = _overlap(t0, t1, f0, f1)
        if overlap <= 0.0:
            continue
        out.append(
            {
                "type": ev.get("type", "unknown"),
                "layer": FAULT_SUSPECT_LAYER.get(ev.get("type"), "framework"),
                "window": [window[0], window[1]],
                "overlap": overlap,
                "event": {
                    k: v for k, v in sorted(ev.items()) if k not in ("type", "window")
                },
            }
        )
    out.sort(key=lambda c: (-c["overlap"], c["type"]))
    return out


def _dfg_context(dfg: Optional[Dict[str, Any]], op: Optional[str], top: int = 8):
    """Directly-follows context around the slice's dominant op."""
    if dfg is None or op is None:
        return None
    graph = dfg.get("graph", {})
    edges = graph.get("edges", {})
    times = graph.get("edge_times", {})

    def cell(a: str, b: str, n: int) -> Dict[str, Any]:
        out: Dict[str, Any] = {"op": b if a == op else a, "count": n}
        t = times.get(a, {}).get(b)
        if t is not None:
            out["mean_gap"] = t["mean"]
        return out

    into = sorted(
        (
            (n, a)
            for a, row in edges.items()
            for b, n in row.items()
            if b == op
        ),
        key=lambda t: (-t[0], t[1]),
    )
    out_of = sorted(
        ((n, b) for b, n in edges.get(op, {}).items()), key=lambda t: (-t[0], t[1])
    )
    return {
        "op": op,
        "in": [cell(a, op, n) for n, a in into[:top]],
        "out": [cell(op, b, n) for n, b in out_of[:top]],
    }


def causal_slice(
    payload: Dict[str, Any],
    anchor: str = "straggler",
    value: Any = None,
    fault_events: Optional[List[Dict[str, Any]]] = None,
    events: Optional[List[Dict[str, Any]]] = None,
    dfg: Optional[Dict[str, Any]] = None,
    max_roots: int = MAX_CHAIN_ROOTS,
    source: Optional[Dict[str, Any]] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Extract the causal slice explaining the anchor's latency.

    ``payload`` is a ``repro/telemetry/v1`` payload; ``anchor`` one of
    :data:`ANCHOR_KINDS` with ``value`` its parameter (rank number, op
    name, path glob).  ``fault_events`` are plain-JSON fault descriptions
    (:meth:`~repro.faults.schedule.FaultSchedule.to_json` events);
    ``events`` per-event dicts with ``rank``/``ts``/``dur``/``path``
    (needed only for path anchors); ``dfg`` an optional
    ``repro/store/dfg/v1`` report for directly-follows context.  Returns
    the canonical ``repro/obs/slice/v1`` report.
    """
    spans = payload_spans(payload)
    if not spans:
        raise TelemetryError(
            "no spans in payload — was the run captured with --telemetry?"
        )
    forest = build_forest(spans)
    labels = track_names(payload)
    ends = _track_ends(forest)
    origin = min(s[4] for s in spans)
    elapsed = max(ends.values()) - origin

    track, (t0, t1), anchor_span = _resolve_anchor(
        forest, ends, anchor, value, events
    )
    pid, tid = track

    layers_track, ops = _window_rollup(forest[track], t0, t1, pid)
    layers_all: Dict[str, float] = {}
    for other in sorted(forest):
        got, _ = _window_rollup(forest[other], t0, t1, other[0])
        for layer, v in got.items():
            layers_all[layer] = layers_all.get(layer, 0.0) + v

    # Bounding chain: window roots in time order, each extended down its
    # dominant-descendant path.  Truncation keeps the widest roots but
    # re-sorts them back into time order.
    roots = [r for r in forest[track] if r.end > t0 and r.ts < t1]
    dropped = 0
    if len(roots) > max_roots:
        keep = sorted(roots, key=lambda r: (-r.dur, r.ts, r.name))[:max_roots]
        dropped = len(roots) - max_roots
        roots = sorted(keep, key=lambda r: (r.ts, -r.dur, r.name))
    chain: List[Dict[str, Any]] = []
    covered = 0.0
    for root in roots:
        chain.extend(_dominant_path(root, pid))
        covered += _overlap(root.ts, root.end, t0, t1)
    width = max(t1 - t0, 1e-12)
    layers_crossed = sorted({link["layer"] for link in chain})

    candidates = _fault_candidates(fault_events, origin, t0, t1)

    # Suspect ranking: self-time share inside the window, plus a unit
    # boost per layer an overlapping fault indicts — an injected fault
    # that covers the window outranks any share-only explanation.
    total_self = sum(layers_track.values()) or 1.0
    fault_layers = {c["layer"] for c in candidates}
    suspects = []
    for layer in sorted(set(layers_track) | fault_layers):
        share = layers_track.get(layer, 0.0) / total_self
        boosted = layer in fault_layers
        suspects.append(
            {
                "layer": layer,
                "share": share,
                "fault_overlap": boosted,
                "score": share + (1.0 if boosted else 0.0),
            }
        )
    suspects.sort(key=lambda s: (-s["score"], s["layer"]))

    focus_op = None
    if anchor == "op":
        focus_op = str(value)
    elif ops:
        focus_op = min(ops, key=lambda n: (-ops[n]["self"], n))

    report = {
        "schema": SLICE_SCHEMA,
        "anchor": {"kind": anchor, "value": value},
        "source": source if source is not None else payload.get("source"),
        "meta": meta,
        "origin": origin,
        "elapsed": elapsed,
        "track": {
            "node": pid,
            "rank": tid,
            "label": labels.get(track, "node%d rank %d" % (pid, tid)),
            "end": ends[track],
        },
        "window": [t0, t1],
        "window_rel": [t0 - origin, t1 - origin],
        "anchor_span": anchor_span,
        "layers": {
            "track": {k: v for k, v in sorted(layers_track.items())},
            "all": {k: v for k, v in sorted(layers_all.items())},
        },
        "ops": {k: ops[k] for k in sorted(ops)},
        "chain": chain,
        "chain_roots": len(roots),
        "roots_dropped": dropped,
        "chain_coverage": min(1.0, covered / width),
        "layers_crossed": layers_crossed,
        "fault_candidates": candidates,
        "dfg_context": _dfg_context(dfg, focus_op),
        "suspects": suspects,
        "n_spans": len(spans),
    }
    return json.loads(canonical_json(report))


def slice_from_store(
    bank,
    run_prefix: str,
    anchor: str = "straggler",
    value: Any = None,
    max_roots: int = MAX_CHAIN_ROOTS,
    with_dfg: bool = True,
) -> Dict[str, Any]:
    """Slice a store-archived run: resolve the prefix, synthesize the
    telemetry view, and thread in everything only the archive knows —
    the injected fault schedule from the manifest, per-event paths for
    path anchors, and the run's directly-follows graph.
    """
    from repro.store.query import Query, telemetry_view

    manifest = bank.manifest(run_prefix)
    payload = telemetry_view(bank, manifest.run_id)
    fault_events = None
    faults = manifest.meta.get("faults")
    if isinstance(faults, dict):
        fault_events = faults.get("events")
    events = None
    if anchor == "path":
        events = [
            {
                "rank": rank,
                "ts": e.timestamp,
                "dur": e.duration or 0.0,
                "path": e.path,
            }
            for rank, e in bank.iter_run_events(manifest.run_id)
        ]
    dfg = None
    if with_dfg:
        from repro.store.dfg import build_dfg

        dfg = build_dfg(bank, Query.create(runs=[manifest.run_id]), jobs=1)
    meta_keys = ("kind", "scenario", "status", "framework", "workload", "nprocs", "seed")
    meta = {k: manifest.meta[k] for k in meta_keys if k in manifest.meta}
    return causal_slice(
        payload,
        anchor=anchor,
        value=value,
        fault_events=fault_events,
        events=events,
        dfg=dfg,
        max_roots=max_roots,
        source={"kind": "store", "run_id": manifest.run_id},
        meta=meta,
    )


def slice_trace(payload: Dict[str, Any], report: Dict[str, Any]) -> Dict[str, Any]:
    """A Perfetto-loadable Chrome trace containing just the slice.

    Keeps every metadata (``M``) event so track names survive, and the
    complete (``X``) spans on the anchor track that overlap the slice
    window.  Loading it next to the full trace shows exactly what the
    slice attributed.
    """
    pid, tid = report["track"]["node"], report["track"]["rank"]
    t0, t1 = report["window"]
    events = []
    for e in payload.get("trace", {}).get("traceEvents", []):
        if e.get("ph") == "M":
            events.append(e)
            continue
        if e.get("ph") != "X" or int(e["pid"]) != pid or int(e["tid"]) != tid:
            continue
        ts = float(e["ts"]) / _US
        end = ts + float(e["dur"]) / _US
        if end > t0 and ts < t1:
            events.append(e)
    trace = {"traceEvents": events, "displayTimeUnit": "ms"}
    return json.loads(canonical_json(trace))


def slice_flamegraph_lines(
    payload: Dict[str, Any], report: Dict[str, Any]
) -> List[str]:
    """Collapsed-stack flamegraph lines for the slice only."""
    from repro.obs.critpath import flamegraph_lines

    sliced = {
        "schema": "repro/telemetry/v1",
        "trace": slice_trace(payload, report),
    }
    return flamegraph_lines(sliced)


def render_slice(report: Dict[str, Any]) -> str:
    """Human-readable rendering of a :func:`causal_slice` report."""
    anchor = report["anchor"]
    label = anchor["kind"] if anchor["value"] is None else (
        "%s=%s" % (anchor["kind"], anchor["value"])
    )
    t0, t1 = report["window_rel"]
    lines: List[str] = []
    title = "causal slice [%s] on %s: window %.6f..%.6f s (%.1f%% of elapsed)" % (
        label,
        report["track"]["label"],
        t0,
        t1,
        100.0 * (t1 - t0) / max(report["elapsed"], 1e-12),
    )
    lines.append(title)
    lines.append("=" * len(title))
    if report["meta"]:
        meta = report["meta"]
        parts = ["%s=%s" % (k, meta[k]) for k in sorted(meta)]
        lines.append("run: " + ", ".join(parts))
    track_layers = report["layers"]["track"]
    if track_layers:
        lines.append("self time in window (anchor track):")
        total = sum(track_layers.values()) or 1.0
        for layer, v in sorted(track_layers.items(), key=lambda kv: (-kv[1], kv[0])):
            lines.append(
                "  %-10s %12.6f s  (%5.1f%%)" % (layer, v, 100.0 * v / total)
            )
    if report["fault_candidates"]:
        lines.append("fault-plane candidates overlapping the window:")
        for c in report["fault_candidates"]:
            lines.append(
                "  %-18s -> %-8s overlap %.6f s" % (c["type"], c["layer"], c["overlap"])
            )
    if report["chain"]:
        lines.append(
            "bounding chain (%d root(s)%s, %.1f%% coverage, layers: %s):"
            % (
                report["chain_roots"],
                ", %d dropped" % report["roots_dropped"]
                if report["roots_dropped"]
                else "",
                100.0 * report["chain_coverage"],
                " -> ".join(report["layers_crossed"]),
            )
        )
        for link in report["chain"]:
            lines.append(
                "  %s%-26s %-8s dur=%.6f self=%.6f"
                % (
                    "  " * link["depth"],
                    link["name"],
                    link["layer"],
                    link["dur"],
                    link["self"],
                )
            )
    lines.append("suspects (ranked):")
    for i, s in enumerate(report["suspects"], start=1):
        note = " [fault overlap]" if s["fault_overlap"] else ""
        lines.append(
            "  %d. %-10s score %.3f (self share %5.1f%%)%s"
            % (i, s["layer"], s["score"], 100.0 * s["share"], note)
        )
    return "\n".join(lines) + "\n"
