"""Prometheus text exposition (format 0.0.4) over a metrics snapshot.

The service keeps its request metrics in the repo's own
:class:`~repro.obs.metrics.MetricsRegistry`; this module renders a
registry snapshot as the Prometheus text format so any off-the-shelf
scraper can watch a live TraceBank service (``GET /v1/metrics?format=
prom``).

Instrument names may carry labels inline — ``service.request_seconds
{route=ingest,status=202}`` — which :func:`split_labels` separates into
the family name and a label map.  Instruments sharing a family render
under one ``# HELP``/``# TYPE`` header, label values are escaped per the
spec (``\\``, ``"``, newline), and log2 histograms become *cumulative*
``_bucket{le="..."}`` series (each bucket's ``le`` is its upper bound
``2^(e+1)``; the zero bucket is ``le="0"``; ``+Inf`` always equals
``_count``).

:func:`parse_prometheus` is the matching reader — enough of a parser to
round-trip everything this module emits, which is what the golden-format
tests and the CI live-smoke job assert with.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "escape_label_value",
    "split_labels",
    "prom_name",
    "render_prometheus",
    "parse_prometheus",
]

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE_LINE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{(?P<labels>.*)\})?'
    r'\s+(?P<value>\S+)\s*$'
)
_LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def escape_label_value(value: str) -> str:
    """Escape one label value per the exposition spec."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _unescape_label_value(value: str) -> str:
    out: List[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"n": "\n", "\\": "\\", '"': '"'}.get(nxt, "\\" + nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def split_labels(key: str) -> Tuple[str, Dict[str, str]]:
    """Split ``"a.b{k=v,k2=v2}"`` into ``("a.b", {"k": "v", "k2": "v2"})``.

    A key without a ``{...}`` suffix has no labels.  Label values run to
    the next comma or the closing brace — registry keys never embed
    those characters in values (tenant/route names cannot), and the
    renderer escapes whatever does appear.
    """
    base, brace, rest = key.partition("{")
    if not brace or not rest.endswith("}"):
        return key, {}
    labels: Dict[str, str] = {}
    body = rest[:-1]
    for piece in body.split(","):
        if not piece:
            continue
        name, sep, value = piece.partition("=")
        if sep:
            labels[name.strip()] = value
    return base, labels


def prom_name(name: str, namespace: str = "repro") -> str:
    """Sanitize a dotted registry name into a Prometheus metric name."""
    flat = _NAME_OK.sub("_", name)
    return "%s_%s" % (namespace, flat) if namespace else flat


def _fmt(value: float) -> str:
    """Float rendering that round-trips (repr) but keeps ints clean."""
    if isinstance(value, bool):  # pragma: no cover - no bools in snapshots
        return "1" if value else "0"
    if isinstance(value, int) or (isinstance(value, float) and value.is_integer()
                                  and abs(value) < 1e15):
        return str(int(value))
    return repr(float(value))


def _label_str(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        '%s="%s"' % (k, escape_label_value(str(v)))
        for k, v in sorted(labels.items())
    )
    return "{%s}" % inner


def _timeline_mean(tl: Dict[str, Any], end_time: float) -> float:
    samples = tl.get("samples") or []
    if not samples:
        return 0.0
    area = 0.0
    for (t0, v0), (t1, _v1) in zip(samples, samples[1:]):
        area += v0 * (t1 - t0)
    last_t, last_v = samples[-1]
    if end_time > last_t:
        area += last_v * (end_time - last_t)
    span = max(end_time, last_t) - samples[0][0]
    return area / span if span > 0 else samples[0][1]


def render_prometheus(
    snapshot: Dict[str, Any], namespace: str = "repro"
) -> str:
    """Render one registry snapshot as Prometheus exposition text.

    Families render in sorted order; within a family, label sets render
    in sorted order — byte-stable for byte-identical snapshots.
    """
    lines: List[str] = []
    end_time = snapshot.get("end_time")

    # counters -> <name>_total counter families
    families: Dict[str, List[Tuple[Dict[str, str], float]]] = {}
    for key, value in (snapshot.get("counters") or {}).items():
        base, labels = split_labels(key)
        families.setdefault(base, []).append((labels, value))
    for base in sorted(families):
        name = prom_name(base, namespace) + "_total"
        lines.append("# HELP %s repro counter %s" % (name, base))
        lines.append("# TYPE %s counter" % name)
        for labels, value in sorted(families[base], key=lambda lv: sorted(lv[0].items())):
            lines.append("%s%s %s" % (name, _label_str(labels), _fmt(value)))

    # gauges -> gauge families; timelines ride along as last/mean gauges
    gauge_families: Dict[str, List[Tuple[Dict[str, str], float]]] = {}
    for key, value in (snapshot.get("gauges") or {}).items():
        base, labels = split_labels(key)
        gauge_families.setdefault(base, []).append((labels, value))
    for key, tl in (snapshot.get("timelines") or {}).items():
        base, labels = split_labels(key)
        gauge_families.setdefault(base + ".last", []).append(
            (labels, float(tl.get("last_value", 0.0)))
        )
        if end_time is not None:
            gauge_families.setdefault(base + ".mean", []).append(
                (labels, _timeline_mean(tl, float(end_time)))
            )
    if end_time is not None:
        gauge_families.setdefault("end_time_seconds", []).append(
            ({}, float(end_time))
        )
    for base in sorted(gauge_families):
        name = prom_name(base, namespace)
        lines.append("# HELP %s repro gauge %s" % (name, base))
        lines.append("# TYPE %s gauge" % name)
        for labels, value in sorted(gauge_families[base],
                                    key=lambda lv: sorted(lv[0].items())):
            lines.append("%s%s %s" % (name, _label_str(labels), _fmt(value)))

    # histograms -> cumulative bucket families
    hist_families: Dict[str, List[Tuple[Dict[str, str], Dict[str, Any]]]] = {}
    for key, h in (snapshot.get("histograms") or {}).items():
        base, labels = split_labels(key)
        hist_families.setdefault(base, []).append((labels, h))
    for base in sorted(hist_families):
        name = prom_name(base, namespace)
        lines.append("# HELP %s repro log2 histogram %s" % (name, base))
        lines.append("# TYPE %s histogram" % name)
        for labels, h in sorted(hist_families[base],
                                key=lambda lv: sorted(lv[0].items())):
            raw = h.get("buckets") or {}
            # zero bucket (le="0") first, then exponents ascending.
            keyed: List[Tuple[float, str, int]] = []
            for bkey, n in raw.items():
                if bkey == "zero":
                    keyed.append((float("-inf"), "0", int(n)))
                else:
                    e = int(bkey)
                    keyed.append((float(e), _fmt(2.0 ** (e + 1)), int(n)))
            cum = 0
            for _order, le, n in sorted(keyed):
                cum += n
                bucket_labels = dict(labels)
                bucket_labels["le"] = le
                lines.append(
                    "%s_bucket%s %d" % (name, _label_str(bucket_labels), cum)
                )
            inf_labels = dict(labels)
            inf_labels["le"] = "+Inf"
            count = int(h.get("count", 0))
            lines.append("%s_bucket%s %d" % (name, _label_str(inf_labels), count))
            lines.append(
                "%s_sum%s %s" % (name, _label_str(labels), _fmt(h.get("sum", 0.0)))
            )
            lines.append("%s_count%s %d" % (name, _label_str(labels), count))
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> Dict[str, Any]:
    """Parse exposition text back into families + samples.

    Returns ``{"families": {name: {"type", "help"}}, "samples":
    [{"name", "labels", "value"}, ...]}``.  Raises :class:`ValueError`
    on lines that are neither comments, blanks, nor well-formed samples,
    on samples for families with no preceding ``# TYPE``, and on
    non-monotonic histogram buckets — strict enough that "the exposition
    parses" is a meaningful CI assertion.
    """
    families: Dict[str, Dict[str, str]] = {}
    samples: List[Dict[str, Any]] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            rest = line[len("# HELP "):]
            name, _, help_text = rest.partition(" ")
            families.setdefault(name, {})["help"] = help_text
            continue
        if line.startswith("# TYPE "):
            rest = line[len("# TYPE "):]
            name, _, type_text = rest.partition(" ")
            families.setdefault(name, {})["type"] = type_text.strip()
            continue
        if line.startswith("#"):
            continue
        m = _SAMPLE_LINE.match(line)
        if m is None:
            raise ValueError("line %d: malformed sample %r" % (lineno, line))
        labels: Dict[str, str] = {}
        if m.group("labels"):
            consumed = 0
            for lm in _LABEL_PAIR.finditer(m.group("labels")):
                labels[lm.group(1)] = _unescape_label_value(lm.group(2))
                consumed += 1
            if not consumed:
                raise ValueError("line %d: malformed labels %r" % (lineno, line))
        raw_value = m.group("value")
        try:
            value = float(raw_value)
        except ValueError:
            raise ValueError(
                "line %d: non-numeric value %r" % (lineno, raw_value)
            ) from None
        sample_name = m.group("name")
        base = sample_name
        for suffix in ("_bucket", "_sum", "_count", "_total"):
            if sample_name.endswith(suffix) and sample_name[: -len(suffix)] in families:
                base = sample_name[: -len(suffix)]
                break
        if base not in families or "type" not in families[base]:
            raise ValueError(
                "line %d: sample %r has no preceding # TYPE" % (lineno, sample_name)
            )
        samples.append({"name": sample_name, "labels": labels, "value": value})

    # histogram bucket cumulativity: within one (family, non-le labels)
    # series, counts must be non-decreasing as le increases.
    series: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], List[Tuple[float, float]]] = {}
    for s in samples:
        if not s["name"].endswith("_bucket"):
            continue
        le_raw = s["labels"].get("le")
        if le_raw is None:
            raise ValueError("bucket sample without le label: %r" % s)
        le = math.inf if le_raw == "+Inf" else float(le_raw)
        rest = tuple(sorted((k, v) for k, v in s["labels"].items() if k != "le"))
        series.setdefault((s["name"], rest), []).append((le, s["value"]))
    for (name, rest), points in series.items():
        prev: Optional[float] = None
        for _le, count in sorted(points):
            if prev is not None and count < prev:
                raise ValueError(
                    "histogram %s%r buckets not cumulative" % (name, dict(rest))
                )
            prev = count
    return {"families": families, "samples": samples}
