"""Chrome trace-event JSON export and validation.

Converts a :class:`~repro.obs.spans.SpanRecorder` into the JSON object
format of the Chrome trace-event specification, which Perfetto
(https://ui.perfetto.dev) and ``chrome://tracing`` both load:

* ``"M"`` metadata events name the process/thread tracks (one process per
  simulated node, one thread per rank);
* ``"X"`` complete events carry the spans (``ts``/``dur`` in µs);
* ``"C"`` counter events carry queue-depth/occupancy series.

:func:`validate_chrome_trace` checks an exported (or loaded) object
against the parts of the spec the viewers actually require — CI runs it
over every trace artifact so a malformed export fails the build rather
than failing silently in a viewer.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.errors import TelemetryError
from repro.obs.metrics import canonical_json
from repro.obs.spans import SpanRecorder

__all__ = ["to_chrome_trace", "dumps_trace", "validate_chrome_trace"]

_US = 1e6  # simulated seconds -> trace microseconds

_VALID_PHASES = frozenset("BEXICMPSTFsftNODvV")


def to_chrome_trace(spans: SpanRecorder) -> Dict[str, Any]:
    """Render recorded spans/counters as a Chrome trace-event JSON object.

    Event order is metadata first, then spans and counters in recording
    order — deterministic for deterministic recorders.
    """
    events: List[Dict[str, Any]] = []
    for pid, pname in sorted(spans.process_names.items()):
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": pname},
            }
        )
        events.append(
            {
                "ph": "M",
                "name": "process_sort_index",
                "pid": pid,
                "tid": 0,
                "args": {"sort_index": pid},
            }
        )
    for (pid, tid), tname in sorted(spans.thread_names.items()):
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": pid,
                "tid": tid,
                "args": {"name": tname},
            }
        )
    for pid, tid, name, cat, ts, dur, args in spans.spans:
        ev: Dict[str, Any] = {
            "ph": "X",
            "name": name,
            "cat": cat,
            "ts": ts * _US,
            "dur": dur * _US,
            "pid": pid,
            "tid": tid,
        }
        if args:
            ev["args"] = args
        events.append(ev)
    for pid, name, ts, value in spans.counters:
        events.append(
            {
                "ph": "C",
                "name": name,
                "ts": ts * _US,
                "pid": pid,
                "tid": 0,
                "args": {"value": value},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def dumps_trace(trace: Dict[str, Any]) -> str:
    """Canonical (byte-stable) JSON text of a trace object."""
    return canonical_json(trace)


def _fail(problems: List[str], where: str, what: str) -> None:
    problems.append("%s: %s" % (where, what))


def validate_chrome_trace(obj: Any) -> None:
    """Raise :class:`~repro.errors.TelemetryError` unless ``obj`` conforms.

    Checks the JSON-object trace format: a dict with a ``traceEvents``
    list whose entries each carry a known ``ph`` phase, the fields that
    phase requires, and numeric timestamps.  (The array format — a bare
    list of events — is also accepted, per the spec.)
    """
    problems: List[str] = []
    if isinstance(obj, list):
        events = obj
    elif isinstance(obj, dict):
        events = obj.get("traceEvents")
        if not isinstance(events, list):
            raise TelemetryError("trace object has no 'traceEvents' list")
    else:
        raise TelemetryError(
            "trace must be a JSON object or array, got %s" % type(obj).__name__
        )
    for i, ev in enumerate(events):
        if len(problems) >= 20:
            problems.append("... (further problems suppressed)")
            break
        where = "traceEvents[%d]" % i
        if not isinstance(ev, dict):
            _fail(problems, where, "event is not an object")
            continue
        ph = ev.get("ph")
        if not isinstance(ph, str) or ph not in _VALID_PHASES:
            _fail(problems, where, "bad phase %r" % (ph,))
            continue
        if not isinstance(ev.get("name"), str):
            _fail(problems, where, "missing/non-string 'name'")
        if ph in ("B", "E", "X", "I", "C"):
            if not isinstance(ev.get("ts"), (int, float)):
                _fail(problems, where, "phase %s needs numeric 'ts'" % ph)
            if not isinstance(ev.get("pid"), int):
                _fail(problems, where, "phase %s needs integer 'pid'" % ph)
        if ph == "X" and not isinstance(ev.get("dur"), (int, float)):
            _fail(problems, where, "complete event needs numeric 'dur'")
        if ph == "X" and isinstance(ev.get("dur"), (int, float)) and ev["dur"] < 0:
            _fail(problems, where, "negative 'dur'")
        if ph == "C":
            args = ev.get("args")
            if not isinstance(args, dict) or not args or not all(
                isinstance(v, (int, float)) for v in args.values()
            ):
                _fail(problems, where, "counter event needs numeric 'args'")
        if ph == "M":
            if not isinstance(ev.get("args"), dict):
                _fail(problems, where, "metadata event needs 'args'")
    if problems:
        raise TelemetryError(
            "invalid Chrome trace-event JSON (%d problem(s)):\n  %s"
            % (len(problems), "\n  ".join(problems))
        )
