"""Cross-run telemetry diffing: what got slower, and where in the stack.

The paper's taxonomy is entirely comparative — Figures 2–4 only mean
something as deltas between traced and untraced runs — and so is this
module.  :func:`compare_payloads` takes two ``repro/telemetry/v1``
payloads (live exports, telemetry files, or views synthesized from the
TraceBank by :func:`repro.store.query.telemetry_view`) and emits one
canonical JSON report covering:

* **metrics** — counter-by-counter deltas plus log2-histogram
  divergence (half the L1 distance between the normalized bucket
  distributions: 0.0 for identical shapes, 1.0 for disjoint ones);
* **spans** — span-tree alignment keyed by ``(node, rank, name)``
  with per-key count/total/self-time deltas, per-layer self-time
  deltas over the ``des``/``simos``/``network``/``simfs``/``simmpi``/
  ``framework`` stack, and the *dominant layer* — the single largest
  self-time mover, the diff's headline;
* **tracks** — ranks present in only one run (crashed-rank captures
  from the fault plane diff cleanly; missing ranks are reported, never
  raised);
* **tracepoints** — count drift in which instrumentation fired.

Reports round-trip through :func:`~repro.obs.metrics.canonical_json`,
so diffing two byte-identical payloads yields a byte-identical (and
all-zero) report regardless of worker count or cache temperature.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import TelemetryError
from repro.obs.metrics import canonical_json
from repro.obs.critpath import (
    STACK_LAYERS,
    payload_spans,
    stack_layer,
    track_names,
    track_stats,
)

__all__ = [
    "DIFF_SCHEMA",
    "compare_payloads",
    "render_diff",
]

DIFF_SCHEMA = "repro/obs/diff/v1"


def _counters(payload: Dict[str, Any]) -> Dict[str, float]:
    return dict(payload.get("metrics", {}).get("counters", {}))


def _histograms(payload: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    return dict(payload.get("metrics", {}).get("histograms", {}))


def _hist_divergence(a: Optional[Dict[str, Any]], b: Optional[Dict[str, Any]]) -> float:
    """Half the L1 distance between two normalized bucket distributions.

    0.0 when the shapes match exactly, 1.0 when no mass overlaps.  A
    missing histogram counts as disjoint from a non-empty one.
    """
    buckets_a = dict((a or {}).get("buckets", {}))
    buckets_b = dict((b or {}).get("buckets", {}))
    total_a = float(sum(buckets_a.values()))
    total_b = float(sum(buckets_b.values()))
    if total_a == 0.0 and total_b == 0.0:
        return 0.0
    if total_a == 0.0 or total_b == 0.0:
        return 1.0
    l1 = 0.0
    for key in set(buckets_a) | set(buckets_b):
        l1 += abs(buckets_a.get(key, 0) / total_a - buckets_b.get(key, 0) / total_b)
    return 0.5 * l1


def _span_index(
    payload: Dict[str, Any],
) -> Tuple[
    Dict[Tuple[int, int, str], Dict[str, float]],
    Dict[Tuple[int, int], Dict[str, Any]],
]:
    """Span stats keyed ``(node, rank, name)`` plus the raw track stats."""
    stats = track_stats(payload)
    keyed: Dict[Tuple[int, int, str], Dict[str, float]] = {}
    for (pid, tid), s in stats.items():
        for name, cell in s["names"].items():
            keyed[(pid, tid, name)] = cell
    return keyed, stats


def compare_payloads(
    payload_a: Dict[str, Any],
    payload_b: Dict[str, Any],
    label_a: str = "a",
    label_b: str = "b",
) -> Dict[str, Any]:
    """Structured diff of two telemetry payloads (B relative to A).

    Raises :class:`~repro.errors.TelemetryError` when either input is
    not a ``repro/telemetry/v1`` payload.  Unequal rank counts are a
    *reported* condition (``tracks.only_a`` / ``tracks.only_b``), not an
    error — fault-plane captures with crashed ranks diff cleanly.
    """
    spans_a = payload_spans(payload_a)  # validates schema
    spans_b = payload_spans(payload_b)

    # --- metrics: counters -------------------------------------------------
    counters_a = _counters(payload_a)
    counters_b = _counters(payload_b)
    counter_rows = []
    for name in sorted(set(counters_a) | set(counters_b)):
        va = counters_a.get(name, 0.0)
        vb = counters_b.get(name, 0.0)
        if va == vb:
            continue
        counter_rows.append(
            {
                "name": name,
                "a": va,
                "b": vb,
                "delta": vb - va,
                "ratio": (vb / va) if va else None,
            }
        )

    # --- metrics: histogram shape divergence -------------------------------
    hists_a = _histograms(payload_a)
    hists_b = _histograms(payload_b)
    hist_rows = []
    for name in sorted(set(hists_a) | set(hists_b)):
        ha = hists_a.get(name)
        hb = hists_b.get(name)
        div = _hist_divergence(ha, hb)
        count_a = (ha or {}).get("count", 0)
        count_b = (hb or {}).get("count", 0)
        if div == 0.0 and count_a == count_b:
            continue
        hist_rows.append(
            {
                "name": name,
                "divergence": div,
                "count_a": count_a,
                "count_b": count_b,
                "sum_a": (ha or {}).get("sum", 0.0),
                "sum_b": (hb or {}).get("sum", 0.0),
            }
        )

    # --- spans: (node, rank, name) alignment -------------------------------
    keyed_a, stats_a = _span_index(payload_a)
    keyed_b, stats_b = _span_index(payload_b)
    span_rows = []
    for key in sorted(set(keyed_a) | set(keyed_b)):
        pid, tid, name = key
        ca = keyed_a.get(key, {"count": 0, "total": 0.0, "self": 0.0})
        cb = keyed_b.get(key, {"count": 0, "total": 0.0, "self": 0.0})
        if ca == cb:
            continue
        span_rows.append(
            {
                "node": pid,
                "rank": tid,
                "name": name,
                "count_a": ca["count"],
                "count_b": cb["count"],
                "total_delta": cb["total"] - ca["total"],
                "self_delta": cb["self"] - ca["self"],
            }
        )

    # --- spans: per-layer self-time deltas ---------------------------------
    layers_a: Dict[str, float] = {}
    layers_b: Dict[str, float] = {}
    for s in stats_a.values():
        for layer, t in s["layers"].items():
            layers_a[layer] = layers_a.get(layer, 0.0) + t
    for s in stats_b.values():
        for layer, t in s["layers"].items():
            layers_b[layer] = layers_b.get(layer, 0.0) + t
    layer_rows = []
    for layer in STACK_LAYERS:
        ta = layers_a.get(layer, 0.0)
        tb = layers_b.get(layer, 0.0)
        if ta == 0.0 and tb == 0.0:
            continue
        layer_rows.append({"layer": layer, "a": ta, "b": tb, "delta": tb - ta})
    dominant = None
    if layer_rows:
        # Largest absolute mover; ties break by layer order for determinism.
        order = {layer: i for i, layer in enumerate(STACK_LAYERS)}
        top = min(layer_rows, key=lambda r: (-abs(r["delta"]), order[r["layer"]]))
        if top["delta"] != 0.0:
            dominant = {"layer": top["layer"], "delta": top["delta"]}

    # --- tracks: ranks present in only one run -----------------------------
    names_a = track_names(payload_a)
    names_b = track_names(payload_b)
    tracks_a = set(stats_a) | set(names_a)
    tracks_b = set(stats_b) | set(names_b)

    def _track_row(track: Tuple[int, int], names: Dict) -> Dict[str, Any]:
        pid, tid = track
        return {
            "node": pid,
            "rank": tid,
            "track": names.get(track, "node%d rank %d" % (pid, tid)),
        }

    only_a = [_track_row(t, names_a) for t in sorted(tracks_a - tracks_b)]
    only_b = [_track_row(t, names_b) for t in sorted(tracks_b - tracks_a)]

    # --- tracepoint drift: which instrumentation fired ---------------------
    fired_a = {n for n, v in counters_a.items() if v}
    fired_b = {n for n, v in counters_b.items() if v}
    tracepoints = {
        "only_a": sorted(fired_a - fired_b),
        "only_b": sorted(fired_b - fired_a),
    }

    end_a = float(payload_a.get("metrics", {}).get("end_time", 0.0))
    end_b = float(payload_b.get("metrics", {}).get("end_time", 0.0))
    report = {
        "schema": DIFF_SCHEMA,
        "a": {
            "label": label_a,
            "end_time": end_a,
            "n_spans": len(spans_a),
            "n_tracks": len(tracks_a),
        },
        "b": {
            "label": label_b,
            "end_time": end_b,
            "n_spans": len(spans_b),
            "n_tracks": len(tracks_b),
        },
        "end_time_delta": end_b - end_a,
        "counters": counter_rows,
        "histograms": hist_rows,
        "spans": span_rows,
        "layers": layer_rows,
        "dominant_layer": dominant,
        "tracks": {"only_a": only_a, "only_b": only_b},
        "tracepoints": tracepoints,
    }
    return json.loads(canonical_json(report))


def _fmt_seconds(value: float) -> str:
    return "%+.6f s" % value


def render_diff(report: Dict[str, Any], markdown: bool = False, limit: int = 20) -> str:
    """Text or Markdown rendering of a :func:`compare_payloads` report.

    ``limit`` caps the per-section row count in the rendering (the JSON
    report always carries everything); truncation is announced.
    """
    a = report["a"]
    b = report["b"]
    lines: List[str] = []

    def heading(text: str) -> None:
        if markdown:
            lines.append("## %s" % text)
        else:
            lines.append(text)
            lines.append("-" * len(text))

    title = "telemetry diff: %s -> %s" % (a["label"], b["label"])
    if markdown:
        lines.append("# %s" % title)
    else:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(
        "elapsed: %.6f s -> %.6f s (%s)"
        % (a["end_time"], b["end_time"], _fmt_seconds(report["end_time_delta"]))
    )
    lines.append(
        "spans: %d -> %d; tracks: %d -> %d"
        % (a["n_spans"], b["n_spans"], a["n_tracks"], b["n_tracks"])
    )
    lines.append("")

    heading("self time by layer")
    if report["layers"]:
        if markdown:
            lines.append("| layer | %s | %s | delta |" % (a["label"], b["label"]))
            lines.append("|---|---|---|---|")
            for row in report["layers"]:
                lines.append(
                    "| %s | %.6f | %.6f | %+.6f |"
                    % (row["layer"], row["a"], row["b"], row["delta"])
                )
        else:
            for row in report["layers"]:
                lines.append(
                    "  %-12s %12.6f -> %12.6f  (%s)"
                    % (row["layer"], row["a"], row["b"], _fmt_seconds(row["delta"]))
                )
        dom = report["dominant_layer"]
        if dom is not None:
            lines.append(
                "dominant self-time delta: %s (%s)"
                % (dom["layer"], _fmt_seconds(dom["delta"]))
            )
    else:
        lines.append("  (no span self time in either run)")
    lines.append("")

    heading("span deltas by (node, rank, name)")
    rows = report["spans"]
    if rows:
        shown = sorted(rows, key=lambda r: (-abs(r["self_delta"]), r["node"],
                                            r["rank"], r["name"]))[:limit]
        if markdown:
            lines.append("| node | rank | name | count | self delta | total delta |")
            lines.append("|---|---|---|---|---|---|")
            for row in shown:
                lines.append(
                    "| %d | %d | %s | %d -> %d | %+.6f | %+.6f |"
                    % (row["node"], row["rank"], row["name"], row["count_a"],
                       row["count_b"], row["self_delta"], row["total_delta"])
                )
        else:
            for row in shown:
                lines.append(
                    "  node%-3d rank%-3d %-28s count %4d -> %-4d self %s"
                    % (row["node"], row["rank"], row["name"], row["count_a"],
                       row["count_b"], _fmt_seconds(row["self_delta"]))
                )
        if len(rows) > limit:
            lines.append("  ... %d more rows in the JSON report" % (len(rows) - limit))
    else:
        lines.append("  (no span-level differences)")
    lines.append("")

    heading("counter deltas")
    rows = report["counters"]
    if rows:
        shown = sorted(rows, key=lambda r: (-abs(r["delta"]), r["name"]))[:limit]
        for row in shown:
            lines.append(
                "  %-40s %14g -> %-14g (%+g)"
                % (row["name"], row["a"], row["b"], row["delta"])
            )
        if len(rows) > limit:
            lines.append("  ... %d more rows in the JSON report" % (len(rows) - limit))
    else:
        lines.append("  (no counter differences)")
    lines.append("")

    heading("histogram divergence")
    rows = report["histograms"]
    if rows:
        shown = sorted(rows, key=lambda r: (-r["divergence"], r["name"]))[:limit]
        for row in shown:
            lines.append(
                "  %-40s divergence %.4f  count %d -> %d"
                % (row["name"], row["divergence"], row["count_a"], row["count_b"])
            )
        if len(rows) > limit:
            lines.append("  ... %d more rows in the JSON report" % (len(rows) - limit))
    else:
        lines.append("  (no histogram differences)")

    only_a = report["tracks"]["only_a"]
    only_b = report["tracks"]["only_b"]
    if only_a or only_b:
        lines.append("")
        heading("track drift")
        for row in only_a:
            lines.append("  only in %s: %s" % (a["label"], row["track"]))
        for row in only_b:
            lines.append("  only in %s: %s" % (b["label"], row["track"]))

    tp = report["tracepoints"]
    if tp["only_a"] or tp["only_b"]:
        lines.append("")
        heading("tracepoint drift")
        for name in tp["only_a"]:
            lines.append("  fired only in %s: %s" % (a["label"], name))
        for name in tp["only_b"]:
            lines.append("  fired only in %s: %s" % (b["label"], name))

    return "\n".join(lines) + "\n"
