"""Text summary of an exported telemetry payload.

Consumes the ``repro/telemetry/v1`` dict that
:meth:`~repro.obs.tracepoints.TelemetryCollector.export` produces (or that
``repro figure --telemetry`` writes to disk) and renders the observability
report a human wants first: event counts, call mix, I/O volume, resource
utilizations, and the span/track shape of the Perfetto trace.  Powers the
``repro observe`` CLI command.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.errors import TelemetryError
from repro.obs.metrics import quantile_from_snapshot

__all__ = ["summarize_payload", "render_payload_summary"]

#: Counter prefixes rolled up into the "call mix" section.
_MIX_PREFIXES = ("os.calls.", "mpi.collective.", "net.", "disk.", "pfs.", "fscache.")


def _fmt_bytes(n: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(n) < 1024 or unit == "TiB":
            return "%.1f %s" % (n, unit) if unit != "B" else "%d B" % n
        n /= 1024.0
    return "%d B" % n  # pragma: no cover - loop always returns


def _timeline_mean(tl: Dict[str, Any], end_time: float) -> float:
    samples = tl.get("samples") or []
    if not samples:
        return 0.0
    area = 0.0
    for (t0, v0), (t1, _v1) in zip(samples, samples[1:]):
        area += v0 * (t1 - t0)
    last_t, last_v = samples[-1]
    if end_time > last_t:
        area += last_v * (end_time - last_t)
    span = max(end_time, last_t) - samples[0][0]
    return area / span if span > 0 else samples[0][1]


def summarize_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Reduce one telemetry payload to headline numbers (plain dict).

    Raises :class:`~repro.errors.TelemetryError` if ``payload`` is not a
    ``repro/telemetry/v1`` export.
    """
    if not isinstance(payload, dict) or payload.get("schema") != "repro/telemetry/v1":
        raise TelemetryError(
            "not a repro/telemetry/v1 payload (schema=%r)"
            % (payload.get("schema") if isinstance(payload, dict) else type(payload))
        )
    metrics = payload.get("metrics", {})
    counters: Dict[str, int] = metrics.get("counters", {})
    histograms: Dict[str, Any] = metrics.get("histograms", {})
    timelines: Dict[str, Any] = metrics.get("timelines", {})
    end_time = float(metrics.get("end_time", 0.0))
    trace = payload.get("trace", {})
    events = trace.get("traceEvents", [])
    spans = [e for e in events if e.get("ph") == "X"]
    tracks = {(e.get("pid"), e.get("tid")) for e in spans}
    return {
        "end_time": end_time,
        "events_dispatched": counters.get("des.events_dispatched", 0),
        "counters": counters,
        "histograms": histograms,
        "utilizations": {
            name: _timeline_mean(tl, end_time) for name, tl in sorted(timelines.items())
        },
        "n_spans": len(spans),
        "n_counter_samples": sum(1 for e in events if e.get("ph") == "C"),
        "n_tracks": len(tracks),
    }


def render_payload_summary(payload: Dict[str, Any], label: str = "") -> str:
    """Human-readable report of one telemetry payload."""
    s = summarize_payload(payload)
    lines: List[str] = []
    title = "telemetry%s" % ((" [%s]" % label) if label else "")
    lines.append(title)
    lines.append("=" * len(title))
    lines.append(
        "sim time %.6f s, %d kernel events, %d spans on %d tracks, %d counter samples"
        % (
            s["end_time"],
            s["events_dispatched"],
            s["n_spans"],
            s["n_tracks"],
            s["n_counter_samples"],
        )
    )
    if s["n_spans"] == 0:
        # An empty span table is almost always a capture-config problem,
        # not an empty run — say so instead of printing nothing.
        lines.append(
            "no spans recorded — telemetry captured without spans? "
            "(TelemetryConfig(spans=True) is the default; sweeps record "
            "them under --telemetry)"
        )
    mix = {
        k: v
        for k, v in s["counters"].items()
        if k.startswith(_MIX_PREFIXES) and not k.endswith(".bytes")
    }
    if mix:
        lines.append("call/op mix:")
        for name, count in sorted(mix.items(), key=lambda kv: (-kv[1], kv[0]))[:20]:
            lines.append("  %-42s %12d" % (name, count))
    byte_counters = {k: v for k, v in s["counters"].items() if k.endswith(".bytes")}
    if byte_counters:
        lines.append("bytes moved:")
        for name, n in sorted(byte_counters.items()):
            lines.append("  %-42s %12s" % (name, _fmt_bytes(n)))
    if s["histograms"]:
        lines.append("distributions (log2 buckets):")
        for name, h in sorted(s["histograms"].items()):
            count = h.get("count", 0)
            mean = (h.get("sum", 0.0) / count) if count else 0.0
            lines.append(
                "  %-42s n=%-8d mean=%.3g  p50=%.3g  p99=%.3g  buckets=%d"
                % (
                    name, count, mean,
                    quantile_from_snapshot(h, 0.50),
                    quantile_from_snapshot(h, 0.99),
                    len(h.get("buckets", {})),
                )
            )
    if s["utilizations"]:
        lines.append("mean utilization (time-weighted):")
        for name, u in s["utilizations"].items():
            lines.append("  %-42s %8.3f" % (name, u))
    return "\n".join(lines) + "\n"
