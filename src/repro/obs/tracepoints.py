"""Static tracepoints: the catalog of instrumented sites and their sink.

Modelled on kernel tracepoints: each hot layer contains fixed call sites
that check one global — ``STATE.collector`` — and do nothing when it is
``None``.  Disabled cost is therefore a single attribute load and an
``is not None`` branch per site (and the DES run loop pays *zero*: the
simulator selects an entirely separate instrumented loop at ``run()``
entry).  Enabling telemetry installs a :class:`TelemetryCollector`, and
every site funnels into its domain methods, which are the authoritative
list of what is instrumented:

=====================  ====================================================
site                   telemetry
=====================  ====================================================
``des.simulator``      event count, queue-depth timeline + counter series,
                       ring buffer of the last dispatched events
``simos.process``      per-call counters, I/O request-size histogram,
                       per-call spans (one Perfetto track per node/rank),
                       CPU-busy timeline per node
``cluster.network``    transfer count/bytes, NIC + fabric occupancy
                       timelines, transfer latency histogram
``simfs.blockdev``     per-disk op/byte/seek counters, busy timeline,
                       request-size histogram
``simfs.pfs``          per-server op/byte/seek counters + queue occupancy,
                       metadata RPC counter, extent-lock wait histogram
``simfs.cache``        hit/miss/eviction/writeback counters per cache
``simmpi.comm``        per-collective counters, collective wait-time
                       histogram + spans, message count/bytes
=====================  ====================================================

The collector never reads host wall-clock time; with a fixed seed its
exported payload is byte-identical across ``jobs=1``/``jobs=N``/warm
cache — the determinism contract the harness tests pin down.
"""

from __future__ import annotations

import json
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional

from repro.obs.metrics import MetricsRegistry, canonical_json
from repro.obs.perfetto import to_chrome_trace
from repro.obs.spans import KERNEL_PID, SpanRecorder

__all__ = [
    "TelemetryConfig",
    "TelemetryCollector",
    "STATE",
    "current",
    "enabled",
    "session",
    "describe_event",
]


@dataclass(frozen=True)
class TelemetryConfig:
    """Knobs for one telemetry session.

    Attributes
    ----------
    ring_size:
        Dispatched events kept in the ring buffer for deadlock reports.
    queue_sample_every:
        DES queue depth is sampled every this-many dispatched events.
    spans:
        Record spans/counter series (metrics are always recorded).
    """

    ring_size: int = 256
    queue_sample_every: int = 64
    spans: bool = True


class TelemetryCollector:
    """One session's sink: a metrics registry + span recorder + ring buffer."""

    __slots__ = ("config", "metrics", "spans", "ring", "_cpu_level")

    def __init__(self, config: Optional[TelemetryConfig] = None):
        self.config = config or TelemetryConfig()
        self.metrics = MetricsRegistry()
        self.spans = SpanRecorder(enabled=self.config.spans)
        self.ring: deque = deque(maxlen=self.config.ring_size)
        self.spans.name_track(KERNEL_PID, "sim-kernel")
        self._cpu_level: Dict[int, int] = {}

    # -- des.simulator -------------------------------------------------------

    def des_events(self, executed: int) -> None:
        """One run-loop drain finished ``executed`` event dispatches."""
        self.metrics.inc("des.events_dispatched", executed)
        self.metrics.inc("des.run_calls")

    def des_queue_depth(self, t: float, depth: int) -> None:
        """Periodic sample of the pending-event queue depth."""
        self.metrics.sample("des.queue_depth", t, depth)
        self.spans.counter(KERNEL_PID, "des.queue_depth", t, depth)

    # -- simos.process -------------------------------------------------------

    def os_track(self, node_index: int, hostname: str, tid: int, tname: str) -> None:
        """Register display names for a (node, rank-or-pid) span track."""
        self.spans.name_track(node_index, "node%d %s" % (node_index, hostname),
                              tid, tname)

    def os_call(
        self,
        node_index: int,
        tid: int,
        layer: str,
        name: str,
        t0: float,
        dur: float,
        nbytes: Optional[int],
    ) -> None:
        """One dispatched syscall/libcall (after its body completed)."""
        m = self.metrics
        m.inc("os.calls.%s" % layer)
        m.inc("os.%s.%s" % (layer, name))
        m.observe("os.call_seconds", dur)
        if nbytes is not None:
            m.observe("os.io_request_bytes", nbytes)
        if self.spans.enabled:
            args = {"nbytes": nbytes} if nbytes is not None else None
            self.spans.complete(node_index, tid, name, layer, t0, dur, args)

    def cpu_busy(self, node_index: int, t: float, delta: int) -> None:
        """A CPU charge began (+1) or ended (-1) on a node."""
        level = self._cpu_level.get(node_index, 0) + delta
        self._cpu_level[node_index] = level
        self.metrics.sample("cpu.node%d.busy" % node_index, t, level)

    # -- cluster.network -----------------------------------------------------

    def net_transfer(self, nbytes: int, t0: float, dur: float) -> None:
        """One message fully moved sender-NIC -> fabric -> delivered."""
        m = self.metrics
        m.inc("net.transfers")
        m.inc("net.bytes", nbytes)
        m.observe("net.transfer_seconds", dur)

    def net_nic(self, name: str, t: float, in_use: int) -> None:
        """Occupancy change on one endpoint link (NIC)."""
        self.metrics.sample("net.%s.in_use" % name, t, in_use)

    def net_fabric(self, t: float, in_use: int) -> None:
        """Occupancy change on the shared switch fabric."""
        self.metrics.sample("net.fabric.in_use", t, in_use)
        self.spans.counter(KERNEL_PID, "net.fabric.in_use", t, in_use)

    # -- repro.faults --------------------------------------------------------

    def fault_event(self, kind: str, t: float) -> None:
        """A scheduled fault fired or recovered (node_crash, heal, ...)."""
        self.metrics.inc("faults.events")
        self.metrics.inc("faults.%s" % kind)

    def fault_injection(self, kind: str) -> None:
        """One stochastic injection hit (packet_drop, disk_error, ...)."""
        self.metrics.inc("faults.injected.%s" % kind)

    # -- repro.store ---------------------------------------------------------

    def store_ingest(self, segments: int, new: int, deduped: int,
                     events: int) -> None:
        """One bundle archived into a TraceBank (ingest accounting)."""
        m = self.metrics
        m.inc("store.ingest.runs")
        m.inc("store.ingest.segments", segments)
        m.inc("store.ingest.new_segments", new)
        m.inc("store.ingest.deduped_segments", deduped)
        m.inc("store.ingest.events", events)

    def store_scan(self, scanned: int, pruned: int, matched: int) -> None:
        """One archive query/DFG scan finished (pushdown accounting)."""
        m = self.metrics
        m.inc("store.scan.queries")
        m.inc("store.scan.segments_scanned", scanned)
        m.inc("store.scan.segments_pruned", pruned)
        m.inc("store.scan.events_matched", matched)

    def service_request(self, route: str, status: int, seconds: float) -> None:
        """One TraceBank-service HTTP request finished (any route/status)."""
        m = self.metrics
        m.inc("service.requests")
        m.inc("service.route.%s.requests" % route)
        m.inc("service.status.%dxx" % (status // 100))
        m.observe("service.request_seconds", seconds)

    # -- simfs ---------------------------------------------------------------

    def disk_op(self, name: str, t: float, nbytes: int, sequential: bool,
                in_use: int) -> None:
        """One extent serviced by a block device."""
        m = self.metrics
        m.inc("disk.%s.ops" % name)
        m.inc("disk.%s.bytes" % name, nbytes)
        if not sequential:
            m.inc("disk.%s.seeks" % name)
        m.observe("disk.request_bytes", nbytes)
        m.sample("disk.%s.busy" % name, t, in_use)

    def pfs_chunk(self, server: str, t: float, nbytes: int, sequential: bool,
                  in_use: int) -> None:
        """One striped chunk serviced by a PFS storage server."""
        m = self.metrics
        m.inc("pfs.%s.ops" % server)
        m.inc("pfs.%s.bytes" % server, nbytes)
        if not sequential:
            m.inc("pfs.%s.seeks" % server)
        m.sample("pfs.%s.in_use" % server, t, in_use)

    def pfs_meta_rpc(self) -> None:
        """One metadata-server RPC."""
        self.metrics.inc("pfs.meta_rpcs")

    def pfs_lock_wait(self, seconds: float) -> None:
        """Time one writer spent acquiring a shared-file extent lock."""
        self.metrics.inc("pfs.extent_locks")
        self.metrics.observe("pfs.extent_lock_wait_seconds", seconds)

    def cache_access(self, name: str, hits: int, misses: int) -> None:
        """One read/write passed through a caching layer."""
        m = self.metrics
        if hits:
            m.inc("fscache.%s.hits" % name, hits)
        if misses:
            m.inc("fscache.%s.misses" % name, misses)

    def cache_writeback(self, name: str, blocks: int) -> None:
        """Dirty blocks flushed from a caching layer to the lower FS."""
        self.metrics.inc("fscache.%s.writebacks" % name, blocks)

    # -- simmpi --------------------------------------------------------------

    def mpi_collective(self, name: str, node_index: int, rank: int,
                       t0: float, wait: float) -> None:
        """One rank completed one collective; ``wait`` = entry to release."""
        m = self.metrics
        m.inc("mpi.collective.%s" % name)
        m.observe("mpi.collective_wait_seconds", wait)
        if self.spans.enabled:
            self.spans.complete(
                node_index, rank, "%s:wait" % name, "collective", t0, wait, None
            )

    def mpi_message(self, nbytes: int) -> None:
        """One point-to-point message handed to the network."""
        self.metrics.inc("mpi.messages")
        self.metrics.inc("mpi.message_bytes", nbytes)

    # -- export --------------------------------------------------------------

    def format_ring(self) -> List[str]:
        """Human-readable rendering of the dispatched-event ring buffer."""
        return [describe_event(t, cb, args) for (t, cb, args) in self.ring]

    def export(self, end_time: float) -> Dict[str, Any]:
        """The session's full payload: metrics snapshot + Chrome trace.

        Normalized through a JSON round trip so the payload compares equal
        before and after a run-cache round trip (byte-identity contract).
        """
        payload = {
            "schema": "repro/telemetry/v1",
            "metrics": self.metrics.snapshot(end_time=end_time),
            "trace": to_chrome_trace(self.spans),
        }
        return json.loads(canonical_json(payload))


def describe_event(t: float, callback: Any, args: tuple) -> str:
    """One ring-buffer entry as text: time, target process, callback."""
    owner = getattr(callback, "__self__", None)
    fname = getattr(callback, "__name__", None) or repr(callback)
    owner_name = getattr(owner, "name", None)
    if owner_name is not None:
        target = "%s<%s>" % (fname.lstrip("_"), owner_name)
    else:
        target = getattr(callback, "__qualname__", fname)
    try:
        rendered_args = ", ".join(repr(a) for a in args)
    except Exception:  # pragma: no cover - defensive: repr must not break reports
        rendered_args = "?"
    return "t=%.9f %s(%s)" % (t, target, rendered_args)


class _TracepointState:
    """Holder for the active collector (attribute load is the fast path)."""

    __slots__ = ("collector",)

    def __init__(self) -> None:
        self.collector: Optional[TelemetryCollector] = None


#: The one global every tracepoint site checks.
STATE = _TracepointState()


def current() -> Optional[TelemetryCollector]:
    """The active collector, or None when telemetry is off."""
    return STATE.collector


def enabled() -> bool:
    """True while a telemetry session is active."""
    return STATE.collector is not None


@contextmanager
def session(
    config: Optional[TelemetryConfig] = None,
) -> Iterator[TelemetryCollector]:
    """Activate a fresh collector for the dynamic extent of the block.

    Sessions may nest; the inner session shadows the outer one (sites see
    only the innermost collector), and the outer is restored on exit.
    """
    prev = STATE.collector
    col = TelemetryCollector(config)
    STATE.collector = col
    try:
        yield col
    finally:
        STATE.collector = prev
