"""Metrics registry: counters, gauges, log2 histograms, step timelines.

Everything here is stamped with *simulated* time and designed so that a
snapshot is (a) plain JSON data — string keys, lists, numbers — and (b)
bit-for-bit reproducible for the same seed: instruments are updated in
event-dispatch order, snapshots render with sorted keys, and timelines
decimate deterministically when they grow past their sample budget.

The JSON-purity rule matters because snapshots round-trip through the run
cache (:mod:`repro.harness.runcache`): a payload that survives
``json.loads(json.dumps(payload))`` unchanged is what makes warm-cache
hits byte-identical to fresh runs.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, List, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timeline",
    "MetricsRegistry",
    "canonical_json",
    "quantile_from_buckets",
    "quantile_from_snapshot",
]

#: Bucket key for zero/negative observations (sorts below any exponent).
ZERO_BUCKET = -(10**6)


def canonical_json(obj: Any) -> str:
    """The one true rendering: sorted keys, no whitespace, strict floats.

    Used for snapshot byte-identity comparisons and artifact files.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), allow_nan=False)


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the running total."""
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Overwrite the current value."""
        self.value = value


class Histogram:
    """Log2-bucketed distribution of non-negative observations.

    An observation ``v > 0`` lands in bucket ``floor(log2(v))`` (so bucket
    ``e`` covers ``[2^e, 2^(e+1))``); zero and negative values land in the
    dedicated ``"zero"`` bucket.  Works for byte sizes (positive
    exponents) and sub-second durations (negative exponents) alike.
    """

    __slots__ = ("count", "total", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        """Record one observation into its log2 bucket."""
        self.count += 1
        self.total += value
        if value > 0:
            e = math.floor(math.log2(value))
        else:
            e = None
        if e is None:
            self.buckets[ZERO_BUCKET] = self.buckets.get(ZERO_BUCKET, 0) + 1
        else:
            self.buckets[e] = self.buckets.get(e, 0) + 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile from the log2 buckets.

        Nearest-rank walk over the buckets in ascending value order, with
        linear interpolation inside the winning bucket ``[2^e, 2^(e+1))``;
        observations in the zero bucket contribute 0.  ``quantile(1.0)``
        returns the top bucket's upper bound — the tightest value the
        bucketing can still prove is an upper bound.
        """
        return quantile_from_buckets(self.buckets, self.count, q)

    def snapshot(self) -> Dict[str, Any]:
        """Plain-JSON rendering: count, sum, and string-keyed buckets."""
        buckets = {
            ("zero" if e == ZERO_BUCKET else str(e)): n
            for e, n in self.buckets.items()
        }
        return {"count": self.count, "sum": self.total, "buckets": buckets}


def quantile_from_buckets(
    buckets: Dict[int, int], count: int, q: float
) -> float:
    """The shared log2-bucket quantile estimator (see :meth:`Histogram.quantile`).

    ``buckets`` maps exponents to counts (:data:`ZERO_BUCKET` for the
    zero bucket); ``count`` is the total observation count.
    """
    if count <= 0:
        return 0.0
    q = min(1.0, max(0.0, q))
    rank = max(1, math.ceil(q * count))
    cum = 0
    for e in sorted(buckets):
        n = buckets[e]
        if n <= 0:
            continue
        cum += n
        if cum >= rank:
            if e == ZERO_BUCKET:
                return 0.0
            lo, hi = 2.0 ** e, 2.0 ** (e + 1)
            frac = (rank - (cum - n)) / n
            return lo + frac * (hi - lo)
    return 0.0  # pragma: no cover - cum always reaches count >= rank


def quantile_from_snapshot(snapshot: Dict[str, Any], q: float) -> float:
    """:func:`quantile_from_buckets` over a histogram's plain-JSON snapshot
    (the ``{"count", "sum", "buckets"}`` dict :meth:`Histogram.snapshot`
    renders), so reports can quote quantiles without the live instrument.
    """
    raw = snapshot.get("buckets") or {}
    buckets = {
        (ZERO_BUCKET if key == "zero" else int(key)): int(n)
        for key, n in raw.items()
    }
    return quantile_from_buckets(buckets, int(snapshot.get("count", 0)), q)


class Timeline:
    """Step samples ``(t, value)`` of one quantity over simulated time.

    Used for per-resource utilization: disk busy slots, network link and
    fabric occupancy, CPU-per-node.  Growth is bounded by deterministic
    decimation: when the sample budget fills, every other retained sample
    is dropped and the acceptance stride doubles, so the same run always
    keeps exactly the same samples regardless of budget pressure history.
    """

    __slots__ = ("samples", "stride", "_offered", "max_samples", "last_value")

    def __init__(self, max_samples: int = 8192) -> None:
        self.samples: List[List[float]] = []
        self.stride = 1
        self._offered = 0
        self.max_samples = max_samples
        self.last_value: float = 0.0

    def add(self, t: float, value: float) -> None:
        """Offer one sample; kept only when it lands on the current stride."""
        self.last_value = value
        if self._offered % self.stride == 0:
            if len(self.samples) >= self.max_samples:
                self.samples = self.samples[::2]
                self.stride *= 2
                if self._offered % self.stride != 0:
                    self._offered += 1
                    return
            self.samples.append([t, value])
        self._offered += 1

    def time_weighted_mean(self, end_time: float) -> float:
        """Mean value over [first sample, end_time] (0 if no samples)."""
        if not self.samples:
            return 0.0
        area = 0.0
        for (t0, v0), (t1, _v1) in zip(self.samples, self.samples[1:]):
            area += v0 * (t1 - t0)
        last_t, last_v = self.samples[-1]
        if end_time > last_t:
            area += last_v * (end_time - last_t)
        span = max(end_time, last_t) - self.samples[0][0]
        return area / span if span > 0 else self.samples[0][1]

    def snapshot(self) -> Dict[str, Any]:
        """Plain-JSON rendering: stride, offered count, retained samples."""
        return {
            "stride": self.stride,
            "n_offered": self._offered,
            "last_value": self.last_value,
            "samples": [list(s) for s in self.samples],
        }


class MetricsRegistry:
    """Named instruments, created on first use.

    One registry per telemetry session; nothing here touches host wall
    time, so a registry's snapshot is a pure function of the simulated
    history that fed it.
    """

    __slots__ = ("_counters", "_gauges", "_histograms", "_timelines")

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._timelines: Dict[str, Timeline] = {}

    # -- instrument accessors (create on first use) -------------------------

    def counter(self, name: str) -> Counter:
        """The named :class:`Counter`, created on first use."""
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        """The named :class:`Gauge`, created on first use."""
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge()
        return g

    def histogram(self, name: str) -> Histogram:
        """The named :class:`Histogram`, created on first use."""
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram()
        return h

    def timeline(self, name: str, max_samples: int = 8192) -> Timeline:
        """The named :class:`Timeline`, created on first use."""
        t = self._timelines.get(name)
        if t is None:
            t = self._timelines[name] = Timeline(max_samples=max_samples)
        return t

    # -- shorthands used by tracepoint sites --------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        """Increment the named counter."""
        self.counter(name).inc(amount)

    def observe(self, name: str, value: float) -> None:
        """Record one observation into the named histogram."""
        self.histogram(name).observe(value)

    def sample(self, name: str, t: float, value: float) -> None:
        """Offer one ``(t, value)`` sample to the named timeline."""
        self.timeline(name).add(t, value)

    # -- export -------------------------------------------------------------

    def snapshot(self, end_time: Optional[float] = None) -> Dict[str, Any]:
        """Plain-JSON rendering of every instrument (deterministic).

        ``end_time`` (the simulation's final instant) is recorded so
        reports can compute time-weighted utilizations without the live
        simulator.
        """
        snap: Dict[str, Any] = {
            "counters": {k: c.value for k, c in sorted(self._counters.items())},
            "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
            "histograms": {
                k: h.snapshot() for k, h in sorted(self._histograms.items())
            },
            "timelines": {
                k: t.snapshot() for k, t in sorted(self._timelines.items())
            },
        }
        if end_time is not None:
            snap["end_time"] = end_time
        return snap
