"""The baseline perf sentinel: BENCH history + robust change detection.

The ROADMAP's north star ("runs as fast as the hardware allows") needs
the repo to notice its own regressions, and ``BENCH_sweep.json`` is a
single point with no history.  This module closes the loop:

* ``repro figures --baseline`` appends one ``repro/bench_history/v1``
  record per sweep to an append-only ``BENCH_history.jsonl`` — per
  figure point it keeps the headline metrics (simulated elapsed for both
  runs, overhead %, events/sec, wall seconds, wall time per simulated
  second);
* ``repro obs check`` replays the history and flags the latest record's
  deviations with **median/MAD** change detection: for each (figure,
  block size, metric) series the latest value is compared against the
  median of the prior records, with a threshold of
  ``max(k * 1.4826 * MAD, rel_floor * |median|, abs_floor)``.

Two metric classes get different floors.  Simulated quantities (elapsed
seconds, overhead %) are deterministic — any drift is a real behaviour
change, so their relative floor is tight (1%).  Host-clock quantities
(events/sec, wall seconds) are hardware noise — their floor is wide
(30%) and MAD carries the signal.  Direction matters: more events/sec
is an improvement, more elapsed is a regression.

``repro obs check --fail-on-regression`` exits nonzero when any metric
regresses — the CI gate from "PR merged" to "this PR made N-to-1
strided 12% slower at 64 KiB blocks".
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.errors import TelemetryError
from repro.obs.metrics import canonical_json

__all__ = [
    "HISTORY_SCHEMA",
    "CHECK_SCHEMA",
    "METRIC_SPECS",
    "MAD_CONSISTENCY",
    "median",
    "mad",
    "robust_threshold",
    "make_record",
    "append_history",
    "load_history",
    "check_history",
    "render_check",
]

HISTORY_SCHEMA = "repro/bench_history/v1"
CHECK_SCHEMA = "repro/obs/check/v1"

#: Normal-consistency constant: sigma ~= 1.4826 * MAD for Gaussian noise.
MAD_CONSISTENCY = 1.4826

#: Per-metric gate policy.  ``direction`` is +1 when a larger value is
#: worse (time-like), -1 when a larger value is better (rate-like);
#: ``rel_floor``/``abs_floor`` are the minimum meaningful change —
#: tight for deterministic simulated quantities, wide for host-clock
#: quantities that jitter with the machine running the sweep.
METRIC_SPECS: Dict[str, Dict[str, float]] = {
    "elapsed_untraced": {"direction": 1, "rel_floor": 0.01, "abs_floor": 1e-9},
    "elapsed_traced": {"direction": 1, "rel_floor": 0.01, "abs_floor": 1e-9},
    "overhead_pct": {"direction": 1, "rel_floor": 0.01, "abs_floor": 0.5},
    "events_per_sec": {"direction": -1, "rel_floor": 0.30, "abs_floor": 1e3},
    "wall_seconds": {"direction": 1, "rel_floor": 0.30, "abs_floor": 0.05},
    "wall_time_per_sim_second": {
        "direction": 1,
        "rel_floor": 0.30,
        "abs_floor": 0.05,
    },
    # Archive-scan metrics (codec benchmark points).  Scan throughput is
    # a host-clock rate — more MB/s is better, wide noise floor.  Bytes
    # per stored event is deterministic codec output — any growth is a
    # real format regression, so the floor is tight.
    "scan_mb_per_sec": {"direction": -1, "rel_floor": 0.30, "abs_floor": 1.0},
    "bytes_per_event": {"direction": 1, "rel_floor": 0.01, "abs_floor": 0.5},
    # Archive diagnosis throughput (BENCH_diagnose.json): fingerprints +
    # outlier scoring per second over archived runs.  Host-clock rate —
    # more runs/sec is better, wide noise floor.
    "diagnose_runs_per_sec": {"direction": -1, "rel_floor": 0.30, "abs_floor": 1.0},
    # Service load-test throughput (BENCH_service.json): requests served
    # per second across the loadgen's ingest/query mix.  Host-clock rate
    # over sockets — more req/s is better, wide noise floor.
    "service_req_per_sec": {"direction": -1, "rel_floor": 0.30, "abs_floor": 1.0},
    # Service tail latency (BENCH_service.json): client-observed p99 in
    # milliseconds across the loadgen mix.  Host-clock time over sockets
    # — larger is worse, wide noise floor, and sub-millisecond jitter is
    # never a signal.
    "service_p99_ms": {"direction": 1, "rel_floor": 0.30, "abs_floor": 1.0},
    # Workload-zoo replay throughput (BENCH_zoo.json): simulated kernel
    # events the replay testbed dispatched per host second while
    # re-executing an archived scenario's op schedule.  Host-clock rate —
    # more events/s is better, wide noise floor.
    "zoo_replay_events_per_sec": {"direction": -1, "rel_floor": 0.30, "abs_floor": 1.0},
}


def make_record(
    points: List[Dict[str, Any]],
    quick: bool = False,
    nprocs: Optional[int] = None,
    jobs: Optional[int] = None,
    label: Optional[str] = None,
) -> Dict[str, Any]:
    """One history record from a sweep's headline points.

    ``points`` rows are the :meth:`~repro.harness.parallel.PointResult.
    headline` dicts the figure sweep emits (each carrying ``figure``,
    ``block_size`` and the :data:`METRIC_SPECS` metrics).  The record is
    canonical-JSON-normalized; no host clock is read here — callers that
    want timestamps put them in ``label``.
    """
    record = {
        "schema": HISTORY_SCHEMA,
        "quick": bool(quick),
        "nprocs": nprocs,
        "jobs": jobs,
        "label": label,
        "points": points,
    }
    return json.loads(canonical_json(record))


def append_history(path: Union[str, Path], record: Dict[str, Any]) -> int:
    """Append one record to the JSONL history; returns its 0-based index."""
    if record.get("schema") != HISTORY_SCHEMA:
        raise TelemetryError(
            "refusing to append non-%s record (schema=%r)"
            % (HISTORY_SCHEMA, record.get("schema"))
        )
    p = Path(path)
    existing = 0
    if p.exists():
        with p.open("r", encoding="utf-8") as fh:
            existing = sum(1 for line in fh if line.strip())
    with p.open("a", encoding="utf-8") as fh:
        fh.write(canonical_json(record) + "\n")
    return existing


def load_history(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """All records of a JSONL history file, in append order.

    Raises :class:`~repro.errors.TelemetryError` on unparseable lines or
    foreign schemas — a corrupted history must not silently pass a gate.
    """
    p = Path(path)
    records: List[Dict[str, Any]] = []
    for lineno, line in enumerate(p.read_text("utf-8").splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError as exc:
            raise TelemetryError(
                "%s:%d: unparseable history line (%s)" % (p, lineno, exc)
            ) from None
        if not isinstance(record, dict) or record.get("schema") != HISTORY_SCHEMA:
            raise TelemetryError(
                "%s:%d: not a %s record (schema=%r)"
                % (p, lineno, HISTORY_SCHEMA, record.get("schema")
                   if isinstance(record, dict) else type(record))
            )
        records.append(record)
    return records


def median(values: List[float]) -> float:
    """The sample median (mean of the middle pair for even counts)."""
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def mad(values: List[float], center: float) -> float:
    """Median absolute deviation around ``center``."""
    return median([abs(v - center) for v in values])


def robust_threshold(
    center: float,
    spread: float,
    k: float,
    rel_floor: float,
    abs_floor: float,
) -> float:
    """The repo-wide change threshold: ``max(k*1.4826*MAD, floors)``.

    Shared by the baseline gate and the archive diagnosis scorer so
    "how far from the median counts as anomalous" has exactly one
    definition.
    """
    return max(k * MAD_CONSISTENCY * spread, rel_floor * abs(center), abs_floor)


# Backwards-compatible private aliases (pre-diagnose internal names).
_median = median
_mad = mad


def _series(records: List[Dict[str, Any]]) -> Dict[Any, List[float]]:
    """(figure, block_size, metric) -> value per record, append order.

    A record that lacks a point for a key simply contributes nothing to
    that series — histories survive sweeps with different shapes.
    """
    series: Dict[Any, List[float]] = {}
    for record in records:
        for point in record.get("points", []):
            fig = point.get("figure")
            bs = point.get("block_size")
            for metric in METRIC_SPECS:
                value = point.get(metric)
                if isinstance(value, (int, float)):
                    series.setdefault((fig, bs, metric), []).append(float(value))
    return series


def check_history(
    records: List[Dict[str, Any]],
    k: float = 4.0,
    min_history: int = 2,
) -> Dict[str, Any]:
    """Gate the latest record against the prior history.

    For each (figure, block_size, metric) series present in the latest
    record, the deviation from the priors' median is compared against
    ``max(k * 1.4826 * MAD, rel_floor * |median|, abs_floor)``.  A
    deviation beyond the threshold in the metric's worse direction is a
    ``regression``; in the better direction, an ``improvement``; series
    with fewer than ``min_history`` prior values are ``insufficient-
    history``.  Returns the canonical ``repro/obs/check/v1`` report.
    """
    rows: List[Dict[str, Any]] = []
    if len(records) < 1:
        raise TelemetryError("empty history: nothing to check")
    for (fig, bs, metric), values in sorted(_series(records).items(),
                                            key=lambda kv: (
                                                str(kv[0][0]), str(kv[0][1]),
                                                kv[0][2])):
        latest = values[-1]
        priors = values[:-1]
        spec = METRIC_SPECS[metric]
        row: Dict[str, Any] = {
            "figure": fig,
            "block_size": bs,
            "metric": metric,
            "latest": latest,
            "n_history": len(priors),
        }
        if len(priors) < min_history:
            row.update(status="insufficient-history", median=None, mad=None,
                       threshold=None, deviation=None)
            rows.append(row)
            continue
        center = median(priors)
        spread = mad(priors, center)
        threshold = robust_threshold(
            center, spread, k, spec["rel_floor"], spec["abs_floor"]
        )
        # Positive deviation = moved in the metric's worse direction.
        deviation = spec["direction"] * (latest - center)
        if deviation > threshold:
            status = "regression"
        elif deviation < -threshold:
            status = "improvement"
        else:
            status = "ok"
        row.update(status=status, median=center, mad=spread,
                   threshold=threshold, deviation=deviation)
        rows.append(row)
    regressions = [r for r in rows if r["status"] == "regression"]
    improvements = [r for r in rows if r["status"] == "improvement"]
    report = {
        "schema": CHECK_SCHEMA,
        "params": {"k": k, "mad_consistency": MAD_CONSISTENCY,
                   "min_history": min_history},
        "n_records": len(records),
        "rows": rows,
        "summary": {
            "series": len(rows),
            "ok": sum(1 for r in rows if r["status"] == "ok"),
            "regressions": len(regressions),
            "improvements": len(improvements),
            "insufficient_history": sum(
                1 for r in rows if r["status"] == "insufficient-history"
            ),
        },
    }
    return json.loads(canonical_json(report))


def render_check(report: Dict[str, Any]) -> str:
    """Human-readable rendering of a :func:`check_history` report."""
    s = report["summary"]
    lines: List[str] = [
        "baseline check over %d record(s): %d series — %d ok, %d regression(s), "
        "%d improvement(s), %d with insufficient history"
        % (report["n_records"], s["series"], s["ok"], s["regressions"],
           s["improvements"], s["insufficient_history"])
    ]
    flagged = [r for r in report["rows"] if r["status"] in ("regression",
                                                           "improvement")]
    if flagged:
        lines.append(
            "%-8s %-10s %-26s %12s %12s %12s  %s"
            % ("figure", "blocksize", "metric", "median", "latest",
               "threshold", "status")
        )
        for r in flagged:
            pct = ""
            if r["median"]:
                pct = " (%+.1f%%)" % (100.0 * (r["latest"] - r["median"])
                                      / abs(r["median"]))
            lines.append(
                "%-8s %-10s %-26s %12.6g %12.6g %12.6g  %s%s"
                % (str(r["figure"]), str(r["block_size"]), r["metric"],
                   r["median"], r["latest"], r["threshold"],
                   r["status"].upper(), pct)
            )
    if s["regressions"] == 0:
        lines.append("no regressions detected")
    return "\n".join(lines) + "\n"
