"""Simulator-wide telemetry: metrics, tracepoints, spans, trace export.

The paper's subject is making I/O behaviour observable; this package
gives the *simulator itself* the same treatment, so performance and
robustness work has data instead of guesses:

* :mod:`repro.obs.metrics` — counters, gauges, log2-bucketed histograms
  and step timelines, all stamped with **simulated** time;
* :mod:`repro.obs.tracepoints` — the static tracepoint catalog threaded
  through the hot layers (DES dispatch, network transfers, disk/PFS/cache
  operations, MPI collectives, syscall dispatch), compiled to no-ops when
  telemetry is off;
* :mod:`repro.obs.spans` — a span-based sim-time profiler nesting spans
  per node/rank;
* :mod:`repro.obs.perfetto` — Chrome trace-event JSON export (loadable in
  Perfetto / ``chrome://tracing``) plus a schema validator;
* :mod:`repro.obs.report` — the ``repro observe`` summary report over an
  exported payload;
* :mod:`repro.obs.compare` — cross-run telemetry diffing (``repro obs
  diff``): counter deltas, histogram divergence, span-tree alignment;
* :mod:`repro.obs.critpath` — critical-path attribution: per-layer self
  time, the slowest-rank chain, collapsed-stack flamegraph export;
* :mod:`repro.obs.baseline` — the baseline perf sentinel:
  ``BENCH_history.jsonl`` + median/MAD change detection behind
  ``repro obs check``;
* :mod:`repro.obs.slice` — causal slicing (``repro obs slice``): the
  cross-layer chain, per-layer window attribution, fault candidates and
  ranked suspects explaining one run's latency around an anchor;
* :mod:`repro.obs.diagnose` — archive-scale anomaly diagnosis
  (``repro obs diagnose``): fingerprint every TraceBank run, cluster by
  DFG-shape distance, flag outliers with median/MAD scoring, auto-slice
  each one;
* :mod:`repro.obs.reqtrace` — end-to-end *wall-clock* request tracing
  for the TraceBank service: traceparent-style context propagation,
  the bounded span ring with slowest-per-route exemplar retention, and
  Perfetto/flamegraph export behind ``repro obs reqtrace``/``obs top``;
* :mod:`repro.obs.prom` — Prometheus text exposition (and a strict
  parser) over a metrics snapshot, serving ``GET /v1/metrics?format=
  prom``.

Telemetry is deterministic: it is stamped exclusively with simulated time
and recorded in dispatch order, so the same seed produces byte-identical
metric snapshots and span traces whether a sweep ran serially, fanned out
over worker processes, or replayed from a warm run cache.

Enable it around any simulation::

    from repro.obs import tracepoints

    with tracepoints.session() as col:
        figure_series(2, ...)          # any simulated work
        payload = col.export(end_time=...)
"""

from repro.obs import (
    baseline,
    compare,
    critpath,
    diagnose,
    metrics,
    perfetto,
    prom,
    report,
    reqtrace,
    slice,
    spans,
    tracepoints,
)
from repro.obs.baseline import append_history, check_history, make_record
from repro.obs.compare import compare_payloads, render_diff
from repro.obs.critpath import critical_path, flamegraph_lines
from repro.obs.diagnose import diagnose_archive, render_diagnose
from repro.obs.slice import causal_slice, render_slice, slice_from_store
from repro.obs.metrics import MetricsRegistry
from repro.obs.perfetto import to_chrome_trace, validate_chrome_trace
from repro.obs.prom import parse_prometheus, render_prometheus
from repro.obs.reqtrace import (
    RequestTrace,
    RequestTraceLog,
    trace_flamegraph_lines,
    trace_to_chrome,
)
from repro.obs.report import render_payload_summary, summarize_payload
from repro.obs.spans import SpanRecorder
from repro.obs.tracepoints import TelemetryCollector, TelemetryConfig, session

__all__ = [
    "metrics",
    "tracepoints",
    "spans",
    "perfetto",
    "report",
    "compare",
    "critpath",
    "baseline",
    "slice",
    "diagnose",
    "reqtrace",
    "prom",
    "RequestTrace",
    "RequestTraceLog",
    "trace_flamegraph_lines",
    "trace_to_chrome",
    "parse_prometheus",
    "render_prometheus",
    "compare_payloads",
    "render_diff",
    "critical_path",
    "flamegraph_lines",
    "causal_slice",
    "render_slice",
    "slice_from_store",
    "diagnose_archive",
    "render_diagnose",
    "make_record",
    "append_history",
    "check_history",
    "render_payload_summary",
    "summarize_payload",
    "MetricsRegistry",
    "SpanRecorder",
    "TelemetryCollector",
    "TelemetryConfig",
    "session",
    "to_chrome_trace",
    "validate_chrome_trace",
]
