"""Span-based sim-time profiler.

Spans are *complete* intervals — name, category, start, duration — on a
two-level track hierarchy: ``pid`` is a node (one Perfetto process row
per cluster node) and ``tid`` is a rank or simulated PID (one thread row
per rank).  Overlapping spans on one track nest visually in Perfetto, so
a syscall span containing its disk-service wait renders as a flame.

Counter series (event-queue depth, fabric occupancy) ride along as
Chrome ``"C"`` events.

All timestamps are **simulated** seconds; the exporter scales to the
microseconds Chrome's trace-event format expects.  Recording order is
dispatch order, which is deterministic, so two same-seed runs produce
identical span lists.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

__all__ = ["SpanRecorder"]

#: pid used for simulator-global (non-node) tracks, e.g. the DES kernel.
KERNEL_PID = -1


class SpanRecorder:
    """Accumulates spans, counter samples, and track naming metadata."""

    __slots__ = ("spans", "counters", "process_names", "thread_names", "enabled")

    def __init__(self, enabled: bool = True) -> None:
        #: (pid, tid, name, cat, ts, dur, args-or-None), in recording order.
        self.spans: List[Tuple[int, int, str, str, float, float, Optional[dict]]] = []
        #: (pid, name, ts, value) counter samples, in recording order.
        self.counters: List[Tuple[int, str, float, float]] = []
        self.process_names: Dict[int, str] = {}
        self.thread_names: Dict[Tuple[int, int], str] = {}
        self.enabled = enabled

    def name_track(self, pid: int, process_name: str, tid: Optional[int] = None,
                   thread_name: Optional[str] = None) -> None:
        """Register display names for a process row (and optionally a thread)."""
        self.process_names.setdefault(pid, process_name)
        if tid is not None and thread_name is not None:
            self.thread_names.setdefault((pid, tid), thread_name)

    def complete(
        self,
        pid: int,
        tid: int,
        name: str,
        cat: str,
        ts: float,
        dur: float,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record one finished span (simulated seconds)."""
        if self.enabled:
            self.spans.append((pid, tid, name, cat, ts, dur, args))

    def counter(self, pid: int, name: str, ts: float, value: float) -> None:
        """Record one counter sample (simulated seconds)."""
        if self.enabled:
            self.counters.append((pid, name, ts, value))

    def __len__(self) -> int:
        return len(self.spans)
