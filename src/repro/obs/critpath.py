"""Critical-path attribution over an exported telemetry payload.

The span recorder (:mod:`repro.obs.spans`) captures every dispatched call
as a complete interval on a ``(node, rank)`` track.  This module turns
those flat interval lists into answers about *where time went*:

* :func:`build_forest` — per-track span trees recovered from interval
  nesting (a syscall inside an MPI-IO libcall becomes its child);
* :func:`stack_layer` — the span -> stack-layer attribution map
  (``des`` / ``simos`` / ``network`` / ``simfs`` / ``simmpi`` /
  ``framework``), where *self time* charged to ``simfs`` is the
  blockdev-bound data path (read/write/fsync service time);
* :func:`track_stats` — per-track totals: busy time, self time by span
  name and by layer, and the track's last-completion instant;
* :func:`critical_path` — the slowest-rank chain that bounds elapsed
  time (the paper's N-to-1 stragglers made visible): the straggler
  track, its per-layer self-time profile, and the root-to-leaf span
  chain ending at the run's final completion;
* :func:`flamegraph_lines` — collapsed-stack lines
  (``node0;rank 1;MPI_File_open;SYS_open 42``) for any flamegraph
  renderer, self-time-weighted in integer microseconds.

Everything here is a pure function of the payload; with the simulator's
determinism contract the output is byte-identical across ``jobs=1`` /
``jobs=N`` / warm-cache replays of the run that produced it.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import TelemetryError
from repro.obs.metrics import canonical_json
from repro.obs.spans import KERNEL_PID

__all__ = [
    "CRITPATH_SCHEMA",
    "STACK_LAYERS",
    "DATA_SYSCALLS",
    "SpanNode",
    "stack_layer",
    "payload_spans",
    "build_forest",
    "track_stats",
    "critical_path",
    "flamegraph_lines",
    "render_critical_path",
]

CRITPATH_SCHEMA = "repro/obs/critpath/v1"

#: The stack layers self time is attributed to, reporting order.
STACK_LAYERS: Tuple[str, ...] = (
    "des",
    "simos",
    "network",
    "simfs",
    "simmpi",
    "framework",
)

#: Syscalls whose service time is dominated by the filesystem/blockdev
#: data path — their self time is charged to the ``simfs`` layer.
DATA_SYSCALLS = frozenset(
    {"SYS_read", "SYS_write", "SYS_pread64", "SYS_pwrite64", "SYS_fsync"}
)

_US = 1e6  # Chrome trace microseconds <-> simulated seconds


def stack_layer(cat: str, name: str, pid: Optional[int] = None) -> str:
    """Attribute one span to a stack layer (see :data:`STACK_LAYERS`).

    ``cat`` is the span category the tracepoints record (the capture
    layer for OS calls, ``collective`` for MPI waits); ``name`` refines
    syscalls into data-path (``simfs``) versus control-path (``simos``)
    and libcalls into MPI (``simmpi``) versus tracer (``framework``).
    """
    if pid == KERNEL_PID:
        return "des"
    if cat == "collective":
        return "simmpi"
    if cat == "net":
        return "network"
    if cat == "vfs":
        return "simfs"
    if cat == "libcall":
        return "simmpi" if name.startswith(("MPI_", "MPIO_")) else "framework"
    if cat == "syscall":
        return "simfs" if name in DATA_SYSCALLS else "simos"
    return "framework"


class SpanNode:
    """One span in a recovered tree: interval + children + self time."""

    __slots__ = ("name", "cat", "ts", "dur", "children")

    def __init__(self, name: str, cat: str, ts: float, dur: float):
        self.name = name
        self.cat = cat
        self.ts = ts
        self.dur = dur
        self.children: List["SpanNode"] = []

    @property
    def end(self) -> float:
        """The span's completion instant (simulated seconds)."""
        return self.ts + self.dur

    @property
    def self_time(self) -> float:
        """Duration not covered by child spans (clamped at zero)."""
        return max(0.0, self.dur - sum(c.dur for c in self.children))


def payload_spans(
    payload: Dict[str, Any],
) -> List[Tuple[int, int, str, str, float, float]]:
    """Extract ``(pid, tid, name, cat, ts, dur)`` spans (seconds) from a
    ``repro/telemetry/v1`` payload's embedded Chrome trace.

    Raises :class:`~repro.errors.TelemetryError` for non-payload input.
    """
    if not isinstance(payload, dict) or payload.get("schema") != "repro/telemetry/v1":
        raise TelemetryError(
            "not a repro/telemetry/v1 payload (schema=%r)"
            % (payload.get("schema") if isinstance(payload, dict) else type(payload))
        )
    events = payload.get("trace", {}).get("traceEvents", [])
    out = []
    for e in events:
        if e.get("ph") != "X":
            continue
        out.append(
            (
                int(e["pid"]),
                int(e["tid"]),
                str(e["name"]),
                str(e.get("cat", "")),
                float(e["ts"]) / _US,
                float(e["dur"]) / _US,
            )
        )
    return out


def track_names(payload: Dict[str, Any]) -> Dict[Tuple[int, int], str]:
    """``(pid, tid) -> display name`` from the trace's metadata events."""
    names: Dict[Tuple[int, int], str] = {}
    process: Dict[int, str] = {}
    for e in payload.get("trace", {}).get("traceEvents", []):
        if e.get("ph") != "M":
            continue
        if e.get("name") == "process_name":
            process[int(e["pid"])] = str(e["args"]["name"])
        elif e.get("name") == "thread_name":
            names[(int(e["pid"]), int(e["tid"]))] = str(e["args"]["name"])
    for (pid, tid), tname in list(names.items()):
        pname = process.get(pid)
        if pname:
            names[(pid, tid)] = "%s %s" % (pname, tname)
    return names


def build_forest(
    spans: List[Tuple[int, int, str, str, float, float]],
) -> Dict[Tuple[int, int], List[SpanNode]]:
    """Recover per-track span trees from flat intervals.

    Spans on one track nest by interval containment (calls on a rank are
    sequential, so a span starting inside another completes inside it).
    Within a track, spans sort by ``(start, -duration, name, record
    order)`` — a parent precedes its children, and exact ``(start,
    duration)`` ties (zero-duration markers especially) order by *name*
    before record order, so collapsed stacks come out byte-identical no
    matter how the recorder happened to interleave the tied spans.
    """
    by_track: Dict[Tuple[int, int], List[Tuple[float, float, str, int, str]]] = {}
    for seq, (pid, tid, name, cat, ts, dur) in enumerate(spans):
        by_track.setdefault((pid, tid), []).append((ts, -dur, name, seq, cat))
    forest: Dict[Tuple[int, int], List[SpanNode]] = {}
    for track in sorted(by_track):
        roots: List[SpanNode] = []
        stack: List[SpanNode] = []
        for ts, neg_dur, name, _seq, cat in sorted(by_track[track]):
            node = SpanNode(name, cat, ts, -neg_dur)
            while stack and node.ts >= stack[-1].end and not (
                node.dur == 0.0 and node.ts == stack[-1].end and stack[-1].dur > 0.0
            ):
                stack.pop()
            if stack:
                stack[-1].children.append(node)
            else:
                roots.append(node)
            stack.append(node)
        forest[track] = roots
    return forest


def _walk(node: SpanNode):
    yield node
    for child in node.children:
        yield from _walk(child)


def track_stats(payload: Dict[str, Any]) -> Dict[Tuple[int, int], Dict[str, Any]]:
    """Per-track rollup: busy/self totals, layer and name attribution.

    Returns ``(pid, tid) ->`` a dict with ``busy`` (root span seconds),
    ``end`` (last completion), ``layers`` (layer -> self seconds) and
    ``names`` (span name -> ``{count, total, self}``).
    """
    forest = build_forest(payload_spans(payload))
    stats: Dict[Tuple[int, int], Dict[str, Any]] = {}
    for track, roots in forest.items():
        pid, _tid = track
        layers: Dict[str, float] = {}
        names: Dict[str, Dict[str, float]] = {}
        end = 0.0
        busy = 0.0
        for root in roots:
            busy += root.dur
            for node in _walk(root):
                end = max(end, node.end)
                layer = stack_layer(node.cat, node.name, pid)
                layers[layer] = layers.get(layer, 0.0) + node.self_time
                cell = names.setdefault(
                    node.name, {"count": 0, "total": 0.0, "self": 0.0}
                )
                cell["count"] += 1
                cell["total"] += node.dur
                cell["self"] += node.self_time
        stats[track] = {"busy": busy, "end": end, "layers": layers, "names": names}
    return stats


def critical_path(payload: Dict[str, Any]) -> Dict[str, Any]:
    """The slowest-rank chain bounding elapsed time, as a plain report.

    The *straggler* is the track whose last span completes latest (ties
    break toward the smallest ``(node, rank)``); the *chain* is the
    root-to-leaf span path ending at that completion — each link carries
    its layer attribution and self time, so the report names both the
    straggler rank and the layer that kept it busy.
    """
    spans = payload_spans(payload)
    forest = build_forest(spans)
    stats = track_stats(payload)
    labels = track_names(payload)

    tracks_report = []
    total_layers: Dict[str, float] = {}
    for track in sorted(stats):
        pid, tid = track
        s = stats[track]
        for layer, t in s["layers"].items():
            total_layers[layer] = total_layers.get(layer, 0.0) + t
        tracks_report.append(
            {
                "node": pid,
                "rank": tid,
                "track": labels.get(track, "node%d rank %d" % (pid, tid)),
                "busy": s["busy"],
                "end": s["end"],
                "layers": {k: v for k, v in sorted(s["layers"].items())},
            }
        )

    straggler = None
    chain: List[Dict[str, Any]] = []
    end_time = 0.0
    if stats:
        # max end; ties resolve to the smallest (pid, tid) for determinism.
        track = min(stats, key=lambda t: (-stats[t]["end"], t))
        end_time = stats[track]["end"]
        pid, tid = track
        straggler = {
            "node": pid,
            "rank": tid,
            "track": labels.get(track, "node%d rank %d" % (pid, tid)),
            "end": end_time,
        }
        # Descend from the root whose subtree reaches the final instant.
        level = forest[track]
        while level:
            node = min(level, key=lambda n: (-n.end, -n.ts, n.name))
            chain.append(
                {
                    "name": node.name,
                    "cat": node.cat,
                    "layer": stack_layer(node.cat, node.name, pid),
                    "ts": node.ts,
                    "dur": node.dur,
                    "self": node.self_time,
                }
            )
            level = node.children

    report = {
        "schema": CRITPATH_SCHEMA,
        "end_time": end_time,
        "n_spans": len(spans),
        "tracks": tracks_report,
        "straggler": straggler,
        "chain": chain,
        "layers": {k: v for k, v in sorted(total_layers.items())},
    }
    return json.loads(canonical_json(report))


def flamegraph_lines(payload: Dict[str, Any]) -> List[str]:
    """Collapsed-stack flamegraph lines, self-time-weighted (microseconds).

    Each line is ``frame;frame;... value`` — the format every flamegraph
    renderer (Brendan Gregg's scripts, speedscope, inferno) consumes.
    The first two frames are the node and rank tracks, then the span
    chain.  Values are integer microseconds of *self* time; zero-weight
    stacks are dropped.  Output is sorted, so it is byte-stable for
    byte-identical payloads.
    """
    forest = build_forest(payload_spans(payload))
    labels = track_names(payload)
    weights: Dict[str, int] = {}

    def add(prefix: str, node: SpanNode) -> None:
        stack = "%s;%s" % (prefix, node.name)
        us = int(round(node.self_time * _US))
        if us > 0:
            weights[stack] = weights.get(stack, 0) + us
        for child in node.children:
            add(stack, child)

    for (pid, tid), roots in sorted(forest.items()):
        label = labels.get((pid, tid))
        if label:
            prefix = label.replace(";", ",")
        else:
            prefix = "node%d;rank %d" % (pid, tid)
        for root in roots:
            add(prefix, root)
    return ["%s %d" % (stack, us) for stack, us in sorted(weights.items())]


def render_critical_path(report: Dict[str, Any]) -> str:
    """Human-readable rendering of a :func:`critical_path` report."""
    lines: List[str] = []
    title = "critical path (%d spans, elapsed %.6f s)" % (
        report["n_spans"],
        report["end_time"],
    )
    lines.append(title)
    lines.append("=" * len(title))
    layers = report["layers"]
    if layers:
        lines.append("self time by layer (all ranks):")
        for layer in STACK_LAYERS:
            if layer in layers:
                lines.append("  %-12s %12.6f s" % (layer, layers[layer]))
    straggler = report["straggler"]
    if straggler is None:
        lines.append("no spans recorded — nothing to attribute")
        lines.append("(telemetry captured without spans? re-run with --telemetry)")
        return "\n".join(lines) + "\n"
    lines.append(
        "straggler: %s (finishes last at %.6f s)"
        % (straggler["track"], straggler["end"])
    )
    if report["chain"]:
        lines.append("slowest-rank chain (root -> leaf):")
        for depth, link in enumerate(report["chain"]):
            lines.append(
                "  %s%-28s %-10s dur=%.6f self=%.6f"
                % ("  " * depth, link["name"], link["layer"], link["dur"],
                   link["self"])
            )
    return "\n".join(lines) + "\n"
