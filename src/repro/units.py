"""Byte-size and time-unit helpers used across the library.

The paper talks in mixed units (64 KB stripe widths, 8192 KB blocks, 100 GB
files, microsecond syscall timestamps).  These helpers keep the rest of the
code free of magic multipliers and make benchmark parameterizations read
like the paper ("``parse_size('64KiB')``").

Binary (IEC) units are used throughout: 1 KiB = 1024 B, matching how block
sizes and stripe widths are defined by storage systems.  The decimal
suffixes (KB/MB/GB) are accepted as aliases for the binary sizes because the
paper itself uses them loosely (its "64KB" stripe is a 64 KiB RAID stripe).
"""

from __future__ import annotations

import math
import re

__all__ = [
    "KiB",
    "MiB",
    "GiB",
    "TiB",
    "parse_size",
    "format_size",
    "parse_duration",
    "format_duration",
    "format_bandwidth",
]

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB
TiB = 1024 * GiB

_SIZE_SUFFIXES = {
    "": 1,
    "b": 1,
    "k": KiB,
    "kb": KiB,
    "kib": KiB,
    "m": MiB,
    "mb": MiB,
    "mib": MiB,
    "g": GiB,
    "gb": GiB,
    "gib": GiB,
    "t": TiB,
    "tb": TiB,
    "tib": TiB,
}

_SIZE_RE = re.compile(r"^\s*([0-9]+(?:\.[0-9]+)?)\s*([a-zA-Z]*)\s*$")

_TIME_SUFFIXES = {
    "s": 1.0,
    "sec": 1.0,
    "ms": 1e-3,
    "us": 1e-6,
    "ns": 1e-9,
    "min": 60.0,
    "h": 3600.0,
}

_TIME_RE = re.compile(r"^\s*([0-9]+(?:\.[0-9]+)?)\s*([a-zA-Z]*)\s*$")


def parse_size(text: str | int) -> int:
    """Parse a human byte size like ``'64KiB'``, ``'8192KB'`` or ``'1.5GiB'``.

    Integers pass through unchanged.  Raises :class:`ValueError` for
    unrecognized suffixes or negative values.
    """
    if isinstance(text, int):
        if text < 0:
            raise ValueError("size must be non-negative: %r" % (text,))
        return text
    m = _SIZE_RE.match(str(text))
    if not m:
        raise ValueError("unparseable size: %r" % (text,))
    value, suffix = m.groups()
    try:
        mult = _SIZE_SUFFIXES[suffix.lower()]
    except KeyError:
        raise ValueError("unknown size suffix %r in %r" % (suffix, text)) from None
    nbytes = float(value) * mult
    if nbytes != int(nbytes):
        raise ValueError("size %r is not a whole number of bytes" % (text,))
    return int(nbytes)


def format_size(nbytes: int | float) -> str:
    """Render a byte count with the largest suffix that keeps it readable.

    Exact multiples render without a fraction (``'64KiB'``); everything else
    keeps two decimals (``'1.50MiB'``).
    """
    if nbytes < 0:
        return "-" + format_size(-nbytes)
    for suffix, mult in (("TiB", TiB), ("GiB", GiB), ("MiB", MiB), ("KiB", KiB)):
        if nbytes >= mult:
            q = nbytes / mult
            if q == int(q):
                return "%d%s" % (int(q), suffix)
            return "%.2f%s" % (q, suffix)
    if nbytes == int(nbytes):
        return "%dB" % int(nbytes)
    return "%.2fB" % nbytes


def parse_duration(text: str | float | int) -> float:
    """Parse a duration like ``'15ms'``, ``'3.2us'`` or ``'2min'`` to seconds."""
    if isinstance(text, (int, float)) and not isinstance(text, bool):
        value = float(text)
        if value < 0:
            raise ValueError("duration must be non-negative: %r" % (text,))
        return value
    m = _TIME_RE.match(str(text))
    if not m:
        raise ValueError("unparseable duration: %r" % (text,))
    value, suffix = m.groups()
    if suffix == "":
        suffix = "s"
    try:
        mult = _TIME_SUFFIXES[suffix.lower()]
    except KeyError:
        raise ValueError("unknown time suffix %r in %r" % (suffix, text)) from None
    return float(value) * mult


def format_duration(seconds: float) -> str:
    """Render a duration in the most natural unit (h/min/s/ms/us/ns)."""
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds == 0:
        return "0s"
    if seconds >= 3600:
        return "%.2fh" % (seconds / 3600)
    if seconds >= 60:
        return "%.2fmin" % (seconds / 60)
    if seconds >= 1:
        return "%.3fs" % seconds
    if seconds >= 1e-3:
        return "%.3fms" % (seconds * 1e3)
    if seconds >= 1e-6:
        return "%.3fus" % (seconds * 1e6)
    return "%.1fns" % (seconds * 1e9)


def format_bandwidth(bytes_per_second: float) -> str:
    """Render a bandwidth as ``'<size>/s'`` (e.g. ``'113.50MiB/s'``)."""
    if not math.isfinite(bytes_per_second):
        return "inf/s" if bytes_per_second > 0 else "nan/s"
    return format_size(bytes_per_second) + "/s"
