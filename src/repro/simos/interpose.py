"""The interposition mechanism tracers attach to processes.

Real tracers sit at specific seams: ``strace`` stops the tracee at every
syscall entry/exit via ptrace; ``ltrace`` additionally breaks on PLT calls;
//TRACE interposes I/O calls with ``LD_PRELOAD`` (dynamic library
interposition, paper reference [11]).  In the simulation every seam is an
:class:`Interposer` attached to a :class:`~repro.simos.process.SimProcess`
at either the syscall or the library-call level.

An interposer does two things per intercepted event, both of which the
paper's taxonomy cares about:

1. **charges time** — ``per_event_cost`` seconds of CPU on the traced
   node, split across entry and exit.  This constant-per-event cost is
   the paper's entire explanation of LANL-Trace's overhead curve: "a
   constant number of traced events are generated for each block.  The
   number of such events is inversely proportional to block size" (§4.1.2);
2. **records** the :class:`~repro.trace.events.TraceEvent` into its sink.

A ``filter`` narrows which events are recorded (taxonomy feature "Control
of trace granularity").  Note the asymmetry, faithful to ptrace mechanics:
the *stop* cost is paid for every event the tracer intercepts whether or
not the filter keeps it — strace must stop the process to even look at the
syscall number.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.trace.events import EventLayer, TraceEvent
from repro.trace.records import TraceFile

__all__ = ["Interposer"]


class Interposer:
    """One attached tracer seam.

    Parameters
    ----------
    sink:
        TraceFile receiving recorded events.
    per_event_cost:
        CPU seconds charged per intercepted event (tracer stop + format +
        record write).  Split half at entry, half at exit.
    cpu_factor:
        Multiplicative slowdown applied to the traced process's CPU-side
        work while this interposer is attached (ptrace's residual constant
        factor; 1.0 = none).
    filter:
        Optional predicate on event *name*; events failing it are not
        recorded (but still pay the stop cost — see module docstring).
    record_filter:
        Optional predicate on the full event, applied at record time (for
        granularity specs that need more than the name).
    """

    layer = EventLayer.SYSCALL

    def __init__(
        self,
        sink: TraceFile,
        per_event_cost: float = 300e-6,
        cpu_factor: float = 1.0,
        filter: Optional[Callable[[str], bool]] = None,
        record_filter: Optional[Callable[[TraceEvent], bool]] = None,
        charge_filtered_only: bool = False,
    ):
        if per_event_cost < 0:
            raise ValueError("per_event_cost must be non-negative")
        if cpu_factor < 1.0:
            raise ValueError("cpu_factor < 1 would make tracing speed things up")
        self.sink = sink
        self.per_event_cost = per_event_cost
        self.cpu_factor = cpu_factor
        self.filter = filter
        self.record_filter = record_filter
        #: ptrace-style tracers (False) pay the stop cost for every call;
        #: preload-library interposition (True) never even sees calls it
        #: did not wrap, so unmatched names cost nothing.
        self.charge_filtered_only = charge_filtered_only
        self.events_intercepted = 0
        self.events_recorded = 0

    def _charges(self, name: str) -> bool:
        if not self.charge_filtered_only or self.filter is None:
            return True
        return self.filter(name)

    def entry_cost(self, name: str) -> float:
        """CPU charged when the traced call enters."""
        if not self._charges(name):
            return 0.0
        return self.per_event_cost / 2.0

    def exit_cost(self, name: str) -> float:
        """CPU charged when the traced call returns."""
        if not self._charges(name):
            return 0.0
        return self.per_event_cost / 2.0

    def intercept(self, name: str) -> None:
        """Bookkeeping: the tracer observed one call."""
        if self._charges(name):
            self.events_intercepted += 1

    def record(self, event: TraceEvent) -> None:
        """Record ``event`` if it passes the filters."""
        if self.filter is not None and not self.filter(event.name):
            return
        if self.record_filter is not None and not self.record_filter(event):
            return
        self.events_recorded += 1
        self.sink.append(event)
