"""Simulated operating-system layer.

Provides what the tracing frameworks interpose on:

* :class:`~repro.simos.process.SimProcess` — a process with a file
  descriptor table issuing POSIX-style system calls against the VFS;
* :class:`~repro.simos.interpose.Interposer` — the strace/ltrace-style
  interposition mechanism: each attached interposer charges a per-event
  stop-and-record cost and captures a :class:`~repro.trace.events.TraceEvent`,
  reproducing the cost structure behind the paper's LANL-Trace overhead
  measurements (constant cost per traced event, §4.1.2);
* :mod:`~repro.simos.syscalls` — syscall naming/formatting helpers that
  make simulated traces look like the paper's Figure 1.
"""

from repro.simos.interpose import Interposer
from repro.simos.process import SimProcess

__all__ = ["Interposer", "SimProcess"]
