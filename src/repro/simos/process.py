"""Simulated processes and their system-call interface.

A :class:`SimProcess` is the OS-level identity of one running program on
one node: a PID, a UID, a file-descriptor table, and — crucially for this
library — the two interposition chains (syscall-level and library-level)
that tracing frameworks attach to.

Every syscall is a generator the application body drives with ``yield
from``.  The dispatch wrapper charges kernel-crossing CPU, runs attached
interposers' entry/exit costs, executes the VFS operation, and emits one
:class:`~repro.trace.events.TraceEvent` per attached interposer — with
timestamps from the node's *local* (skewed, drifting) clock, as a real
tracer would record.

Memory-mapped I/O is modelled explicitly because the paper calls it out as
a blind spot: ``strace``/``ltrace``-style tracers "cannot track
memory-mapped I/Os" (§4.1.1, §4.3), while Tracefs's VFS-level capture sees
it (§4.2).  :meth:`SimProcess.mmap` emits the single ``SYS_mmap2`` event a
real tracer would see; subsequent :meth:`mmap_write`/:meth:`mmap_read`
calls go straight to the file system with *no* syscall dispatch.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from repro.errors import BadFileDescriptor, InvalidArgument, NodeCrashed, SimOSError
from repro.obs.tracepoints import STATE as _TELEMETRY
from repro.simfs.vfs import (
    CallerContext,
    O_APPEND,
    OpenFile,
    VFS,
)
from repro.simos import syscalls as sc
from repro.simos.interpose import Interposer
from repro.trace.events import EventLayer, TraceEvent

__all__ = ["SimProcess", "SEEK_SET", "SEEK_CUR", "SEEK_END"]

SEEK_SET = 0
SEEK_CUR = 1
SEEK_END = 2


class SimProcess:
    """One simulated process: fd table + syscall interface + tracer seams."""

    def __init__(
        self,
        sim: Any,
        node: Any,
        vfs: VFS,
        pid: int,
        uid: int = 1000,
        user: str = "jdoe",
        rank: Optional[int] = None,
    ):
        self.sim = sim
        self.node = node
        self.vfs = vfs
        self.pid = pid
        self.uid = uid
        self.user = user
        self.rank = rank
        self.ctx = CallerContext(node=node, pid=pid, uid=uid, user=user)
        self.fds: dict[int, OpenFile] = {}
        self._next_fd = 3
        self.syscall_interposers: List[Interposer] = []
        self.libcall_interposers: List[Interposer] = []
        self.syscall_count = 0
        self.libcall_count = 0

    # -- tracer attachment -------------------------------------------------------

    def attach(self, interposer: Interposer, layer: EventLayer) -> None:
        """Attach a tracer seam at the given layer."""
        if layer is EventLayer.SYSCALL:
            self.syscall_interposers.append(interposer)
        elif layer is EventLayer.LIBCALL:
            self.libcall_interposers.append(interposer)
        else:
            raise InvalidArgument("processes expose syscall and libcall seams only")

    def detach_all(self) -> None:
        """Remove every attached tracer seam."""
        self.syscall_interposers.clear()
        self.libcall_interposers.clear()

    @property
    def cpu_factor(self) -> float:
        """Combined CPU slowdown from the node and every attached tracer."""
        f = self.node.cpu_factor
        for ip in self.syscall_interposers:
            f *= ip.cpu_factor
        for ip in self.libcall_interposers:
            f *= ip.cpu_factor
        return f

    # -- time charging --------------------------------------------------------------

    def _charge(self, seconds: float) -> Generator[Any, Any, None]:
        """Charge CPU-side work, scaled by the current slowdown factor."""
        if seconds > 0:
            col = _TELEMETRY.collector
            if col is not None:
                node_index = self.node.index
                col.cpu_busy(node_index, self.sim.now, +1)
                yield seconds * self.cpu_factor
                col.cpu_busy(node_index, self.sim.now, -1)
            else:
                yield seconds * self.cpu_factor

    def _charge_raw(self, seconds: float) -> Generator[Any, Any, None]:
        """Charge tracer-side work (not subject to the slowdown factor)."""
        if seconds > 0:
            yield seconds

    # -- dispatch wrappers -------------------------------------------------------------

    def _dispatch(
        self,
        layer: EventLayer,
        interposers: List[Interposer],
        base_cost: float,
        name: str,
        args: tuple,
        body: Generator[Any, Any, Any],
        **typed: Any,
    ) -> Generator[Any, Any, Any]:
        trace_result = typed.pop("trace_result", None)
        node = self.node
        plane = self.sim.fault_plane
        if plane is not None and plane.node_down(node.index):
            raise NodeCrashed(
                "node %d (%s) is down: cannot dispatch %s"
                % (node.index, node.hostname, name)
            )
        col = _TELEMETRY.collector
        t0_sim = self.sim.now if col is not None else 0.0
        t0_local = node.now_local()
        # The charge helpers are inlined here (this generator runs for
        # every simulated syscall/libcall): a ``yield from self._charge(x)``
        # costs a generator object plus two extra frame switches per use,
        # which the hot path cannot afford.  Semantics are identical.
        if base_cost > 0:
            if col is not None:
                node_index = node.index
                col.cpu_busy(node_index, self.sim.now, +1)
                yield base_cost * self.cpu_factor
                col.cpu_busy(node_index, self.sim.now, -1)
            else:
                yield base_cost * self.cpu_factor
        for ip in interposers:
            ip.intercept(name)
            cost = ip.entry_cost(name)
            if cost > 0:
                yield cost
        result: Any = None
        error: Optional[SimOSError] = None
        try:
            result = yield from body
        except SimOSError as exc:
            error = exc
            result = "-1 %s" % exc.errno_name
        for ip in interposers:
            cost = ip.exit_cost(name)
            if cost > 0:
                yield cost
        if interposers:
            # What the tracer prints as "= result": errno strings pass
            # through; structured returns (stat buffers, directory lists)
            # show the syscall's 0, as in real traces.
            if error is not None:
                rendered = result
            elif trace_result is not None:
                rendered = trace_result
            elif result is None or isinstance(result, (int, str)):
                rendered = result
            else:
                rendered = 0
            duration = max(0.0, node.now_local() - t0_local)
            event = TraceEvent(
                timestamp=t0_local,
                duration=duration,
                layer=layer,
                name=name,
                args=args,
                result=rendered,
                pid=self.pid,
                rank=self.rank,
                hostname=node.hostname,
                user=self.user,
                **typed,
            )
            for ip in interposers:
                ip.record(event)
        if col is not None:
            # Telemetry spans use global simulated time (not the node's
            # skewed local clock) so tracks from different nodes line up
            # in Perfetto and the payload stays deterministic.
            if self.rank is not None:
                tid, tname = self.rank, "rank %d" % self.rank
            else:
                tid, tname = self.pid, "pid %d" % self.pid
            col.os_track(node.index, node.hostname, tid, tname)
            col.os_call(
                node.index,
                tid,
                layer.value,
                name,
                t0_sim,
                self.sim.now - t0_sim,
                typed.get("nbytes"),
            )
        if error is not None:
            raise error
        return result

    def _syscall(self, name: str, args: tuple, body, **typed):
        self.syscall_count += 1
        return self._dispatch(
            EventLayer.SYSCALL,
            self.syscall_interposers,
            self.node.params.syscall_cost,
            name,
            args,
            body,
            **typed,
        )

    def _libcall(self, name: str, args: tuple, body, **typed):
        self.libcall_count += 1
        return self._dispatch(
            EventLayer.LIBCALL,
            self.libcall_interposers,
            self.node.params.libcall_cost,
            name,
            args,
            body,
            **typed,
        )

    # -- fd table -----------------------------------------------------------------------

    def _alloc_fd(self, handle: OpenFile) -> int:
        fd = self._next_fd
        self._next_fd += 1
        self.fds[fd] = handle
        return fd

    def _handle(self, fd: int) -> OpenFile:
        handle = self.fds.get(fd)
        if handle is None or handle.closed:
            raise BadFileDescriptor("fd %d" % fd)
        return handle

    def open_fds(self) -> List[int]:
        """Currently open descriptor numbers, sorted."""
        return sorted(self.fds)

    # -- syscalls ------------------------------------------------------------------------

    def open(self, path: str, flags: int, mode: int = 0o644):
        """open(2): resolve/create ``path``; returns a new fd."""

        def body():
            fs, rel = self.vfs.resolve(path)
            ino = yield from fs.op_open(self.ctx, rel, flags, mode)
            handle = OpenFile(fs, ino, path, flags)
            return self._alloc_fd(handle)

        return self._syscall(
            sc.SYS_OPEN,
            (path, sc.format_open_flags(flags), "0%o" % mode),
            body(),
            path=path,
        )

    def close(self, fd: int):
        """close(2): release the descriptor."""

        def body():
            handle = self._handle(fd)
            handle.closed = True
            del self.fds[fd]
            note = getattr(handle.fs, "note_close", None)
            if note is not None:
                note(self.ctx, handle.ino)
            yield 0
            return 0

        return self._syscall(sc.SYS_CLOSE, (fd,), body(), fd=fd)

    def _io_stream(self, handle: OpenFile) -> tuple:
        return (handle.ino, self.node.index)

    def write(self, fd: int, nbytes: int):
        """write(2): write at the file position; returns bytes written."""

        def body():
            handle = self._handle(fd)
            if not handle.writable:
                raise BadFileDescriptor("fd %d not open for writing" % fd)
            if handle.flags & O_APPEND:
                handle.position = handle.fs.ns.by_ino(handle.ino).size
            offset = handle.position
            yield from self._charge(self.node.copy_cost(nbytes))
            n = yield from handle.fs.op_write(
                self.ctx, handle.ino, offset, nbytes, self._io_stream(handle)
            )
            handle.position = offset + n
            return n

        handle = self.fds.get(fd)
        return self._syscall(
            sc.SYS_WRITE,
            (fd, "0x%x" % (0x8000000 + fd), nbytes),
            body(),
            fd=fd,
            nbytes=nbytes,
            offset=(handle.position if handle else None),
            path=(handle.path if handle else None),
        )

    def read(self, fd: int, nbytes: int):
        """read(2): read at the file position; returns bytes read (0 at EOF)."""

        def body():
            handle = self._handle(fd)
            if not handle.readable:
                raise BadFileDescriptor("fd %d not open for reading" % fd)
            offset = handle.position
            n = yield from handle.fs.op_read(
                self.ctx, handle.ino, offset, nbytes, self._io_stream(handle)
            )
            yield from self._charge(self.node.copy_cost(n))
            handle.position = offset + n
            return n

        handle = self.fds.get(fd)
        return self._syscall(
            sc.SYS_READ,
            (fd, "0x%x" % (0x8000000 + fd), nbytes),
            body(),
            fd=fd,
            nbytes=nbytes,
            offset=(handle.position if handle else None),
            path=(handle.path if handle else None),
        )

    def pwrite(self, fd: int, nbytes: int, offset: int):
        """pwrite(2): positioned write; the file position is untouched."""

        def body():
            handle = self._handle(fd)
            if not handle.writable:
                raise BadFileDescriptor("fd %d not open for writing" % fd)
            yield from self._charge(self.node.copy_cost(nbytes))
            return (
                yield from handle.fs.op_write(
                    self.ctx, handle.ino, offset, nbytes, self._io_stream(handle)
                )
            )

        handle = self.fds.get(fd)
        return self._syscall(
            sc.SYS_PWRITE,
            (fd, "0x%x" % (0x8000000 + fd), nbytes, offset),
            body(),
            fd=fd,
            nbytes=nbytes,
            offset=offset,
            path=(handle.path if handle else None),
        )

    def pread(self, fd: int, nbytes: int, offset: int):
        """pread(2): positioned read; the file position is untouched."""

        def body():
            handle = self._handle(fd)
            if not handle.readable:
                raise BadFileDescriptor("fd %d not open for reading" % fd)
            n = yield from handle.fs.op_read(
                self.ctx, handle.ino, offset, nbytes, self._io_stream(handle)
            )
            yield from self._charge(self.node.copy_cost(n))
            return n

        handle = self.fds.get(fd)
        return self._syscall(
            sc.SYS_PREAD,
            (fd, "0x%x" % (0x8000000 + fd), nbytes, offset),
            body(),
            fd=fd,
            nbytes=nbytes,
            offset=offset,
            path=(handle.path if handle else None),
        )

    def lseek(self, fd: int, offset: int, whence: int = SEEK_SET):
        """lseek(2): move the file position; returns the new position."""

        def body():
            handle = self._handle(fd)
            if whence == SEEK_SET:
                new = offset
            elif whence == SEEK_CUR:
                new = handle.position + offset
            elif whence == SEEK_END:
                new = handle.fs.ns.by_ino(handle.ino).size + offset
            else:
                raise InvalidArgument("bad whence %r" % whence)
            if new < 0:
                raise InvalidArgument("seek before start of file")
            handle.position = new
            yield 0
            return new

        return self._syscall(
            sc.SYS_LSEEK, (fd, offset, whence), body(), fd=fd, offset=offset
        )

    def stat(self, path: str):
        """stat(2): attributes of the file at ``path``."""

        def body():
            fs, rel = self.vfs.resolve(path)
            return (yield from fs.op_stat(self.ctx, rel))

        return self._syscall(sc.SYS_STAT, (path,), body(), path=path)

    def fstat(self, fd: int):
        """fstat(2): attributes of the open file."""

        def body():
            handle = self._handle(fd)
            return (yield from handle.fs.op_fstat(self.ctx, handle.ino))

        return self._syscall(sc.SYS_FSTAT, (fd,), body(), fd=fd)

    def unlink(self, path: str):
        """unlink(2): remove the directory entry."""

        def body():
            fs, rel = self.vfs.resolve(path)
            yield from fs.op_unlink(self.ctx, rel)
            return 0

        return self._syscall(sc.SYS_UNLINK, (path,), body(), path=path)

    def mkdir(self, path: str, mode: int = 0o755):
        """mkdir(2): create a directory."""

        def body():
            fs, rel = self.vfs.resolve(path)
            yield from fs.op_mkdir(self.ctx, rel, mode)
            return 0

        return self._syscall(sc.SYS_MKDIR, (path, "0%o" % mode), body(), path=path)

    def readdir(self, path: str):
        """getdents(2)-style directory listing (sorted names)."""

        def body():
            fs, rel = self.vfs.resolve(path)
            return (yield from fs.op_readdir(self.ctx, rel))

        return self._syscall(sc.SYS_READDIR, (path,), body(), path=path)

    def rename(self, old: str, new: str):
        """rename(2): move within one file system (EXDEV across mounts)."""

        def body():
            fs_old, rel_old = self.vfs.resolve(old)
            fs_new, rel_new = self.vfs.resolve(new)
            if fs_old is not fs_new:
                from repro.errors import CrossDeviceLink

                raise CrossDeviceLink("%s -> %s" % (old, new))
            yield from fs_old.op_rename(self.ctx, rel_old, rel_new)
            return 0

        return self._syscall(sc.SYS_RENAME, (old, new), body(), path=old)

    def statfs(self, path: str):
        """statfs(2): file-system totals for the mount holding ``path``."""

        def body():
            fs, rel = self.vfs.resolve(path)
            return (yield from fs.op_statfs(self.ctx))

        return self._syscall(sc.SYS_STATFS, (path, 84), body(), path=path)

    def fsync(self, fd: int):
        """fsync(2): flush the open file."""

        def body():
            handle = self._handle(fd)
            yield from handle.fs.op_fsync(self.ctx, handle.ino)
            return 0

        return self._syscall(sc.SYS_FSYNC, (fd,), body(), fd=fd)

    def fcntl(self, fd: int, cmd: int, arg: int = 0):
        """fcntl(2): descriptor control (modelled as a no-op)."""

        def body():
            self._handle(fd)
            yield 0
            return 0

        return self._syscall(sc.SYS_FCNTL, (fd, cmd, arg), body(), fd=fd)

    # -- memory-mapped I/O (the tracer blind spot) --------------------------------------

    def mmap(self, fd: int, length: int):
        """Map a file region.  This is the only mmap-related syscall a
        ptrace-style tracer ever sees — subsequent access is invisible."""

        def body():
            self._handle(fd)
            yield 0
            return 0x40000000 + fd  # fake mapping address

        return self._syscall(
            sc.SYS_MMAP, (0, length, 3, 1, fd, 0), body(), fd=fd, nbytes=length
        )

    def mmap_write(self, fd: int, offset: int, nbytes: int):
        """Store into a mapping: reaches the FS with NO syscall dispatch."""
        handle = self._handle(fd)
        yield from self._charge(self.node.copy_cost(nbytes))
        return (
            yield from handle.fs.op_write(
                self.ctx, handle.ino, offset, nbytes, self._io_stream(handle)
            )
        )

    def mmap_read(self, fd: int, offset: int, nbytes: int):
        """Load from a mapping: reaches the FS with NO syscall dispatch."""
        handle = self._handle(fd)
        return (
            yield from handle.fs.op_read(
                self.ctx, handle.ino, offset, nbytes, self._io_stream(handle)
            )
        )
