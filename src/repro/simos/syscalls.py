"""Syscall naming and argument formatting.

Simulated traces mimic the paper's Figure 1 raw output, where system calls
appear with an ``SYS_`` prefix and Linux-2.6-era names::

    10:59:47.093718 SYS_statfs64(0x80675c0, 84, ...) = 0 <0.011131>
    10:59:47.105818 SYS_open("/etc/hosts", 0, 0666)  = 3 <0.000034>
    10:59:47.105913 SYS_fcntl64(3, 1, 0, 0, 0xbd3ff4) = 0 <0.000017>

These helpers centralize the spelling so traces, codecs, summaries, and
replayers all agree on names.
"""

from __future__ import annotations

from repro.simfs.vfs import (
    O_APPEND,
    O_CREAT,
    O_EXCL,
    O_RDONLY,
    O_RDWR,
    O_TRUNC,
    O_WRONLY,
)

__all__ = [
    "SYS_OPEN",
    "SYS_CLOSE",
    "SYS_READ",
    "SYS_WRITE",
    "SYS_PREAD",
    "SYS_PWRITE",
    "SYS_LSEEK",
    "SYS_STAT",
    "SYS_FSTAT",
    "SYS_UNLINK",
    "SYS_MKDIR",
    "SYS_READDIR",
    "SYS_RENAME",
    "SYS_STATFS",
    "SYS_FSYNC",
    "SYS_FCNTL",
    "SYS_MMAP",
    "ALL_SYSCALLS",
    "IO_DATA_SYSCALLS",
    "format_open_flags",
]

SYS_OPEN = "SYS_open"
SYS_CLOSE = "SYS_close"
SYS_READ = "SYS_read"
SYS_WRITE = "SYS_write"
SYS_PREAD = "SYS_pread64"
SYS_PWRITE = "SYS_pwrite64"
SYS_LSEEK = "SYS__llseek"
SYS_STAT = "SYS_stat64"
SYS_FSTAT = "SYS_fstat64"
SYS_UNLINK = "SYS_unlink"
SYS_MKDIR = "SYS_mkdir"
SYS_READDIR = "SYS_getdents64"
SYS_RENAME = "SYS_rename"
SYS_STATFS = "SYS_statfs64"
SYS_FSYNC = "SYS_fsync"
SYS_FCNTL = "SYS_fcntl64"
SYS_MMAP = "SYS_mmap2"

ALL_SYSCALLS = frozenset(
    {
        SYS_OPEN,
        SYS_CLOSE,
        SYS_READ,
        SYS_WRITE,
        SYS_PREAD,
        SYS_PWRITE,
        SYS_LSEEK,
        SYS_STAT,
        SYS_FSTAT,
        SYS_UNLINK,
        SYS_MKDIR,
        SYS_READDIR,
        SYS_RENAME,
        SYS_STATFS,
        SYS_FSYNC,
        SYS_FCNTL,
        SYS_MMAP,
    }
)

#: Syscalls that move payload bytes — the ones whose per-event tracing cost
#: scales inversely with block size in the paper's overhead model.
IO_DATA_SYSCALLS = frozenset({SYS_READ, SYS_WRITE, SYS_PREAD, SYS_PWRITE})

_FLAG_NAMES = [
    (O_CREAT, "O_CREAT"),
    (O_EXCL, "O_EXCL"),
    (O_TRUNC, "O_TRUNC"),
    (O_APPEND, "O_APPEND"),
]


def format_open_flags(flags: int) -> str:
    """Render open(2) flags symbolically, e.g. ``'O_WRONLY|O_CREAT'``."""
    acc = flags & 0o3
    parts = [
        {O_RDONLY: "O_RDONLY", O_WRONLY: "O_WRONLY", O_RDWR: "O_RDWR"}.get(
            acc, "O_ACC%d" % acc
        )
    ]
    for bit, label in _FLAG_NAMES:
        if flags & bit:
            parts.append(label)
    return "|".join(parts)
