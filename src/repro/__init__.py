"""repro — reproduction of "Towards an I/O Tracing Framework Taxonomy".

(Konwinski, Bent, Nunez, Quist — LANL, SC 2007.)

The library has three strata:

1. **The taxonomy** (:mod:`repro.core`) — the paper's contribution:
   thirteen typed classification features, validated framework
   classifications, summary tables (Tables 1-2), comparison, and a
   requirements→recommendation engine.
2. **Three I/O Tracing Frameworks** (:mod:`repro.frameworks`) —
   LANL-Trace, Tracefs, and //TRACE, faithfully rebuilt over a simulated
   HPC substrate, plus the shared trace data model (:mod:`repro.trace`),
   analysis tools (:mod:`repro.analysis`), and replay machinery
   (:mod:`repro.replay`).
3. **The substrate** (:mod:`repro.des`, :mod:`repro.cluster`,
   :mod:`repro.simos`, :mod:`repro.simfs`, :mod:`repro.simmpi`,
   :mod:`repro.workloads`, :mod:`repro.harness`) — a deterministic
   discrete-event simulation of the paper's testbed: a 32-node Linux
   cluster with imperfect clocks, a RAID-5-backed parallel file system,
   NFS, local disks, and an MPI/MPI-IO runtime, driven by the LANL
   ``mpi_io_test`` synthetic benchmark.

Real-machine tracing (strace wrapping and an in-process Python I/O
interposer) lives in :mod:`repro.host`.

Quick start::

    from repro.harness import measure_overhead
    from repro.frameworks.lanltrace import LANLTrace
    from repro.workloads import mpi_io_test, AccessPattern
    from repro.units import KiB, MiB

    m = measure_overhead(
        LANLTrace,
        mpi_io_test,
        {"pattern": AccessPattern.N_TO_1_STRIDED,
         "block_size": 64 * KiB, "nobj": 128, "path": "/pfs/out"},
        nprocs=32,
    )
    print("elapsed time overhead: %.0f%%" % (100 * m.elapsed_overhead))
"""

__version__ = "1.0.0"

from repro import errors, units

__all__ = ["errors", "units", "__version__"]
