"""LANL-Trace-style wrapping of the real ``strace``.

LANL-Trace "wraps the standard Linux/Unix library and system call tracing
utility ltrace, or optionally, its system call only variant, strace"
(§2.1).  This module is that wrapper for the host system: launch a
command under ``strace -f -T -ttt``, collect the per-process output, and
parse it into the library's shared event model.

Degrades loudly, not silently: :func:`run_under_strace` raises
:class:`~repro.errors.StraceNotAvailable` when the binary is missing
(tests skip; the simulator is unaffected).
"""

from __future__ import annotations

import shutil
import subprocess
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence

from repro.errors import HostTracingError, StraceNotAvailable
from repro.host.parser import parse_strace_output
from repro.trace.records import TraceBundle, TraceFile

__all__ = ["strace_available", "run_under_strace", "HostTraceResult"]


def strace_available() -> bool:
    """Is the real ``strace`` binary on PATH?"""
    return shutil.which("strace") is not None


@dataclass
class HostTraceResult:
    """A traced host command: exit status plus the parsed bundle."""

    returncode: int
    bundle: TraceBundle
    raw_output: str


def run_under_strace(
    command: Sequence[str],
    timeout: Optional[float] = 120.0,
    extra_strace_args: Sequence[str] = (),
) -> HostTraceResult:
    """Run ``command`` under ``strace -f -T -ttt`` and parse the trace.

    ``-f`` follows children (parallel workloads fork), ``-T`` records
    per-call durations (the ``<0.000034>`` suffixes of Figure 1), and
    ``-ttt`` stamps epoch-seconds timestamps.
    """
    if not strace_available():
        raise StraceNotAvailable(
            "strace is not installed on this host; the simulated tracers "
            "in repro.frameworks are unaffected"
        )
    if not command:
        raise HostTracingError("empty command")
    with tempfile.TemporaryDirectory(prefix="repro-strace-") as tmp:
        out_path = Path(tmp) / "trace.out"
        argv: List[str] = [
            "strace",
            "-f",
            "-T",
            "-ttt",
            "-o",
            str(out_path),
            *extra_strace_args,
            "--",
            *command,
        ]
        try:
            proc = subprocess.run(
                argv,
                capture_output=True,
                text=True,
                timeout=timeout,
            )
        except subprocess.TimeoutExpired as exc:
            raise HostTracingError("traced command timed out: %s" % exc) from None
        except OSError as exc:
            raise HostTracingError("failed to launch strace: %s" % exc) from None
        raw = out_path.read_text() if out_path.exists() else ""
    events = parse_strace_output(raw)
    tf = TraceFile(events, framework="host-strace")
    bundle = TraceBundle(
        files={0: tf},
        metadata={"framework": "host-strace", "command": list(command)},
    )
    return HostTraceResult(
        returncode=proc.returncode, bundle=bundle, raw_output=raw
    )
