"""In-process I/O interposition for Python workloads.

The //TRACE mechanism ("dynamic library interposition", paper ref [11])
applied at the level this library can reach without native code: the
:mod:`os` module's file I/O functions.  While a :class:`PyIOTracer` is
active, ``os.open/read/write/pread/pwrite/lseek/close/fsync`` on *real*
files are wrapped; each call is timed and recorded as a
:class:`~repro.trace.events.TraceEvent`, so the library's summaries,
codecs, anonymizers, and pseudo-app builders work on traces of real
Python programs.

Passive in the taxonomy sense — no instrumentation of the traced code —
though, like any preload-style interposer, it only sees calls that go
through the wrapped entry points (I/O via C extensions bypasses it, as
memory-mapped I/O bypasses strace: the same blind-spot class the paper
notes for every non-VFS tracer).

Use as a context manager; re-entrant use is rejected rather than nested.
"""

from __future__ import annotations

import functools
import os
import socket
import threading
import time
from typing import Any, Callable, Dict, Optional

from repro.errors import HostTracingError
from repro.trace.events import EventLayer, TraceEvent
from repro.trace.records import TraceFile

__all__ = ["PyIOTracer"]

_WRAPPED = ("open", "read", "write", "pread", "pwrite", "lseek", "close", "fsync")

_NAME_MAP = {
    "open": "SYS_open",
    "read": "SYS_read",
    "write": "SYS_write",
    "pread": "SYS_pread64",
    "pwrite": "SYS_pwrite64",
    "lseek": "SYS__llseek",
    "close": "SYS_close",
    "fsync": "SYS_fsync",
}


class PyIOTracer:
    """Context manager tracing ``os``-level I/O of the current process."""

    def __init__(self) -> None:
        self.trace = TraceFile(
            hostname=socket.gethostname(),
            pid=os.getpid(),
            framework="pyio",
        )
        self._originals: Dict[str, Callable] = {}
        self._fd_paths: Dict[int, str] = {}
        self._active = False
        self._lock = threading.Lock()
        # Re-entrancy guard: recording must not trace its own I/O.
        self._in_hook = threading.local()

    # -- lifecycle ------------------------------------------------------------

    def __enter__(self) -> "PyIOTracer":
        if self._active:
            raise HostTracingError("PyIOTracer is not re-entrant")
        for name in _WRAPPED:
            self._originals[name] = getattr(os, name)
            setattr(os, name, self._make_wrapper(name))
        self._active = True
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        for name, fn in self._originals.items():
            setattr(os, name, fn)
        self._originals.clear()
        self._active = False

    # -- wrapping ------------------------------------------------------------------

    def _make_wrapper(self, name: str) -> Callable:
        original = self._originals[name]
        tracer = self

        @functools.wraps(original)
        def wrapper(*args: Any, **kwargs: Any):
            if getattr(tracer._in_hook, "on", False):
                return original(*args, **kwargs)
            tracer._in_hook.on = True
            try:
                t0 = time.time()
                p0 = time.perf_counter()
                error: Optional[BaseException] = None
                try:
                    result = original(*args, **kwargs)
                except OSError as exc:
                    error = exc
                    result = None
                duration = time.perf_counter() - p0
                tracer._record(name, args, result, error, t0, duration)
                if error is not None:
                    raise error
                return result
            finally:
                tracer._in_hook.on = False

        return wrapper

    def _record(
        self,
        name: str,
        args: tuple,
        result: Any,
        error: Optional[BaseException],
        timestamp: float,
        duration: float,
    ) -> None:
        path: Optional[str] = None
        fd: Optional[int] = None
        nbytes: Optional[int] = None
        offset: Optional[int] = None
        if name == "open":
            path = str(args[0]) if args else None
            if error is None and isinstance(result, int) and path is not None:
                self._fd_paths[result] = path
        else:
            if args and isinstance(args[0], int):
                fd = args[0]
                path = self._fd_paths.get(fd)
        if name in ("read", "pread"):
            if error is None and result is not None:
                nbytes = len(result)
        elif name == "write":
            if error is None and isinstance(result, int):
                nbytes = result
        elif name == "pwrite":
            if error is None and isinstance(result, int):
                nbytes = result
        if name in ("pread", "pwrite") and len(args) >= 3:
            offset = args[2] if name == "pwrite" else args[2]
        if name == "lseek" and len(args) >= 2:
            offset = args[1]
        if name == "close" and fd is not None:
            self._fd_paths.pop(fd, None)
        rendered_result: Any
        if error is not None:
            rendered_result = "-1 %s" % getattr(error, "strerror", "EIO")
        elif isinstance(result, bytes):
            rendered_result = len(result)
        else:
            rendered_result = result
        printable_args = tuple(
            a if isinstance(a, (int, str)) else ("<%d bytes>" % len(a) if isinstance(a, (bytes, bytearray, memoryview)) else repr(a))
            for a in args
        )
        event = TraceEvent(
            timestamp=timestamp,
            duration=duration,
            layer=EventLayer.SYSCALL,
            name=_NAME_MAP[name],
            args=printable_args,
            result=rendered_result,
            pid=os.getpid(),
            hostname=self.trace.hostname,
            user=os.environ.get("USER", ""),
            path=path,
            fd=fd,
            nbytes=nbytes,
            offset=offset,
        )
        with self._lock:
            self.trace.append(event)
