"""Parser for real ``strace -f -T -ttt`` text output.

Typical lines::

    12345 1699999999.123456 openat(AT_FDCWD, "/etc/hosts", O_RDONLY) = 3 <0.000034>
    12345 1699999999.123999 read(3, "127.0.0.1 ..."..., 4096) = 212 <0.000017>
    12345 1699999999.124100 write(1, "hi\\n", 3) = 3 <0.000008>
    12345 1699999999.124500 close(3) = 0 <0.000005>
    12345 1699999999.125000 exit_group(0) = ?
    12345 1699999999.124800 wait4(-1,  <unfinished ...>

Unfinished/resumed pairs are matched by (pid, syscall name); lines that
do not look like syscalls (signals, exits) are skipped.  Parsed events
use the library's shared model, with names normalized to the simulated
spelling (``openat`` → ``SYS_open``) so downstream tools (summaries,
pseudo-app builders) treat real and simulated traces identically.

Real strace output is hostile input: interleaved ``<unfinished ...>`` /
``<... resumed>`` pairs, interrupted syscalls returning ``?``, signal
and exit markers, and path arguments that are not valid UTF-8 (strace
octal-escapes them, but a capture file can also simply contain raw
bytes).  :func:`parse_strace` therefore **never raises**: every line
either parses, or is skipped under a counted warning —
:class:`StraceParseResult.warnings` is the per-category tally, and the
crash corpus under ``tests/host/corpus/`` pins the contract.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.trace.events import EventLayer, TraceEvent

__all__ = [
    "StraceParseResult",
    "parse_strace",
    "parse_strace_line",
    "parse_strace_output",
]

_LINE_RE = re.compile(
    r"^(?:(?P<pid>\d+)\s+)?"
    r"(?P<ts>\d+\.\d+)\s+"
    r"(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)"
    r"\((?P<args>.*?)"
    r"(?:\)\s*=\s*(?P<result>-?\d+|0x[0-9a-f]+|\?)(?:\s+(?P<errno>E[A-Z]+)[^<]*)?"
    r"(?:\s*<(?P<dur>\d+\.\d+)>)?"
    r"|\s*<unfinished \.\.\.>)\s*$"
)

_RESUMED_RE = re.compile(
    r"^(?:(?P<pid>\d+)\s+)?"
    r"(?P<ts>\d+\.\d+)\s+"
    r"<\.\.\. (?P<name>[a-zA-Z_][a-zA-Z0-9_]*) resumed>.*?"
    r"=\s*(?P<result>-?\d+|0x[0-9a-f]+|\?)(?:\s+(?P<errno>E[A-Z]+)[^<]*)?"
    r"(?:\s*<(?P<dur>\d+\.\d+)>)?\s*$"
)

#: Signal deliveries and process exits — expected non-syscall lines.
_NOISE_RE = re.compile(r"^(?:(?:\d+)\s+)?(?:\d+\.\d+\s+)?(?:---|\+\+\+)")

#: real syscall name -> this library's canonical spelling
_NAME_MAP = {
    "open": "SYS_open",
    "openat": "SYS_open",
    "creat": "SYS_open",
    "close": "SYS_close",
    "read": "SYS_read",
    "pread64": "SYS_pread64",
    "write": "SYS_write",
    "pwrite64": "SYS_pwrite64",
    "lseek": "SYS__llseek",
    "_llseek": "SYS__llseek",
    "stat": "SYS_stat64",
    "stat64": "SYS_stat64",
    "newfstatat": "SYS_stat64",
    "lstat": "SYS_stat64",
    "fstat": "SYS_fstat64",
    "fstat64": "SYS_fstat64",
    "unlink": "SYS_unlink",
    "unlinkat": "SYS_unlink",
    "mkdir": "SYS_mkdir",
    "mkdirat": "SYS_mkdir",
    "getdents64": "SYS_getdents64",
    "rename": "SYS_rename",
    "renameat": "SYS_rename",
    "statfs": "SYS_statfs64",
    "statfs64": "SYS_statfs64",
    "fsync": "SYS_fsync",
    "fdatasync": "SYS_fsync",
    "fcntl": "SYS_fcntl64",
    "fcntl64": "SYS_fcntl64",
    "mmap": "SYS_mmap2",
    "mmap2": "SYS_mmap2",
}

_PATH_RE = re.compile(r'"((?:[^"\\]|\\.)*)"')
_IO_NAMES = {"SYS_read", "SYS_write", "SYS_pread64", "SYS_pwrite64"}


@dataclass
class StraceParseResult:
    """Outcome of a whole-output parse: events plus a warning tally.

    ``warnings`` maps category → count.  Categories:

    * ``undecodable_bytes`` — lines that were not valid UTF-8 (decoded
      with backslash escapes so path bytes survive round trips);
    * ``unmapped_syscall`` — well-formed syscall lines whose name has no
      simulated counterpart (``futex``, ``exit_group``, ...);
    * ``unparsed_line`` — lines matching no known strace shape;
    * ``unmatched_resumed`` — ``<... resumed>`` with no pending
      ``<unfinished ...>`` partner (capture started mid-syscall);
    * ``unresolved_unfinished`` — ``<unfinished ...>`` never resumed
      (capture ended mid-syscall);
    * ``line_error`` — lines whose parse raised; the line is skipped,
      the parse continues.
    """

    events: List[TraceEvent] = field(default_factory=list)
    warnings: Dict[str, int] = field(default_factory=dict)
    n_lines: int = 0

    def warn(self, category: str) -> None:
        """Count one skipped line under ``category``."""
        self.warnings[category] = self.warnings.get(category, 0) + 1

    @property
    def n_events(self) -> int:
        return len(self.events)


def _extract_path(name: str, argtext: str) -> Optional[str]:
    if name in ("SYS_open", "SYS_stat64", "SYS_unlink", "SYS_mkdir", "SYS_rename",
                "SYS_statfs64"):
        m = _PATH_RE.search(argtext)
        if m:
            return m.group(1)
    return None


def _extract_fd(name: str, argtext: str) -> Optional[int]:
    if name in _IO_NAMES or name in ("SYS_close", "SYS_fstat64", "SYS_fcntl64",
                                     "SYS__llseek", "SYS_fsync"):
        first = argtext.split(",", 1)[0].strip()
        try:
            return int(first)
        except ValueError:
            return None
    return None


def _parse_result(result_text: str, errno: Optional[str]) -> object:
    if result_text == "?":
        # Interrupted syscall (killed mid-call, or exit_group): no
        # return value ever materialized.
        return None
    try:
        result: object = int(result_text, 0)
    except ValueError:
        result = result_text
    if errno:
        result = "-1 %s" % errno
    return result


def _build_event(
    name: str,
    ts: float,
    dur: Optional[str],
    argtext: str,
    result: object,
    pid: int,
) -> TraceEvent:
    nbytes: Optional[int] = None
    if name in _IO_NAMES and isinstance(result, int) and result >= 0:
        nbytes = result
    return TraceEvent(
        timestamp=ts,
        duration=float(dur) if dur else 0.0,
        layer=EventLayer.SYSCALL,
        name=name,
        args=(argtext,),
        result=result,
        pid=pid,
        path=_extract_path(name, argtext),
        fd=_extract_fd(name, argtext),
        nbytes=nbytes,
    )


def parse_strace_line(line: str) -> Optional[TraceEvent]:
    """Parse one complete (non-split) strace line, or return None."""
    event, _reason = _parse_complete_line(line)
    return event


def _parse_complete_line(line: str) -> Tuple[Optional[TraceEvent], Optional[str]]:
    """(event, None) on success; (None, warning-category) otherwise."""
    m = _LINE_RE.match(line.strip())
    if not m or m.group("result") is None:
        return None, "unparsed_line"
    raw_name = m.group("name")
    name = _NAME_MAP.get(raw_name)
    if name is None:
        return None, "unmapped_syscall"
    result = _parse_result(m.group("result"), m.group("errno"))
    event = _build_event(
        name=name,
        ts=float(m.group("ts")),
        dur=m.group("dur"),
        argtext=m.group("args") or "",
        result=result,
        pid=int(m.group("pid")) if m.group("pid") else 0,
    )
    return event, None


def _decode_lines(data: Union[str, bytes], result: StraceParseResult) -> List[str]:
    if isinstance(data, str):
        return data.splitlines()
    lines: List[str] = []
    for raw in data.splitlines():
        try:
            lines.append(raw.decode("utf-8"))
        except UnicodeDecodeError:
            # Raw path bytes in the capture: keep the line, escape the
            # bytes (matching strace's own octal-escape habit), count it.
            result.warn("undecodable_bytes")
            lines.append(raw.decode("utf-8", errors="backslashreplace"))
    return lines


def parse_strace(data: Union[str, bytes]) -> StraceParseResult:
    """Parse a whole strace output; never raises (see class docstring).

    Accepts text or raw bytes (``strace`` output files are not
    guaranteed to be valid UTF-8 — paths are arbitrary bytes).
    Unfinished/resumed pairs are stitched by (pid, syscall name);
    everything unparseable is skipped under a counted warning.
    """
    result = StraceParseResult()
    pending: Dict[Tuple[int, str], Tuple[float, str]] = {}
    for line in _decode_lines(data, result):
        stripped = line.strip()
        if not stripped:
            continue
        result.n_lines += 1
        try:
            _parse_one(stripped, pending, result)
        except Exception:
            # A single hostile line must never kill a whole-capture
            # parse; skip it, count it, keep going.
            result.warn("line_error")
    for _key in pending:
        result.warn("unresolved_unfinished")
    return result


def _parse_one(
    stripped: str,
    pending: Dict[Tuple[int, str], Tuple[float, str]],
    result: StraceParseResult,
) -> None:
    resumed = _RESUMED_RE.match(stripped)
    if resumed:
        raw_name = resumed.group("name")
        pid = int(resumed.group("pid")) if resumed.group("pid") else 0
        start = pending.pop((pid, raw_name), None)
        if start is None:
            result.warn("unmatched_resumed")
            return
        name = _NAME_MAP.get(raw_name)
        if name is None:
            result.warn("unmapped_syscall")
            return
        ts, argtext = start
        res = _parse_result(resumed.group("result"), resumed.group("errno"))
        result.events.append(
            _build_event(
                name=name,
                ts=ts,
                dur=resumed.group("dur"),
                argtext=argtext,
                result=res,
                pid=pid,
            )
        )
        return
    if stripped.endswith("<unfinished ...>"):
        m = _LINE_RE.match(stripped)
        if m:
            pid = int(m.group("pid")) if m.group("pid") else 0
            pending[(pid, m.group("name"))] = (
                float(m.group("ts")),
                m.group("args") or "",
            )
        else:
            result.warn("unparsed_line")
        return
    if _NOISE_RE.match(stripped):
        # Signal delivery / process exit markers: expected, not warned.
        return
    event, reason = _parse_complete_line(stripped)
    if event is not None:
        result.events.append(event)
    elif reason is not None:
        result.warn(reason)


def parse_strace_output(text: Union[str, bytes]) -> List[TraceEvent]:
    """Parse a whole strace output, stitching unfinished/resumed pairs.

    Back-compat wrapper around :func:`parse_strace`: just the events,
    warnings dropped.
    """
    return parse_strace(text).events
