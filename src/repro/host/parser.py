"""Parser for real ``strace -f -T -ttt`` text output.

Typical lines::

    12345 1699999999.123456 openat(AT_FDCWD, "/etc/hosts", O_RDONLY) = 3 <0.000034>
    12345 1699999999.123999 read(3, "127.0.0.1 ..."..., 4096) = 212 <0.000017>
    12345 1699999999.124100 write(1, "hi\\n", 3) = 3 <0.000008>
    12345 1699999999.124500 close(3) = 0 <0.000005>
    12345 1699999999.125000 exit_group(0) = ?
    12345 1699999999.124800 wait4(-1,  <unfinished ...>

Unfinished/resumed pairs are matched by (pid, syscall name); lines that
do not look like syscalls (signals, exits) are skipped.  Parsed events
use the library's shared model, with names normalized to the simulated
spelling (``openat`` → ``SYS_open``) so downstream tools (summaries,
pseudo-app builders) treat real and simulated traces identically.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.trace.events import EventLayer, TraceEvent

__all__ = ["parse_strace_line", "parse_strace_output"]

_LINE_RE = re.compile(
    r"^(?:(?P<pid>\d+)\s+)?"
    r"(?P<ts>\d+\.\d+)\s+"
    r"(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)"
    r"\((?P<args>.*?)"
    r"(?:\)\s*=\s*(?P<result>-?\d+|0x[0-9a-f]+|\?)(?:\s+(?P<errno>E[A-Z]+)[^<]*)?"
    r"(?:\s*<(?P<dur>\d+\.\d+)>)?"
    r"|\s*<unfinished \.\.\.>)\s*$"
)

_RESUMED_RE = re.compile(
    r"^(?:(?P<pid>\d+)\s+)?"
    r"(?P<ts>\d+\.\d+)\s+"
    r"<\.\.\. (?P<name>[a-zA-Z_][a-zA-Z0-9_]*) resumed>.*?"
    r"=\s*(?P<result>-?\d+|0x[0-9a-f]+|\?)(?:\s+(?P<errno>E[A-Z]+)[^<]*)?"
    r"(?:\s*<(?P<dur>\d+\.\d+)>)?\s*$"
)

#: real syscall name -> this library's canonical spelling
_NAME_MAP = {
    "open": "SYS_open",
    "openat": "SYS_open",
    "creat": "SYS_open",
    "close": "SYS_close",
    "read": "SYS_read",
    "pread64": "SYS_pread64",
    "write": "SYS_write",
    "pwrite64": "SYS_pwrite64",
    "lseek": "SYS__llseek",
    "_llseek": "SYS__llseek",
    "stat": "SYS_stat64",
    "stat64": "SYS_stat64",
    "newfstatat": "SYS_stat64",
    "lstat": "SYS_stat64",
    "fstat": "SYS_fstat64",
    "fstat64": "SYS_fstat64",
    "unlink": "SYS_unlink",
    "unlinkat": "SYS_unlink",
    "mkdir": "SYS_mkdir",
    "mkdirat": "SYS_mkdir",
    "getdents64": "SYS_getdents64",
    "rename": "SYS_rename",
    "renameat": "SYS_rename",
    "statfs": "SYS_statfs64",
    "statfs64": "SYS_statfs64",
    "fsync": "SYS_fsync",
    "fdatasync": "SYS_fsync",
    "fcntl": "SYS_fcntl64",
    "fcntl64": "SYS_fcntl64",
    "mmap": "SYS_mmap2",
    "mmap2": "SYS_mmap2",
}

_PATH_RE = re.compile(r'"((?:[^"\\]|\\.)*)"')
_IO_NAMES = {"SYS_read", "SYS_write", "SYS_pread64", "SYS_pwrite64"}


def _extract_path(name: str, argtext: str) -> Optional[str]:
    if name in ("SYS_open", "SYS_stat64", "SYS_unlink", "SYS_mkdir", "SYS_rename",
                "SYS_statfs64"):
        m = _PATH_RE.search(argtext)
        if m:
            return m.group(1)
    return None


def _extract_fd(name: str, argtext: str) -> Optional[int]:
    if name in _IO_NAMES or name in ("SYS_close", "SYS_fstat64", "SYS_fcntl64",
                                     "SYS__llseek", "SYS_fsync"):
        first = argtext.split(",", 1)[0].strip()
        try:
            return int(first)
        except ValueError:
            return None
    return None


def parse_strace_line(line: str) -> Optional[TraceEvent]:
    """Parse one complete (non-split) strace line, or return None."""
    m = _LINE_RE.match(line.strip())
    if not m or m.group("result") is None:
        return None
    raw_name = m.group("name")
    name = _NAME_MAP.get(raw_name)
    if name is None:
        return None
    result_text = m.group("result")
    result: Optional[object]
    if result_text == "?":
        result = None
    else:
        try:
            result = int(result_text, 0)
        except ValueError:
            result = result_text
    if m.group("errno"):
        result = "-1 %s" % m.group("errno")
    argtext = m.group("args") or ""
    nbytes: Optional[int] = None
    if name in _IO_NAMES and isinstance(result, int) and result >= 0:
        nbytes = result
    event = TraceEvent(
        timestamp=float(m.group("ts")),
        duration=float(m.group("dur")) if m.group("dur") else 0.0,
        layer=EventLayer.SYSCALL,
        name=name,
        args=(argtext,),
        result=result,
        pid=int(m.group("pid")) if m.group("pid") else 0,
        path=_extract_path(name, argtext),
        fd=_extract_fd(name, argtext),
        nbytes=nbytes,
    )
    return event


def parse_strace_output(text: str) -> List[TraceEvent]:
    """Parse a whole strace output, stitching unfinished/resumed pairs."""
    events: List[TraceEvent] = []
    pending: Dict[Tuple[int, str], Tuple[float, str]] = {}
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped:
            continue
        resumed = _RESUMED_RE.match(stripped)
        if resumed:
            name = _NAME_MAP.get(resumed.group("name"))
            pid = int(resumed.group("pid")) if resumed.group("pid") else 0
            start = pending.pop((pid, resumed.group("name")), None)
            if name is None or start is None:
                continue
            ts, argtext = start
            result_text = resumed.group("result")
            try:
                result: object = int(result_text, 0)
            except ValueError:
                result = None if result_text == "?" else result_text
            if resumed.group("errno"):
                result = "-1 %s" % resumed.group("errno")
            nbytes = (
                result
                if name in _IO_NAMES and isinstance(result, int) and result >= 0
                else None
            )
            events.append(
                TraceEvent(
                    timestamp=ts,
                    duration=float(resumed.group("dur")) if resumed.group("dur") else 0.0,
                    layer=EventLayer.SYSCALL,
                    name=name,
                    args=(argtext,),
                    result=result,
                    pid=pid,
                    path=_extract_path(name, argtext),
                    fd=_extract_fd(name, argtext),
                    nbytes=nbytes,
                )
            )
            continue
        if stripped.endswith("<unfinished ...>"):
            m = _LINE_RE.match(stripped)
            if m:
                pid = int(m.group("pid")) if m.group("pid") else 0
                pending[(pid, m.group("name"))] = (
                    float(m.group("ts")),
                    m.group("args") or "",
                )
            continue
        event = parse_strace_line(stripped)
        if event is not None:
            events.append(event)
    return events
