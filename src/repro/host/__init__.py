"""Real-OS tracing: the non-simulated end of the library.

The simulated cluster reproduces the paper's *measurements*; this package
keeps the library useful on a real machine, within the limits of what is
installable offline (per the reproduction constraints: ptrace/strace
wrappers only, no native interposition):

* :mod:`repro.host.strace_wrapper` — run a command under the system
  ``strace`` (when installed) and collect its output, LANL-Trace style;
* :mod:`repro.host.parser` — parse real strace text output into
  :class:`~repro.trace.events.TraceEvent` streams, so every analysis /
  anonymization / summary / replay-scripting tool in this library works
  on real traces;
* :mod:`repro.host.pyio` — a pure-Python in-process interposer for
  tracing the ``os``-level I/O of Python workloads without root, strace,
  or native code (the //TRACE mechanism, one level up).
"""

from repro.host.strace_wrapper import strace_available, run_under_strace
from repro.host.parser import parse_strace_output, parse_strace_line
from repro.host.pyio import PyIOTracer

__all__ = [
    "strace_available",
    "run_under_strace",
    "parse_strace_output",
    "parse_strace_line",
    "PyIOTracer",
]
