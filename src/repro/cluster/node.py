"""Compute nodes of the simulated cluster."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

from repro.des.resources import Resource
from repro.cluster.clock import Clock
from repro.units import MiB

__all__ = ["Node", "NodeParams"]


@dataclass(frozen=True)
class NodeParams:
    """Per-node CPU/OS cost model.

    These are the software costs a tracing framework perturbs.  Values are
    order-of-magnitude realistic for the paper's era (Linux 2.6.14 on
    commodity hardware) — what matters for reproduction is their *ratio* to
    transfer costs, which sets where overhead curves bend.

    Attributes
    ----------
    syscall_cost:
        Fixed kernel entry/exit cost per system call, seconds.
    libcall_cost:
        Fixed user-space cost per traced library call (cheaper than a
        syscall — no kernel crossing).
    mem_bandwidth:
        User/kernel copy bandwidth in bytes/second; payload copies cost
        ``nbytes / mem_bandwidth``.
    """

    syscall_cost: float = 3e-6
    libcall_cost: float = 1e-6
    mem_bandwidth: float = 800.0 * MiB

    def __post_init__(self) -> None:
        if self.syscall_cost < 0 or self.libcall_cost < 0:
            raise ValueError("costs must be non-negative")
        if self.mem_bandwidth <= 0:
            raise ValueError("mem_bandwidth must be positive")


class Node:
    """A compute node: clock, NIC, CPU cost parameters.

    The node also carries a ``cpu_factor``: a multiplier on all CPU-side
    costs.  Running a process under ptrace slows *everything* by a roughly
    constant factor (every syscall entails tracer stops); LANL-Trace's
    measured overhead "approaches a constant factor of untraced application
    bandwidth as block size is increased" (Figure 3) — that residual
    constant is this factor.  Tracing frameworks raise it while attached.
    """

    def __init__(self, sim: Any, index: int, params: NodeParams | None = None,
                 clock: Clock | None = None, hostname: str | None = None):
        self.sim = sim
        self.index = index
        self.params = params or NodeParams()
        self.clock = clock or Clock()
        self.hostname = hostname or ("host%02d.sim.lanl.gov" % index)
        # One full-duplex-simplified NIC: transfers through this node queue here.
        self.nic = Resource(sim, capacity=1, name="nic:%s" % self.hostname)
        self.cpu_factor = 1.0
        # Cleared/restored by the fault plane on scheduled crash/restart;
        # syscalls dispatched on a down node raise NodeCrashed.
        self.up = True

    # -- time ---------------------------------------------------------------

    def now_local(self) -> float:
        """The node's current local timestamp (what tracers record)."""
        return self.clock.local(self.sim.now)

    # -- CPU charging ---------------------------------------------------------

    def compute(self, seconds: float) -> Generator[Any, Any, None]:
        """Sub-activity: occupy this node's CPU for ``seconds`` of work.

        Scaled by ``cpu_factor`` (ptrace-style slowdown).  Use with
        ``yield from``.
        """
        if seconds > 0:
            yield seconds * self.cpu_factor

    def copy_cost(self, nbytes: int) -> float:
        """Unscaled CPU seconds to copy ``nbytes`` between user and kernel.

        Callers charging this through a process apply the process's
        combined ``cpu_factor`` themselves.
        """
        return nbytes / self.params.mem_bandwidth

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<Node %d %s>" % (self.index, self.hostname)
