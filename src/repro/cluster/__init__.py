"""Simulated cluster substrate.

Models the hardware platform of the paper's evaluation (§4.1.2): a
32-processor Linux cluster with a gigabit Ethernet interconnect, where each
compute node has its own imperfect clock.  The pieces:

* :class:`~repro.cluster.clock.Clock` — per-node clock with *skew* (constant
  offset) and *drift* (rate error), the phenomena LANL-Trace's timing jobs
  exist to expose (§3.1 "Accounts for time drift and skew");
* :class:`~repro.cluster.node.Node` — a compute node: clock, NIC, CPU cost
  parameters;
* :class:`~repro.cluster.network.Network` — shared interconnect with
  per-NIC links and latency/bandwidth costs;
* :class:`~repro.cluster.cluster.Cluster` /
  :class:`~repro.cluster.cluster.ClusterConfig` — assembly.
"""

from repro.cluster.clock import Clock
from repro.cluster.cluster import Cluster, ClusterConfig
from repro.cluster.network import Network, NetworkConfig
from repro.cluster.node import Node, NodeParams

__all__ = [
    "Clock",
    "Cluster",
    "ClusterConfig",
    "Network",
    "NetworkConfig",
    "Node",
    "NodeParams",
]
