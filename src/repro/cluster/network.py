"""Shared-interconnect model.

The paper's testbed used "a gigabit ethernet-over-copper interconnect"
(§4.1.2).  We model it as:

* one link (NIC) per endpoint with configurable bandwidth — transfers from
  the same node serialize on its NIC;
* a shared switch fabric with aggregate capacity — when many nodes push at
  once, the fabric becomes the bottleneck;
* a fixed per-message latency.

A transfer holds the sender's NIC for ``nbytes / link_bandwidth`` and one
fabric slot for ``nbytes / fabric_bandwidth_per_slot``; delivery completes
after an additional propagation latency.  This two-stage model is coarse
but produces the right macroscopic behaviour: per-message costs that
amortize with message size, and contention that scales with offered load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

from repro.des.resources import Resource
from repro.obs.tracepoints import STATE as _TELEMETRY
from repro.units import MiB

__all__ = ["Network", "NetworkConfig"]


@dataclass(frozen=True)
class NetworkConfig:
    """Interconnect parameters.

    Defaults approximate gigabit Ethernet: ~112 MiB/s per link, 60 µs
    small-message latency, and a fabric that sustains 16 concurrent
    full-rate streams before saturating.
    """

    link_bandwidth: float = 112.0 * MiB
    latency: float = 60e-6
    fabric_streams: int = 16

    def __post_init__(self) -> None:
        if self.link_bandwidth <= 0:
            raise ValueError("link_bandwidth must be positive")
        if self.latency < 0:
            raise ValueError("latency must be non-negative")
        if self.fabric_streams < 1:
            raise ValueError("fabric_streams must be >= 1")


class Network:
    """The cluster interconnect: per-sender NIC serialization + shared fabric."""

    def __init__(self, sim: Any, config: NetworkConfig | None = None):
        self.sim = sim
        self.config = config or NetworkConfig()
        self.fabric = Resource(
            sim, capacity=self.config.fabric_streams, name="fabric"
        )
        self._bytes_moved = 0
        self._messages = 0

    def transfer_time(self, nbytes: int) -> float:
        """Serialization time of ``nbytes`` on one link (excludes latency)."""
        return nbytes / self.config.link_bandwidth

    def transfer(self, sender_nic: Resource, nbytes: int) -> Generator[Any, Any, None]:
        """Sub-activity: move ``nbytes`` from a sender onto the fabric.

        Holds the sender's NIC and one fabric slot for the serialization
        time, then waits propagation latency.  Use with ``yield from``.
        """
        serialization = self.transfer_time(nbytes)
        plane = self.sim.fault_plane
        if plane is not None:
            # Partition stalls, latency spikes and packet-drop retransmits
            # happen before the NIC is held, so degraded senders don't
            # serialize healthy traffic behind them.
            yield from plane.network_gate(sender_nic, nbytes)
        col = _TELEMETRY.collector
        t0 = self.sim.now if col is not None else 0.0
        yield sender_nic.acquire()
        if col is not None:
            col.net_nic(sender_nic.name, self.sim.now, sender_nic.in_use)
        try:
            yield self.fabric.acquire()
            if col is not None:
                col.net_fabric(self.sim.now, self.fabric.in_use)
            try:
                if serialization > 0:
                    yield serialization
            finally:
                self.fabric.release()
                if col is not None:
                    col.net_fabric(self.sim.now, self.fabric.in_use)
        finally:
            sender_nic.release()
            if col is not None:
                col.net_nic(sender_nic.name, self.sim.now, sender_nic.in_use)
        if self.config.latency > 0:
            yield self.config.latency
        self._bytes_moved += nbytes
        self._messages += 1
        if col is not None:
            col.net_transfer(nbytes, t0, self.sim.now - t0)

    # -- accounting -----------------------------------------------------------

    @property
    def bytes_moved(self) -> int:
        return self._bytes_moved

    @property
    def messages(self) -> int:
        return self._messages
