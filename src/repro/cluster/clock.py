"""Per-node clocks with skew and drift.

The paper (§3.1) defines the two phenomena precisely:

    "Time skew is the difference between distributed clocks at any single
    moment in time.  Time drift is the change in time skew over time."

We model a node clock as an affine function of true (simulated) time::

    local(t) = epoch + (1 + drift) * t + skew

* ``skew`` — constant offset in seconds at t=0;
* ``drift`` — fractional rate error (e.g. 5e-6 = 5 µs gained per second),
  which makes the offset *change over time*;
* ``epoch`` — an arbitrary wall-clock base (the paper's traces show Unix
  epoch timestamps like 1159808385.17), shared across the cluster.

Timestamps recorded by tracing frameworks always come from the local clock,
never from true simulated time — that is what makes the skew/drift
correction machinery (:mod:`repro.analysis.skew`) non-trivial and testable:
the estimator must recover the affine map well enough to order events
globally.
"""

from __future__ import annotations

from repro.errors import SimTimeError

__all__ = ["Clock"]


class Clock:
    """An imperfect node clock: ``local(t) = epoch + (1 + drift) * t + skew``."""

    __slots__ = ("skew", "drift", "epoch")

    def __init__(self, skew: float = 0.0, drift: float = 0.0, epoch: float = 0.0):
        if drift <= -1.0:
            raise SimTimeError("drift <= -1 would make the clock run backwards")
        self.skew = float(skew)
        self.drift = float(drift)
        self.epoch = float(epoch)

    def local(self, true_time: float) -> float:
        """Map true simulated time to this node's local timestamp."""
        return self.epoch + (1.0 + self.drift) * true_time + self.skew

    def true(self, local_time: float) -> float:
        """Invert :meth:`local`: recover true time from a local timestamp."""
        return (local_time - self.epoch - self.skew) / (1.0 + self.drift)

    def offset_at(self, true_time: float) -> float:
        """Instantaneous skew versus a perfect clock at ``true_time``.

        This is the paper's "time skew ... at any single moment in time";
        with nonzero drift it changes linearly with time.
        """
        return self.local(true_time) - (self.epoch + true_time)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "Clock(skew=%g, drift=%g, epoch=%g)" % (self.skew, self.drift, self.epoch)
