"""Cluster assembly: configuration plus construction of the node set.

A :class:`Cluster` owns the simulator, the nodes (with randomly drawn clock
skew/drift from the config's distributions), and the interconnect.  Storage
systems and MPI runtimes attach on top of it — see
:mod:`repro.simfs.pfs` and :mod:`repro.simmpi.runtime`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.clock import Clock
from repro.cluster.network import Network, NetworkConfig
from repro.cluster.node import Node, NodeParams
from repro.des.simulator import Simulator

__all__ = ["Cluster", "ClusterConfig"]


@dataclass(frozen=True)
class ClusterConfig:
    """Shape and imperfection parameters of a simulated cluster.

    Attributes
    ----------
    n_nodes:
        Number of compute nodes (the paper ran 32 processors).
    seed:
        Root seed for all randomness in the simulation.
    clock_skew_stddev:
        Standard deviation of the per-node constant clock offset, seconds.
        Commodity clusters of the era commonly disagreed by tens of
        milliseconds to seconds when NTP was loose.
    clock_drift_stddev:
        Standard deviation of the per-node fractional rate error.  Crystal
        oscillators drift on the order of 1e-6 .. 1e-4 (1–100 ppm).
    clock_epoch:
        Shared wall-clock base for local timestamps (Unix-epoch-like).
    node_params:
        CPU/OS cost model applied to every node.
    network:
        Interconnect parameters.
    """

    n_nodes: int = 32
    seed: int = 0
    clock_skew_stddev: float = 0.05
    clock_drift_stddev: float = 2e-5
    clock_epoch: float = 1_159_808_000.0
    node_params: NodeParams = field(default_factory=NodeParams)
    network: NetworkConfig = field(default_factory=NetworkConfig)

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("cluster needs at least one node")
        if self.clock_skew_stddev < 0 or self.clock_drift_stddev < 0:
            raise ValueError("clock imperfection stddevs must be non-negative")


class Cluster:
    """A simulated cluster: simulator + nodes + interconnect."""

    def __init__(self, config: ClusterConfig | None = None):
        self.config = config or ClusterConfig()
        self.sim = Simulator(seed=self.config.seed)
        rng = self.sim.random.stream("cluster.clocks")
        self.nodes: list[Node] = []
        for i in range(self.config.n_nodes):
            clock = Clock(
                skew=float(rng.normal(0.0, self.config.clock_skew_stddev))
                if self.config.clock_skew_stddev > 0
                else 0.0,
                drift=float(rng.normal(0.0, self.config.clock_drift_stddev))
                if self.config.clock_drift_stddev > 0
                else 0.0,
                epoch=self.config.clock_epoch,
            )
            self.nodes.append(Node(self.sim, i, self.config.node_params, clock))
        self.network = Network(self.sim, self.config.network)

    def __len__(self) -> int:
        return len(self.nodes)

    def node(self, index: int) -> Node:
        """The ``index``-th compute node."""
        return self.nodes[index]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<Cluster %d nodes, seed=%d>" % (len(self.nodes), self.config.seed)
