"""TraceBank as a service: concurrent multi-tenant ingest/query HTTP API.

The archive layers below this package are strictly single-writer-ish
library code; this package turns them into a long-running service:

* :mod:`repro.service.tenants` — per-tenant namespaces over one shared
  content-addressed segment pool (cross-tenant dedup for free, isolation
  by construction);
* :mod:`repro.service.ingestq` — the bounded write-ahead ingest queue:
  durability before acknowledgement, explicit 429 backpressure;
* :mod:`repro.service.api` — transport-independent routing/handlers
  (testable without sockets);
* :mod:`repro.service.server` — the stdlib-asyncio HTTP/1.1 front end;
* :mod:`repro.service.loadgen` — the deterministic load-test harness
  behind ``BENCH_service.json``.

Every request is traced end to end (client → http → wal → commit →
bank) via :mod:`repro.obs.reqtrace`: the server adopts the client's
``traceparent`` ids, keeps the N slowest traces per route inspectable
over ``GET /v1/traces/slowest``, exposes Prometheus text at
``GET /v1/metrics?format=prom``, and can write a canonical JSONL access
log (one line per request).

See DESIGN.md §16 for the architecture and the backpressure contract,
and §18 for the observability surface.
"""

from repro.service.api import Request, Response, ServiceApp, query_from_params
from repro.service.ingestq import IngestQueue, WalEntry, decode_upload
from repro.service.loadgen import (
    LoadPlan,
    LoadResult,
    build_plan,
    make_payload,
    run_loadgen,
    write_bench,
)
from repro.service.server import ServiceServer, serve
from repro.service.tenants import (
    TENANT_NAME_RE,
    TenantRegistry,
    validate_tenant_name,
)

__all__ = [
    "Request",
    "Response",
    "ServiceApp",
    "ServiceServer",
    "IngestQueue",
    "WalEntry",
    "LoadPlan",
    "LoadResult",
    "TENANT_NAME_RE",
    "TenantRegistry",
    "build_plan",
    "decode_upload",
    "make_payload",
    "query_from_params",
    "run_loadgen",
    "serve",
    "validate_tenant_name",
    "write_bench",
]
