"""Deterministic multi-tenant load generator for the TraceBank service.

The load plan is a pure function of its parameters: a seeded RNG deals
each simulated client a tenant, a repeatable sequence of ingest bodies
(drawn from a small pool of distinct trace payloads so dedup is
exercised on purpose) and interleaved query/runs/dfg reads.  Two runs of
``repro service loadgen --seed 7 --clients 100`` issue byte-identical
request sequences — latency numbers vary with the machine, but the
*work* never does, which is what makes the BENCH comparable across
commits.

Each client is one asyncio task holding one keep-alive connection, so
``--clients 1000`` really is a thousand concurrent sockets hammering the
server.  The harness records every response: latency quantiles (p50/p99),
request throughput, the status mix (429s are *expected* under
backpressure and retried after the server's own ``Retry-After``), and —
from ``/v1/stats`` at the end — the service-wide dedup ratio.  Results
land in canonical JSON (``BENCH_service.json`` by convention) feeding the
``service_req_per_sec`` baseline gate.
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ServiceError
from repro.obs.metrics import canonical_json
from repro.obs.reqtrace import make_context
from repro.trace.binary_format import encode_trace_file
from repro.trace.events import EventLayer, TraceEvent
from repro.trace.records import TraceFile

__all__ = ["LoadPlan", "LoadResult", "build_plan", "run_loadgen", "make_payload"]

_OPS = ("SYS_write", "SYS_read", "SYS_open", "SYS_close")


def make_payload(payload_id: int, events: int = 64) -> bytes:
    """One deterministic binary trace body, unique per ``payload_id``."""
    rng = random.Random(0xBEEF ^ payload_id)
    evs = []
    ts = 0.0
    for i in range(events):
        ts += rng.uniform(0.0005, 0.005)
        nbytes = rng.choice((4096, 65536, 1 << 20))
        evs.append(
            TraceEvent(
                timestamp=ts,
                duration=rng.uniform(0.0001, 0.002),
                layer=EventLayer.SYSCALL,
                name=_OPS[i % len(_OPS)],
                args=(3, nbytes),
                result=nbytes,
                pid=4000 + payload_id,
                rank=payload_id % 8,
                hostname="load%03d" % (payload_id % 32),
                user="loadgen",
                path="/pfs/load/%d/data.bin" % (payload_id % 16),
                fd=3,
                nbytes=nbytes,
                offset=i * nbytes,
            )
        )
    tf = TraceFile(
        evs,
        hostname="load%03d" % (payload_id % 32),
        pid=4000 + payload_id,
        rank=payload_id % 8,
        framework="loadgen",
    )
    return encode_trace_file(tf)


@dataclass
class LoadPlan:
    """The fully materialised request schedule for every client."""

    seed: int
    tenants: List[str]
    payloads: List[bytes]
    #: ``ops[client]`` is that client's request list; each op is a tuple
    #: ``("ingest", tenant, payload_idx)`` or ``("query"|"runs"|"dfg", tenant)``.
    ops: List[List[Tuple[str, ...]]] = field(default_factory=list)

    @property
    def total_requests(self) -> int:
        return sum(len(client_ops) for client_ops in self.ops)


def build_plan(
    clients: int = 100,
    requests_per_client: int = 10,
    tenants: int = 4,
    payload_pool: int = 16,
    ingest_fraction: float = 0.5,
    seed: int = 7,
    payload_events: int = 64,
) -> LoadPlan:
    """Deal the deterministic request schedule (pure; no I/O)."""
    if clients < 1 or requests_per_client < 1 or tenants < 1 or payload_pool < 1:
        raise ServiceError("loadgen parameters must all be >= 1")
    rng = random.Random(seed)
    tenant_names = ["tenant%02d" % i for i in range(tenants)]
    payloads = [make_payload(i, events=payload_events) for i in range(payload_pool)]
    reads = ("query", "query", "runs", "dfg")  # query-heavy read mix
    ops: List[List[Tuple[str, ...]]] = []
    for client in range(clients):
        tenant = tenant_names[client % tenants]
        # Each client opens with an ingest so its namespace exists before
        # any of its reads — accepted uploads create the tenant, so the
        # plan never reads a namespace it has not itself established.
        client_ops: List[Tuple[str, ...]] = [
            ("ingest", tenant, str(rng.randrange(payload_pool)))
        ]
        for _ in range(requests_per_client - 1):
            if rng.random() < ingest_fraction:
                client_ops.append(("ingest", tenant, str(rng.randrange(payload_pool))))
            else:
                client_ops.append((rng.choice(reads), tenant))
        ops.append(client_ops)
    return LoadPlan(seed=seed, tenants=tenant_names, payloads=payloads, ops=ops)


def _rank_quantile(values: List[float], q: float) -> float:
    """Nearest-rank quantile of a raw latency list (0 when empty)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    idx = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[idx]


@dataclass
class LoadResult:
    """Aggregated outcome of one loadgen run (see :func:`report`)."""

    clients: int
    requests: int
    errors: int
    retries_429: int
    wall_seconds: float
    latencies: List[float]
    status_counts: Dict[int, int]
    dedup_ratio: Optional[float] = None
    stats: Optional[Dict[str, Any]] = None
    #: Per-route raw observations: route -> {"latencies", "status_counts"}.
    routes: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (nearest-rank) of the observed latencies."""
        return _rank_quantile(self.latencies, q)

    def report(self) -> Dict[str, Any]:
        """The canonical BENCH_service report dict (schema'd, rounded)."""
        wall = max(self.wall_seconds, 1e-9)
        per_route: Dict[str, Any] = {}
        for route in sorted(self.routes):
            obs = self.routes[route]
            lats = obs.get("latencies") or []
            per_route[route] = {
                "requests": len(lats),
                "latency_p50_ms": round(_rank_quantile(lats, 0.50) * 1e3, 3),
                "latency_p99_ms": round(_rank_quantile(lats, 0.99) * 1e3, 3),
                "status_counts": {
                    str(k): v
                    for k, v in sorted((obs.get("status_counts") or {}).items())
                },
            }
        return {
            "schema": "repro/service/bench/v1",
            "clients": self.clients,
            "requests": self.requests,
            "errors": self.errors,
            "retries_429": self.retries_429,
            "wall_seconds": round(self.wall_seconds, 6),
            "req_per_sec": round(self.requests / wall, 3),
            "latency_p50_ms": round(self.quantile(0.50) * 1e3, 3),
            "latency_p99_ms": round(self.quantile(0.99) * 1e3, 3),
            "status_counts": {
                str(k): v for k, v in sorted(self.status_counts.items())
            },
            "routes": per_route,
            "dedup_ratio": (
                None if self.dedup_ratio is None else round(self.dedup_ratio, 4)
            ),
        }


class _Client:
    """One simulated client: one keep-alive connection, one op list."""

    def __init__(self, host: str, port: int, timeout: float = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None

    async def _connect(self) -> None:
        self.reader, self.writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self) -> None:
        if self.writer is not None:
            try:
                self.writer.close()
                await self.writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self.reader = self.writer = None

    async def request(
        self,
        method: str,
        target: str,
        body: bytes = b"",
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Dict[str, str], bytes]:
        for attempt in (0, 1):  # one transparent reconnect on a stale socket
            if self.writer is None:
                await self._connect()
            try:
                return await asyncio.wait_for(
                    self._roundtrip(method, target, body, headers or {}),
                    timeout=self.timeout,
                )
            except (ConnectionError, asyncio.IncompleteReadError):
                await self.close()
                if attempt:
                    raise
        raise ConnectionError("unreachable")  # pragma: no cover

    async def _roundtrip(
        self, method: str, target: str, body: bytes, headers: Dict[str, str]
    ) -> Tuple[int, Dict[str, str], bytes]:
        assert self.reader is not None and self.writer is not None
        lines = [
            "%s %s HTTP/1.1" % (method, target),
            "Host: %s" % self.host,
            "Content-Length: %d" % len(body),
        ]
        lines.extend("%s: %s" % (k, v) for k, v in sorted(headers.items()))
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        self.writer.write(head + body)
        await self.writer.drain()
        status_line = await self.reader.readuntil(b"\r\n")
        status = int(status_line.split(b" ", 2)[1])
        headers: Dict[str, str] = {}
        while True:
            line = await self.reader.readuntil(b"\r\n")
            if line == b"\r\n":
                break
            name, _, value = line.decode("latin-1").strip().partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        payload = await self.reader.readexactly(length) if length else b""
        if headers.get("connection", "").lower() == "close":
            await self.close()
        return status, headers, payload


_QUERY_TARGET = "/v1/t/%s/query?agg=ops&limit=32"
_DFG_TARGET = "/v1/t/%s/dfg?limit=32"


async def _run_client(
    host: str,
    port: int,
    plan: LoadPlan,
    client_idx: int,
    sink: Dict[str, Any],
    max_429_retries: int = 50,
) -> None:
    client = _Client(host, port)
    try:
        for op_idx, op in enumerate(plan.ops[client_idx]):
            kind, tenant = op[0], op[1]
            if kind == "ingest":
                body = plan.payloads[int(op[2])]
                method, target = "POST", "/v1/t/%s/ingest?rank=0" % tenant
            elif kind == "query":
                body, method, target = b"", "GET", _QUERY_TARGET % tenant
            elif kind == "dfg":
                body, method, target = b"", "GET", _DFG_TARGET % tenant
            else:
                body, method, target = b"", "GET", "/v1/t/%s/runs" % tenant
            # Deterministic trace context per (plan, client, op): the
            # server adopts these ids, so a bench run's slowest server
            # trace joins back to exactly one planned client request.
            ctx = make_context("repro-loadgen", plan.seed, client_idx, op_idx)
            route_obs = sink["routes"].setdefault(
                kind, {"latencies": [], "status_counts": {}}
            )
            retries = 0
            while True:
                t0 = time.perf_counter()
                try:
                    status, headers, _payload = await client.request(
                        method, target, body,
                        headers={"Traceparent": ctx.header()},
                    )
                except (ConnectionError, OSError, asyncio.IncompleteReadError,
                        asyncio.TimeoutError):
                    sink["errors"] += 1
                    await client.close()
                    break
                latency = time.perf_counter() - t0
                sink["latencies"].append(latency)
                sink["status_counts"][status] = (
                    sink["status_counts"].get(status, 0) + 1
                )
                route_obs["latencies"].append(latency)
                route_obs["status_counts"][status] = (
                    route_obs["status_counts"].get(status, 0) + 1
                )
                if status == 429 and retries < max_429_retries:
                    # Exponential backoff from the server's own hint —
                    # deterministic, and it keeps a saturated queue from
                    # drowning in retry traffic.
                    base = float(headers.get("retry-after", "0.25"))
                    sink["retries_429"] += 1
                    await asyncio.sleep(min(5.0, base * (2 ** min(retries, 6))))
                    retries += 1
                    continue
                if status >= 500:
                    sink["errors"] += 1
                break
    finally:
        await client.close()


async def _run_loadgen_async(
    host: str, port: int, plan: LoadPlan
) -> LoadResult:
    sink: Dict[str, Any] = {
        "latencies": [],
        "status_counts": {},
        "errors": 0,
        "retries_429": 0,
        "routes": {},
    }
    t0 = time.perf_counter()
    await asyncio.gather(
        *(
            _run_client(host, port, plan, i, sink)
            for i in range(len(plan.ops))
        )
    )
    wall = time.perf_counter() - t0
    dedup_ratio: Optional[float] = None
    stats: Optional[Dict[str, Any]] = None
    probe = _Client(host, port)
    try:
        status, _headers, payload = await probe.request("GET", "/v1/stats")
        if status == 200:
            stats = json.loads(payload.decode("utf-8"))
            dedup_ratio = float(stats.get("dedup_ratio", 1.0))
    except (ConnectionError, OSError, asyncio.IncompleteReadError,
            asyncio.TimeoutError, ValueError):
        pass
    finally:
        await probe.close()
    return LoadResult(
        clients=len(plan.ops),
        requests=len(sink["latencies"]),
        errors=sink["errors"],
        retries_429=sink["retries_429"],
        wall_seconds=wall,
        latencies=sink["latencies"],
        status_counts=sink["status_counts"],
        dedup_ratio=dedup_ratio,
        stats=stats,
        routes=sink["routes"],
    )


def run_loadgen(host: str, port: int, plan: LoadPlan) -> LoadResult:
    """Blocking entry point: run the whole plan against a live server."""
    return asyncio.run(_run_loadgen_async(host, port, plan))


def write_bench(result: LoadResult, path: str) -> Dict[str, Any]:
    """Write the canonical BENCH_service.json and return the report."""
    report = result.report()
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(canonical_json(report) + "\n")
    return report
