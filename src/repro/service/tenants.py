"""Per-tenant namespaces over one shared content-addressed segment store.

A service store is a normal TraceBank root with one extra directory::

    <root>/
        STORE.json                      # the service root is itself a bank
        segments/<sha[:2]>/<sha>.seg    # ONE segment pool, shared by all
        manifests/                      # root-level (non-tenant) runs
        tenants/<name>/
            STORE.json                  # {"segments_root": "../../segments",
                                        #  "tenant": "<name>", ...}
            manifests/<run_id>.json     # the tenant's private run index
            index.json                  # per-tenant warm manifest cache

A tenant namespace is a real :class:`~repro.store.bank.TraceBank` — the
query/DFG engine, ``verify``, ``ls`` and the worker processes all operate
on it unchanged — whose ``segments_root`` marker points its segment reads
and writes at the *root's* pool.  Content addressing then makes
cross-tenant dedup free: two tenants ingesting the same trace bytes land
on the same ``<sha>.seg`` file, while each sees only the runs its own
``manifests/`` directory names.  Isolation is structural, not filtered —
a tenant's manifest index simply cannot reach another tenant's runs, even
when every underlying segment is shared and even when two tenants hold
the same (content-derived) run id.

Garbage collection is root-only: a tenant bank refuses to ``gc`` (it
cannot distinguish a sibling's live segment from garbage), and the root
bank's gc treats every tenant manifest as a root — see
:meth:`repro.store.bank.TraceBank.gc`.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.errors import StoreNotFound, TenantNameError
from repro.store.bank import STORE_SCHEMA, TraceBank, _atomic_write_bytes

__all__ = ["TENANT_NAME_RE", "TenantRegistry", "validate_tenant_name"]

#: Tenant names are DNS-label-ish: lowercase alphanumerics plus ``_.-``,
#: starting with an alphanumeric, at most 64 chars.  Everything else —
#: uppercase, path separators, ``..`` traversal — is rejected before any
#: path is formed from the name.
TENANT_NAME_RE = re.compile(r"^[a-z0-9][a-z0-9_.-]{0,63}$")


def validate_tenant_name(name: str) -> str:
    """Return ``name`` if it is a legal tenant name, else raise.

    Raises :class:`~repro.errors.TenantNameError`; the HTTP layer maps it
    to a 400.  ``..`` never survives the regex (no leading dot) but is
    double-checked anyway — this is the only gate between a URL path
    component and a directory name.
    """
    if not isinstance(name, str) or not TENANT_NAME_RE.match(name) or ".." in name:
        raise TenantNameError(
            "bad tenant name %r (want %s)" % (name, TENANT_NAME_RE.pattern)
        )
    return name


class TenantRegistry:
    """The service's view of one store root and its tenant namespaces."""

    def __init__(self, root: Union[str, Path], create: bool = True):
        self.root_bank = TraceBank(root, create=create)
        self.root = self.root_bank.root
        self.tenants_dir = self.root / "tenants"

    # -- namespaces ----------------------------------------------------------

    def tenant_root(self, name: str) -> Path:
        """The on-disk directory of one (validated) tenant namespace."""
        return self.tenants_dir / validate_tenant_name(name)

    def bank(self, name: str, create: bool = True) -> TraceBank:
        """Open (optionally creating) one tenant's namespace bank."""
        name = validate_tenant_name(name)
        troot = self.tenant_root(name)
        marker = troot / "STORE.json"
        if not marker.is_file():
            if not create:
                raise StoreNotFound(
                    "no tenant %r under %s (no %s)" % (name, self.root, marker)
                )
            (troot / "manifests").mkdir(parents=True, exist_ok=True)
            _atomic_write_bytes(
                marker,
                (
                    json.dumps(
                        {
                            "schema": STORE_SCHEMA,
                            "version": 1,
                            "segments_root": "../../segments",
                            "tenant": name,
                        },
                        sort_keys=True,
                    )
                    + "\n"
                ).encode(),
            )
        return TraceBank(troot, create=False)

    def list_tenants(self) -> List[str]:
        """Every tenant namespace present on disk, sorted."""
        if not self.tenants_dir.is_dir():
            return []
        return sorted(
            p.name
            for p in self.tenants_dir.iterdir()
            if (p / "STORE.json").is_file()
        )

    # -- service-wide reports ------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Global archive stats: all tenants + root over the one pool.

        ``dedup_ratio`` here is the number the per-tenant view cannot
        compute — logical bytes across *every* namespace's manifests over
        the bytes actually stored once in the shared pool.
        """
        tenants = self.list_tenants()
        per_tenant: Dict[str, Dict[str, Any]] = {}
        logical = events = runs = 0
        referenced: set = set()
        banks = [(None, self.root_bank)] + [(t, self.bank(t, create=False)) for t in tenants]
        for label, bank in banks:
            manifests = bank.manifests()
            t_logical = sum(s.encoded_bytes for m in manifests for s in m.segments)
            t_events = sum(m.n_events for m in manifests)
            runs += len(manifests)
            logical += t_logical
            events += t_events
            for m in manifests:
                referenced.update(m.segment_shas())
            if label is not None:
                per_tenant[label] = {
                    "runs": len(manifests),
                    "events": t_events,
                    "logical_bytes": t_logical,
                }
        stored = 0
        for sha in self.root_bank.disk_segments():
            try:
                stored += self.root_bank.segment_path(sha).stat().st_size
            except OSError:
                pass
        return {
            "schema": "repro/service/stats/v1",
            "tenants": len(tenants),
            "runs": runs,
            "events": events,
            "segments_unique": len(referenced),
            "segments_on_disk": len(self.root_bank.disk_segments()),
            "logical_bytes": logical,
            "stored_bytes": stored,
            "dedup_ratio": (logical / stored) if stored else 1.0,
            "per_tenant": per_tenant,
        }

    def verify(self, jobs: int = 1) -> Dict[str, Any]:
        """Whole-service integrity check: root bank + every tenant.

        Each namespace verifies its own manifests/segments; the root's
        report carries the orphan scan (tenant manifests pin shared
        segments there).  ``ok`` is the conjunction.
        """
        reports = {"_root": self.root_bank.verify(jobs=jobs)}
        for name in self.list_tenants():
            reports[name] = self.bank(name, create=False).verify(jobs=jobs)
        return {
            "schema": "repro/service/verify/v1",
            "ok": all(r["ok"] for r in reports.values()),
            "namespaces": reports,
        }

    def gc(self, dry_run: bool = False, tmp_ttl_seconds: float = 3600.0) -> Dict[str, Any]:
        """Service-wide gc: delegates to the (tenant-aware) root bank."""
        return self.root_bank.gc(dry_run=dry_run, tmp_ttl_seconds=tmp_ttl_seconds)
