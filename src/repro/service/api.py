"""Transport-independent request handling for the TraceBank service.

:class:`ServiceApp` owns the tenant registry, the bounded write-ahead
ingest queue, its commit workers, and the always-on request metrics; the
HTTP server (:mod:`repro.service.server`) is a thin byte shuffler over
:meth:`ServiceApp.handle`, which makes every route testable without a
socket.

Routes (all responses canonical JSON)::

    GET  /healthz                      liveness + queue depth
    GET  /v1/stats                     service-wide archive stats (dedup)
    GET  /v1/metrics                   request/ingest/commit metrics
    GET  /v1/tenants                   tenant namespace listing
    POST /v1/t/{tenant}/ingest        one trace upload (binary or text
                                       format); 202 on accept, or with
                                       ``?sync=1`` 200 after commit with
                                       the dedup-aware ingest result
    GET  /v1/t/{tenant}/runs          the tenant's archived runs
    GET  /v1/t/{tenant}/query         the store query engine (same params
                                       as ``repro store query``; the body
                                       is byte-identical to its --json)
    GET  /v1/t/{tenant}/dfg           directly-follows graph, ditto

Error contract: every failure is a typed JSON body
``{"error": {"type", "message"}}`` — 400 for malformed queries/bodies/
tenant names, 404 for unknown routes/tenants/runs, 405 for wrong
methods, 413 for oversized bodies (enforced by the server before the
body is read), and 429 + ``Retry-After`` when the ingest queue is full.
Nothing is ever persisted for a rejected request: the WAL entry is
written only after the body fully arrived and decoded.
"""

from __future__ import annotations

import asyncio
import re
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from functools import partial
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.errors import (
    IngestQueueFull,
    ReproError,
    ServiceError,
    StoreError,
    StoreNotFound,
    StoreQueryError,
    TenantNameError,
    TraceError,
)
from repro.obs.metrics import MetricsRegistry, canonical_json
from repro.obs.tracepoints import STATE
from repro.service.ingestq import IngestQueue, WalEntry, decode_upload
from repro.service.tenants import TenantRegistry
from repro.store.bank import TraceBank
from repro.store.dfg import build_dfg
from repro.store.query import Query, run_query

__all__ = ["Request", "Response", "ServiceApp", "query_from_params"]

_TENANT_ROUTE = re.compile(r"^/v1/t/([^/]+)/(ingest|runs|query|dfg)$")


@dataclass
class Request:
    """One parsed HTTP request, transport details already stripped."""

    method: str
    path: str
    params: Dict[str, List[str]] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def param(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """The first value of one query parameter, or ``default``."""
        values = self.params.get(name)
        return values[0] if values else default


@dataclass
class Response:
    """One response: status + canonical-JSON (or text) body."""

    status: int
    body: bytes
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)


def _json_body(obj: Any) -> bytes:
    return (canonical_json(obj) + "\n").encode("utf-8")


def _error_response(status: int, exc_type: str, message: str,
                    headers: Optional[Dict[str, str]] = None) -> Response:
    return Response(
        status=status,
        body=_json_body({"error": {"type": exc_type, "message": message}}),
        headers=dict(headers or {}),
    )


def _status_for(exc: BaseException) -> int:
    if isinstance(exc, IngestQueueFull):
        return 429
    if isinstance(exc, StoreNotFound):
        return 404
    if isinstance(exc, (TenantNameError, TraceError, StoreQueryError)):
        return 400
    if isinstance(exc, StoreError) and "no archived run matches" in str(exc):
        return 404
    if isinstance(exc, ReproError):
        return 400
    return 500


def query_from_params(params: Dict[str, List[str]]) -> Query:
    """Build a :class:`~repro.store.query.Query` from URL query params.

    Mirrors the ``repro store query`` CLI flags one-to-one (``ranks``,
    ``ops``, ``layers``, ``path_glob``, ``since``, ``until``, ``window``,
    ``limit``, ``runs``, ``where.<key>=<value>``, ``agg``) so a service
    answer is byte-identical to the CLI's over the same namespace.
    Values may repeat or be comma-separated.  Raises
    :class:`~repro.errors.StoreQueryError` on malformed values.
    """

    def multi(name: str) -> Optional[List[str]]:
        values: List[str] = []
        for raw in params.get(name, []):
            values.extend(v for v in raw.split(",") if v)
        return values or None

    def scalar_float(name: str) -> Optional[float]:
        raw = params.get(name)
        if not raw:
            return None
        try:
            return float(raw[0])
        except ValueError:
            raise StoreQueryError("bad float for %r: %r" % (name, raw[0])) from None

    where: Dict[str, str] = {}
    for key, values in params.items():
        if key.startswith("where.") and values:
            where[key[len("where."):]] = values[-1]
    ranks_raw = multi("ranks")
    try:
        ranks = [int(r) for r in ranks_raw] if ranks_raw is not None else None
    except ValueError:
        raise StoreQueryError("bad integer in ranks=%r" % (ranks_raw,)) from None
    limit_raw = params.get("limit")
    limit: Optional[int] = None
    if limit_raw:
        try:
            limit = int(limit_raw[0])
        except ValueError:
            raise StoreQueryError("bad integer limit %r" % limit_raw[0]) from None
    window = scalar_float("window")
    return Query.create(
        agg=(params.get("agg") or ["ops"])[0],
        ranks=ranks,
        names=multi("ops"),
        layers=multi("layers"),
        path_glob=(params.get("path_glob") or [None])[0],
        since=scalar_float("since"),
        until=scalar_float("until"),
        where=where,
        runs=multi("runs"),
        window=0.05 if window is None else window,
        limit=limit,
    )


class ServiceApp:
    """The service's brain: tenants + WAL queue + workers + metrics."""

    def __init__(
        self,
        store_root: Union[str, Path],
        queue_capacity: int = 256,
        max_body_bytes: int = 32 << 20,
        query_jobs: int = 1,
        commit_workers: int = 2,
        codec: str = "v1",
    ):
        self.registry = TenantRegistry(store_root)
        self.queue = IngestQueue(self.registry.root, capacity=queue_capacity)
        self.max_body_bytes = int(max_body_bytes)
        self.query_jobs = int(query_jobs)
        self.commit_workers = int(commit_workers)
        self.codec = codec
        self.metrics = MetricsRegistry()
        # Decode/WAL/commit/query all share this pool; keep headroom so
        # accept-path hops cannot starve the commit workers.
        self.executor = ThreadPoolExecutor(
            max_workers=max(4, commit_workers + query_jobs + 2),
            thread_name_prefix="repro-service",
        )
        self._banks: Dict[str, TraceBank] = {}
        self._workers: List["asyncio.Task[None]"] = []
        #: Test hook: when set to an :class:`asyncio.Event`, commit
        #: workers park on it before touching the store — lets fault
        #: tests fill the queue deterministically.
        self.commit_gate: Optional[asyncio.Event] = None

    # -- lifecycle -----------------------------------------------------------

    async def startup(self) -> None:
        """Recover the WAL and start the commit workers."""
        loop = asyncio.get_running_loop()
        recovered = await loop.run_in_executor(self.executor, self.queue.recover)
        for entry in recovered:
            # Recovered entries bypass reserve(): they already consumed
            # their slot in a previous life and must drain regardless.
            self.queue._in_flight += 1
            self.queue.queue.put_nowait(entry)
            self.metrics.inc("service.wal.recovered")
        for _ in range(self.commit_workers):
            self._workers.append(asyncio.create_task(self._commit_loop()))

    async def shutdown(self, drain: bool = True) -> None:
        """Stop the workers, optionally committing queued entries first."""
        if drain and self.queue.depth:
            await self.queue.queue.join()
        for task in self._workers:
            task.cancel()
        for task in self._workers:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._workers = []
        self.executor.shutdown(wait=True)

    # -- internals -----------------------------------------------------------

    def _bank(self, tenant: str, create: bool = True) -> TraceBank:
        bank = self._banks.get(tenant)
        if bank is None:
            bank = self.registry.bank(tenant, create=create)
            self._banks[tenant] = bank
        return bank

    async def _commit_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            entry: WalEntry = await self.queue.queue.get()
            try:
                if self.commit_gate is not None:
                    await self.commit_gate.wait()
                bank = self._bank(entry.tenant)
                result = await loop.run_in_executor(
                    self.executor, self.queue.commit, entry, bank
                )
            except asyncio.CancelledError:
                # Shutdown mid-commit: the entry stays in the WAL and the
                # next startup recovers it (re-commit is idempotent).  No
                # release/task_done — nothing joins the queue after this.
                raise
            except Exception as exc:
                self.metrics.inc("service.commit.errors")
                if isinstance(exc, (TraceError, ValueError)):
                    # Data error: the bytes themselves are bad and a
                    # retry cannot cure them — discard the entry.
                    self.queue.discarded += 1
                    try:
                        entry.path.unlink()
                    except OSError:
                        pass
                else:
                    # Transient failure (ENOSPC, EMFILE, permission
                    # blip): the upload was durably acked, so its WAL
                    # file stays on disk for the next startup's
                    # recovery to re-commit.
                    self.metrics.inc("service.commit.deferred")
                if entry.future is not None and not entry.future.done():
                    entry.future.set_exception(exc)
            else:
                m = self.metrics
                m.inc("service.commit.runs")
                m.inc("service.commit.segments", result.segments)
                m.inc("service.commit.new_segments", result.new_segments)
                m.inc("service.commit.deduped_segments", result.deduped_segments)
                m.inc("service.commit.events", result.events)
                if entry.future is not None and not entry.future.done():
                    entry.future.set_result(result)
            self.queue.release()
            self.queue.queue.task_done()

    def _record(self, route: str, status: int, seconds: float) -> None:
        m = self.metrics
        m.inc("service.requests")
        m.inc("service.route.%s" % route)
        m.inc("service.status.%d" % status)
        m.observe("service.request_seconds", seconds)
        col = STATE.collector
        if col is not None:
            col.service_request(route, status, seconds)

    # -- dispatch ------------------------------------------------------------

    async def handle(self, request: Request) -> Response:
        """Route one request; never raises (errors become typed JSON)."""
        t0 = time.perf_counter()
        route = "other"
        try:
            route, response = await self._dispatch(request)
        except Exception as exc:  # the transport must never see a raise
            status = _status_for(exc)
            headers = {}
            if isinstance(exc, IngestQueueFull):
                headers["Retry-After"] = "%.3f" % exc.retry_after
            response = _error_response(status, type(exc).__name__, str(exc), headers)
        self._record(route, response.status, time.perf_counter() - t0)
        return response

    async def _dispatch(self, request: Request) -> tuple:
        path = request.path
        if path == "/healthz":
            return "healthz", Response(
                200,
                _json_body(
                    {
                        "ok": True,
                        "queue_depth": self.queue.depth,
                        "queue_capacity": self.queue.capacity,
                    }
                ),
            )
        if path == "/v1/stats":
            return "stats", await self._stats(request)
        if path == "/v1/metrics":
            return "metrics", Response(
                200, _json_body(self.metrics.snapshot(end_time=0.0))
            )
        if path == "/v1/tenants":
            return "tenants", Response(
                200, _json_body({"tenants": self.registry.list_tenants()})
            )
        m = _TENANT_ROUTE.match(path)
        if m is None:
            return "other", _error_response(404, "NotFound", "no route %s" % path)
        tenant, verb = m.group(1), m.group(2)
        if verb == "ingest":
            if request.method != "POST":
                return "ingest", _error_response(
                    405, "MethodNotAllowed", "ingest is POST-only"
                )
            return "ingest", await self._ingest(tenant, request)
        if request.method != "GET":
            return verb, _error_response(
                405, "MethodNotAllowed", "%s is GET-only" % verb
            )
        if verb == "runs":
            return "runs", await self._runs(tenant)
        if verb == "query":
            return "query", await self._query(tenant, request)
        return "dfg", await self._dfg(tenant, request)

    # -- handlers ------------------------------------------------------------

    async def _stats(self, request: Request) -> Response:
        loop = asyncio.get_running_loop()
        stats = await loop.run_in_executor(self.executor, self.registry.stats)
        stats["queue"] = {
            "depth": self.queue.depth,
            "capacity": self.queue.capacity,
            "committed": self.queue.committed,
            "discarded": self.queue.discarded,
        }
        return Response(200, _json_body(stats))

    async def _ingest(self, tenant: str, request: Request) -> Response:
        from repro.service.tenants import validate_tenant_name

        validate_tenant_name(tenant)
        # An accepted upload implies the namespace: create it at accept
        # time so the tenant's reads work as soon as its first ingest is
        # acknowledged, not only once the commit worker lands it.
        self._bank(tenant)
        if len(request.body) > self.max_body_bytes:
            return _error_response(
                413, "BodyTooLarge",
                "body of %d bytes exceeds the %d-byte limit"
                % (len(request.body), self.max_body_bytes),
            )
        loop = asyncio.get_running_loop()
        self.queue.reserve()
        entry: Optional[WalEntry] = None
        try:
            trace = await loop.run_in_executor(
                self.executor, decode_upload, request.body
            )
            rank_raw = request.param("rank")
            try:
                rank = int(rank_raw) if rank_raw is not None else None
            except ValueError:
                raise TraceError("bad rank %r" % rank_raw) from None
            meta = {
                key[len("meta."):]: values[-1]
                for key, values in request.params.items()
                if key.startswith("meta.") and values
            }
            codec = request.param("codec", self.codec) or self.codec
            entry = await loop.run_in_executor(
                self.executor,
                partial(
                    self.queue.write_wal,
                    tenant, request.body, trace, rank, meta, codec,
                ),
            )
        except BaseException:
            self.queue.release()
            raise
        self.metrics.inc("service.wal.appended")
        sync = request.param("sync") in ("1", "true", "yes")
        if sync:
            entry.future = loop.create_future()
        self.queue.queue.put_nowait(entry)
        if not sync:
            return Response(
                202,
                _json_body(
                    {
                        "accepted": entry.entry_id,
                        "tenant": tenant,
                        "queue_depth": self.queue.depth,
                    }
                ),
            )
        result = await entry.future  # typed errors propagate to handle()
        return Response(
            200,
            _json_body(
                {
                    "run_id": result.run_id,
                    "tenant": tenant,
                    "segments": result.segments,
                    "new_segments": result.new_segments,
                    "deduped_segments": result.deduped_segments,
                    "events": result.events,
                    "manifest_new": result.manifest_new,
                }
            ),
        )

    async def _runs(self, tenant: str) -> Response:
        loop = asyncio.get_running_loop()
        bank = self._bank(tenant, create=False)
        manifests = await loop.run_in_executor(self.executor, bank.manifests)
        rows = [
            {
                "run_id": m.run_id,
                "kind": m.meta.get("kind"),
                "framework": m.meta.get("framework"),
                "segments": len(m.segments),
                "n_events": m.n_events,
            }
            for m in manifests
        ]
        return Response(200, _json_body({"tenant": tenant, "runs": rows}))

    async def _query(self, tenant: str, request: Request) -> Response:
        bank = self._bank(tenant, create=False)
        query = query_from_params(request.params)
        loop = asyncio.get_running_loop()
        report = await loop.run_in_executor(
            self.executor, partial(run_query, bank, query, jobs=self.query_jobs)
        )
        return Response(200, _json_body(report))

    async def _dfg(self, tenant: str, request: Request) -> Response:
        bank = self._bank(tenant, create=False)
        params = dict(request.params)
        params["agg"] = ["ops"]  # the DFG reuses the shared filters only
        query = query_from_params(params)
        loop = asyncio.get_running_loop()
        report = await loop.run_in_executor(
            self.executor, partial(build_dfg, bank, query, jobs=self.query_jobs)
        )
        return Response(200, _json_body(report))
