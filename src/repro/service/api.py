"""Transport-independent request handling for the TraceBank service.

:class:`ServiceApp` owns the tenant registry, the bounded write-ahead
ingest queue, its commit workers, and the always-on request metrics; the
HTTP server (:mod:`repro.service.server`) is a thin byte shuffler over
:meth:`ServiceApp.handle`, which makes every route testable without a
socket.

Routes (all responses canonical JSON)::

    GET  /healthz                      liveness + queue depth
    GET  /v1/stats                     service-wide archive stats (dedup)
    GET  /v1/metrics                   request/ingest/commit metrics
    GET  /v1/tenants                   tenant namespace listing
    POST /v1/t/{tenant}/ingest        one trace upload (binary or text
                                       format); 202 on accept, or with
                                       ``?sync=1`` 200 after commit with
                                       the dedup-aware ingest result
    GET  /v1/t/{tenant}/runs          the tenant's archived runs
    GET  /v1/t/{tenant}/query         the store query engine (same params
                                       as ``repro store query``; the body
                                       is byte-identical to its --json)
    GET  /v1/t/{tenant}/dfg           directly-follows graph, ditto

Error contract: every failure is a typed JSON body
``{"error": {"type", "message"}}`` — 400 for malformed queries/bodies/
tenant names, 404 for unknown routes/tenants/runs, 405 for wrong
methods, 413 for oversized bodies (enforced by the server before the
body is read), and 429 + ``Retry-After`` when the ingest queue is full.
Nothing is ever persisted for a rejected request: the WAL entry is
written only after the body fully arrived and decoded.
"""

from __future__ import annotations

import asyncio
import itertools
import re
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from functools import partial
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.errors import (
    IngestQueueFull,
    ReproError,
    ServiceError,
    StoreError,
    StoreNotFound,
    StoreQueryError,
    TenantNameError,
    TraceError,
)
from repro.obs.metrics import MetricsRegistry, canonical_json
from repro.obs.prom import render_prometheus
from repro.obs.reqtrace import (
    RequestTrace,
    RequestTraceLog,
    make_context,
    parse_traceparent,
)
from repro.obs.tracepoints import STATE
from repro.service.ingestq import IngestQueue, WalEntry, decode_upload
from repro.service.tenants import TenantRegistry
from repro.store.bank import TraceBank
from repro.store.dfg import build_dfg
from repro.store.query import Query, run_query

__all__ = ["Request", "Response", "ServiceApp", "query_from_params"]

_TENANT_ROUTE = re.compile(r"^/v1/t/([^/]+)/(ingest|runs|query|dfg)$")


@dataclass
class Request:
    """One parsed HTTP request, transport details already stripped."""

    method: str
    path: str
    params: Dict[str, List[str]] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    #: Server-uptime seconds when the request head arrived, stamped by
    #: the transport; ``handle()`` falls back to its own entry time.
    t_recv: Optional[float] = None
    #: The live :class:`~repro.obs.reqtrace.RequestTrace`, set by
    #: ``handle()``; route handlers add their spans to it.
    trace: Optional[RequestTrace] = None
    #: Span id route handlers parent their spans under.
    handler_span_id: Optional[str] = None

    def param(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """The first value of one query parameter, or ``default``."""
        values = self.params.get(name)
        return values[0] if values else default


@dataclass
class Response:
    """One response: status + canonical-JSON (or text) body."""

    status: int
    body: bytes
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)


def _json_body(obj: Any) -> bytes:
    return (canonical_json(obj) + "\n").encode("utf-8")


def _error_response(status: int, exc_type: str, message: str,
                    headers: Optional[Dict[str, str]] = None) -> Response:
    return Response(
        status=status,
        body=_json_body({"error": {"type": exc_type, "message": message}}),
        headers=dict(headers or {}),
    )


def _status_for(exc: BaseException) -> int:
    if isinstance(exc, IngestQueueFull):
        return 429
    if isinstance(exc, StoreNotFound):
        return 404
    if isinstance(exc, (TenantNameError, TraceError, StoreQueryError)):
        return 400
    if isinstance(exc, StoreError) and "no archived run matches" in str(exc):
        return 404
    if isinstance(exc, ReproError):
        return 400
    return 500


def query_from_params(params: Dict[str, List[str]]) -> Query:
    """Build a :class:`~repro.store.query.Query` from URL query params.

    Mirrors the ``repro store query`` CLI flags one-to-one (``ranks``,
    ``ops``, ``layers``, ``path_glob``, ``since``, ``until``, ``window``,
    ``limit``, ``runs``, ``where.<key>=<value>``, ``agg``) so a service
    answer is byte-identical to the CLI's over the same namespace.
    Values may repeat or be comma-separated.  Raises
    :class:`~repro.errors.StoreQueryError` on malformed values.
    """

    def multi(name: str) -> Optional[List[str]]:
        values: List[str] = []
        for raw in params.get(name, []):
            values.extend(v for v in raw.split(",") if v)
        return values or None

    def scalar_float(name: str) -> Optional[float]:
        raw = params.get(name)
        if not raw:
            return None
        try:
            return float(raw[0])
        except ValueError:
            raise StoreQueryError("bad float for %r: %r" % (name, raw[0])) from None

    where: Dict[str, str] = {}
    for key, values in params.items():
        if key.startswith("where.") and values:
            where[key[len("where."):]] = values[-1]
    ranks_raw = multi("ranks")
    try:
        ranks = [int(r) for r in ranks_raw] if ranks_raw is not None else None
    except ValueError:
        raise StoreQueryError("bad integer in ranks=%r" % (ranks_raw,)) from None
    limit_raw = params.get("limit")
    limit: Optional[int] = None
    if limit_raw:
        try:
            limit = int(limit_raw[0])
        except ValueError:
            raise StoreQueryError("bad integer limit %r" % limit_raw[0]) from None
    window = scalar_float("window")
    return Query.create(
        agg=(params.get("agg") or ["ops"])[0],
        ranks=ranks,
        names=multi("ops"),
        layers=multi("layers"),
        path_glob=(params.get("path_glob") or [None])[0],
        since=scalar_float("since"),
        until=scalar_float("until"),
        where=where,
        runs=multi("runs"),
        window=0.05 if window is None else window,
        limit=limit,
    )


class ServiceApp:
    """The service's brain: tenants + WAL queue + workers + metrics."""

    def __init__(
        self,
        store_root: Union[str, Path],
        queue_capacity: int = 256,
        max_body_bytes: int = 32 << 20,
        query_jobs: int = 1,
        commit_workers: int = 2,
        codec: str = "v1",
        access_log: Optional[Union[str, Path]] = None,
        trace_ring: int = 512,
        slowest_per_route: int = 8,
    ):
        self.registry = TenantRegistry(store_root)
        self.queue = IngestQueue(self.registry.root, capacity=queue_capacity)
        self.max_body_bytes = int(max_body_bytes)
        self.query_jobs = int(query_jobs)
        self.commit_workers = int(commit_workers)
        self.codec = codec
        self.metrics = MetricsRegistry()
        self.traces = RequestTraceLog(
            ring_size=trace_ring, slowest_per_route=slowest_per_route
        )
        # Wall clock: spans and timelines run on monotonic uptime seconds
        # (perf_counter offset); the epoch base is only for access-log
        # timestamps and the fallback trace-id nonce.
        self._started_epoch = time.time()
        self._started_perf = time.perf_counter()
        self._trace_seq = itertools.count()
        self.access_log_path = Path(access_log) if access_log else None
        self._access_fh = None
        self._access_lock = threading.Lock()
        self.access_lines = 0
        if self.access_log_path is not None:
            self.access_log_path.parent.mkdir(parents=True, exist_ok=True)
            self._access_fh = open(self.access_log_path, "a", encoding="utf-8")
        # Decode/WAL/commit/query all share this pool; keep headroom so
        # accept-path hops cannot starve the commit workers.
        self.executor = ThreadPoolExecutor(
            max_workers=max(4, commit_workers + query_jobs + 2),
            thread_name_prefix="repro-service",
        )
        self._banks: Dict[str, TraceBank] = {}
        self._workers: List["asyncio.Task[None]"] = []
        #: Test hook: when set to an :class:`asyncio.Event`, commit
        #: workers park on it before touching the store — lets fault
        #: tests fill the queue deterministically.
        self.commit_gate: Optional[asyncio.Event] = None

    # -- lifecycle -----------------------------------------------------------

    async def startup(self) -> None:
        """Recover the WAL and start the commit workers."""
        loop = asyncio.get_running_loop()
        recovered = await loop.run_in_executor(self.executor, self.queue.recover)
        for entry in recovered:
            # Recovered entries bypass reserve(): they already consumed
            # their slot in a previous life and must drain regardless.
            self.queue._in_flight += 1
            self.queue.queue.put_nowait(entry)
            self.metrics.inc("service.wal.recovered")
        for _ in range(self.commit_workers):
            self._workers.append(asyncio.create_task(self._commit_loop()))

    async def shutdown(self, drain: bool = True) -> None:
        """Stop the workers, optionally committing queued entries first."""
        if drain and self.queue.depth:
            await self.queue.queue.join()
        for task in self._workers:
            task.cancel()
        for task in self._workers:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._workers = []
        self.executor.shutdown(wait=True)
        if self._access_fh is not None:
            self._access_fh.close()
            self._access_fh = None

    def uptime(self) -> float:
        """Wall-clock seconds since this app was constructed (monotonic)."""
        return time.perf_counter() - self._started_perf

    # -- internals -----------------------------------------------------------

    def _bank(self, tenant: str, create: bool = True) -> TraceBank:
        bank = self._banks.get(tenant)
        if bank is None:
            bank = self.registry.bank(tenant, create=create)
            self._banks[tenant] = bank
        return bank

    async def _commit_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            entry: WalEntry = await self.queue.queue.get()
            t_start = self.uptime()
            if entry.trace_id is not None and entry.enqueue_ts is not None:
                self.traces.attach(
                    entry.trace_id, "wal", "wal.queue.wait",
                    entry.enqueue_ts, t_start - entry.enqueue_ts,
                    parent_span_id=entry.parent_span_id,
                )
            try:
                if self.commit_gate is not None:
                    await self.commit_gate.wait()
                bank = self._bank(entry.tenant)
                entry.clock = self.uptime
                result = await loop.run_in_executor(
                    self.executor, self.queue.commit, entry, bank
                )
            except asyncio.CancelledError:
                # Shutdown mid-commit: the entry stays in the WAL and the
                # next startup recovers it (re-commit is idempotent).  No
                # release/task_done — nothing joins the queue after this.
                raise
            except Exception as exc:
                self.metrics.inc("service.commit.errors")
                if isinstance(exc, (TraceError, ValueError)):
                    # Data error: the bytes themselves are bad and a
                    # retry cannot cure them — discard the entry.
                    self.queue.discarded += 1
                    try:
                        entry.path.unlink()
                    except OSError:
                        pass
                else:
                    # Transient failure (ENOSPC, EMFILE, permission
                    # blip): the upload was durably acked, so its WAL
                    # file stays on disk for the next startup's
                    # recovery to re-commit.
                    self.metrics.inc("service.commit.deferred")
                self._commit_spans(entry, t_start, ok=False)
                if entry.future is not None and not entry.future.done():
                    entry.future.set_exception(exc)
            else:
                m = self.metrics
                m.inc("service.commit.runs")
                m.inc("service.commit.segments", result.segments)
                m.inc("service.commit.new_segments", result.new_segments)
                m.inc("service.commit.deduped_segments", result.deduped_segments)
                m.inc("service.commit.events", result.events)
                self._commit_spans(entry, t_start, ok=True, run_id=result.run_id)
                if entry.future is not None and not entry.future.done():
                    entry.future.set_result(result)
            self.queue.release()
            self.metrics.sample(
                "service.queue_depth", self.uptime(), self.queue.depth
            )
            self.queue.queue.task_done()

    def _commit_spans(
        self, entry: WalEntry, t_start: float, ok: bool,
        run_id: Optional[str] = None,
    ) -> None:
        """Attach the async commit/bank spans to the originating trace.

        A no-op once the trace has been evicted from the ring — the span
        chain is complete for every trace the service still serves.
        """
        if entry.trace_id is None:
            return
        commit_sid = self.traces.attach(
            entry.trace_id, "commit", "commit", t_start,
            self.uptime() - t_start,
            parent_span_id=entry.parent_span_id,
            args={"entry_id": entry.entry_id, "ok": ok},
        )
        if (commit_sid is not None and entry.bank_ts is not None
                and entry.bank_dur is not None):
            self.traces.attach(
                entry.trace_id, "bank", "bank.ingest",
                entry.bank_ts, entry.bank_dur,
                parent_span_id=commit_sid,
                args={"run_id": run_id} if run_id else None,
            )

    def _record(self, route: str, tenant: Optional[str], status: int,
                seconds: float) -> None:
        m = self.metrics
        m.inc("service.requests")
        m.inc("service.route.%s" % route)
        m.inc("service.status.%d" % status)
        m.observe("service.request_seconds", seconds)
        m.observe("service.route_seconds{route=%s}" % route, seconds)
        m.observe(
            "service.request_seconds{route=%s,status=%d}" % (route, status),
            seconds,
        )
        if tenant:
            m.observe("service.tenant_seconds{tenant=%s}" % tenant, seconds)
        col = STATE.collector
        if col is not None:
            col.service_request(route, status, seconds)

    def _access(self, request: Request, response: Response,
                rt: RequestTrace) -> None:
        """Write one canonical JSONL access-log line (field order stable).

        ``canonical_json`` sorts keys, so two runs of the same plan emit
        byte-identical field ordering — only the values differ.
        """
        if self._access_fh is None:
            return
        line = canonical_json(
            {
                "bytes_in": len(request.body),
                "bytes_out": len(response.body),
                "method": request.method,
                "path": request.path,
                "queue_depth": rt.queue_depth,
                "route": rt.route,
                "status": rt.status,
                "tenant": rt.tenant,
                "trace_id": rt.trace_id,
                "ts": round(self._started_epoch + self.uptime(), 6),
                "wall_us": rt.wall_us,
            }
        )
        with self._access_lock:
            self._access_fh.write(line + "\n")
            self._access_fh.flush()
            self.access_lines += 1

    # -- dispatch ------------------------------------------------------------

    async def handle(self, request: Request) -> Response:
        """Route one request; never raises (errors become typed JSON).

        Every request gets a trace: the client's ``traceparent`` ids when
        it sent one (the client's span becomes the chain root, so client
        and server spans join by id alone), or fresh server-minted ids
        when it did not.  The finished trace lands in the span ring, one
        access-log line is written, and the per-route/status/tenant
        latency instruments are fed — error paths included.
        """
        t0 = self.uptime()
        t_recv = request.t_recv if request.t_recv is not None else t0
        ctx = parse_traceparent(request.headers.get("traceparent"))
        if ctx is None:
            # No (or malformed) client context: the trail starts here.
            ctx = make_context(
                "repro-service", self._started_epoch, next(self._trace_seq)
            )
        rt = RequestTrace(ctx.trace_id, ctx.span_id)
        rt.queue_depth = self.queue.depth
        request.trace = rt
        # Durations are patched in after dispatch; the ids must exist now
        # so handlers can parent their spans under the handler span.
        http_sid = rt.add("http", "http.request", t_recv, 0.0)
        request.handler_span_id = rt.add(
            "http", "handler", t0, 0.0, parent_span_id=http_sid
        )
        route = "other"
        try:
            route, response = await self._dispatch(request)
        except Exception as exc:  # the transport must never see a raise
            # A raising handler already stamped the matched route on the
            # trace (so a 429'd ingest is still an "ingest", not "other").
            route = rt.route
            status = _status_for(exc)
            headers = {}
            if isinstance(exc, IngestQueueFull):
                headers["Retry-After"] = "%.3f" % exc.retry_after
            response = _error_response(status, type(exc).__name__, str(exc), headers)
        t1 = self.uptime()
        rt.route = route
        rt.status = response.status
        rt.wall_us = max(0, int(round((t1 - t_recv) * 1e6)))
        rt.spans[0]["dur_us"] = rt.wall_us
        rt.spans[1]["name"] = "handler:%s" % route
        rt.spans[1]["dur_us"] = max(0, int(round((t1 - t0) * 1e6)))
        self.traces.finish(rt)
        self._record(route, rt.tenant, response.status, t1 - t_recv)
        self.metrics.sample("service.queue_depth", t1, self.queue.depth)
        self._access(request, response, rt)
        response.headers.setdefault("traceparent", ctx.header())
        return response

    async def _dispatch(self, request: Request) -> tuple:
        path = request.path
        if path == "/healthz":
            return "healthz", Response(
                200,
                _json_body(
                    {
                        "ok": True,
                        "queue_depth": self.queue.depth,
                        "queue_capacity": self.queue.capacity,
                    }
                ),
            )
        if path == "/v1/stats":
            return "stats", await self._stats(request)
        if path == "/v1/metrics":
            # end_time is real server uptime so Timeline.time_weighted_mean
            # (queue depth over the life of the process) is meaningful.
            snap = self.metrics.snapshot(end_time=self.uptime())
            if request.param("format") == "prom":
                return "metrics", Response(
                    200,
                    render_prometheus(snap).encode("utf-8"),
                    content_type="text/plain; version=0.0.4; charset=utf-8",
                )
            return "metrics", Response(200, _json_body(snap))
        if path == "/v1/tenants":
            return "tenants", Response(
                200, _json_body({"tenants": self.registry.list_tenants()})
            )
        if path == "/v1/traces/slowest":
            limit_raw = request.param("limit")
            try:
                limit = int(limit_raw) if limit_raw else None
            except ValueError:
                return "traces", _error_response(
                    400, "BadRequest", "bad limit %r" % limit_raw
                )
            return "traces", Response(
                200,
                _json_body(
                    {
                        "slowest": self.traces.slowest(
                            request.param("route"), limit
                        ),
                        "ring": self.traces.stats(),
                    }
                ),
            )
        if path.startswith("/v1/traces/"):
            trace_id = path[len("/v1/traces/"):]
            found = self.traces.get(trace_id)
            if found is None:
                return "traces", _error_response(
                    404, "NotFound", "no retained trace %s" % trace_id
                )
            return "traces", Response(200, _json_body(found.report()))
        m = _TENANT_ROUTE.match(path)
        if m is None:
            return "other", _error_response(404, "NotFound", "no route %s" % path)
        tenant, verb = m.group(1), m.group(2)
        if request.trace is not None:
            request.trace.tenant = tenant
            request.trace.route = verb
        if verb == "ingest":
            if request.method != "POST":
                return "ingest", _error_response(
                    405, "MethodNotAllowed", "ingest is POST-only"
                )
            return "ingest", await self._ingest(tenant, request)
        if request.method != "GET":
            return verb, _error_response(
                405, "MethodNotAllowed", "%s is GET-only" % verb
            )
        if verb == "runs":
            return "runs", await self._runs(tenant)
        if verb == "query":
            return "query", await self._query(tenant, request)
        return "dfg", await self._dfg(tenant, request)

    # -- handlers ------------------------------------------------------------

    async def _stats(self, request: Request) -> Response:
        loop = asyncio.get_running_loop()
        stats = await loop.run_in_executor(self.executor, self.registry.stats)
        stats["queue"] = {
            "depth": self.queue.depth,
            "capacity": self.queue.capacity,
            "committed": self.queue.committed,
            "discarded": self.queue.discarded,
        }
        stats["traces"] = self.traces.stats()
        stats["uptime_seconds"] = self.uptime()
        return Response(200, _json_body(stats))

    async def _ingest(self, tenant: str, request: Request) -> Response:
        from repro.service.tenants import validate_tenant_name

        validate_tenant_name(tenant)
        # An accepted upload implies the namespace: create it at accept
        # time so the tenant's reads work as soon as its first ingest is
        # acknowledged, not only once the commit worker lands it.
        self._bank(tenant)
        if len(request.body) > self.max_body_bytes:
            return _error_response(
                413, "BodyTooLarge",
                "body of %d bytes exceeds the %d-byte limit"
                % (len(request.body), self.max_body_bytes),
            )
        loop = asyncio.get_running_loop()
        rt = request.trace
        self.queue.reserve()
        entry: Optional[WalEntry] = None
        wal_sid: Optional[str] = None
        try:
            t_dec = self.uptime()
            trace = await loop.run_in_executor(
                self.executor, decode_upload, request.body
            )
            if rt is not None:
                rt.add(
                    "wal", "wal.decode", t_dec, self.uptime() - t_dec,
                    parent_span_id=request.handler_span_id,
                    args={"nbytes": len(request.body)},
                )
            rank_raw = request.param("rank")
            try:
                rank = int(rank_raw) if rank_raw is not None else None
            except ValueError:
                raise TraceError("bad rank %r" % rank_raw) from None
            meta = {
                key[len("meta."):]: values[-1]
                for key, values in request.params.items()
                if key.startswith("meta.") and values
            }
            codec = request.param("codec", self.codec) or self.codec
            t_wal = self.uptime()
            entry = await loop.run_in_executor(
                self.executor,
                partial(
                    self.queue.write_wal,
                    tenant, request.body, trace, rank, meta, codec,
                ),
            )
            if rt is not None:
                wal_sid = rt.add(
                    "wal", "wal.append", t_wal, self.uptime() - t_wal,
                    parent_span_id=request.handler_span_id,
                    args={"entry_id": entry.entry_id},
                )
        except BaseException:
            self.queue.release()
            raise
        if rt is not None:
            # Join points for the commit worker, which runs after the
            # response: it attaches its spans to this trace by id.
            entry.trace_id = rt.trace_id
            entry.parent_span_id = wal_sid
        entry.enqueue_ts = self.uptime()
        self.metrics.inc("service.wal.appended")
        sync = request.param("sync") in ("1", "true", "yes")
        if sync:
            entry.future = loop.create_future()
        self.queue.queue.put_nowait(entry)
        if not sync:
            return Response(
                202,
                _json_body(
                    {
                        "accepted": entry.entry_id,
                        "tenant": tenant,
                        "queue_depth": self.queue.depth,
                    }
                ),
            )
        result = await entry.future  # typed errors propagate to handle()
        return Response(
            200,
            _json_body(
                {
                    "run_id": result.run_id,
                    "tenant": tenant,
                    "segments": result.segments,
                    "new_segments": result.new_segments,
                    "deduped_segments": result.deduped_segments,
                    "events": result.events,
                    "manifest_new": result.manifest_new,
                }
            ),
        )

    async def _runs(self, tenant: str) -> Response:
        loop = asyncio.get_running_loop()
        bank = self._bank(tenant, create=False)
        manifests = await loop.run_in_executor(self.executor, bank.manifests)
        rows = [
            {
                "run_id": m.run_id,
                "kind": m.meta.get("kind"),
                "framework": m.meta.get("framework"),
                "segments": len(m.segments),
                "n_events": m.n_events,
            }
            for m in manifests
        ]
        return Response(200, _json_body({"tenant": tenant, "runs": rows}))

    async def _query(self, tenant: str, request: Request) -> Response:
        bank = self._bank(tenant, create=False)
        query = query_from_params(request.params)
        loop = asyncio.get_running_loop()
        report = await loop.run_in_executor(
            self.executor, partial(run_query, bank, query, jobs=self.query_jobs)
        )
        return Response(200, _json_body(report))

    async def _dfg(self, tenant: str, request: Request) -> Response:
        bank = self._bank(tenant, create=False)
        params = dict(request.params)
        params["agg"] = ["ops"]  # the DFG reuses the shared filters only
        query = query_from_params(params)
        loop = asyncio.get_running_loop()
        report = await loop.run_in_executor(
            self.executor, partial(build_dfg, bank, query, jobs=self.query_jobs)
        )
        return Response(200, _json_body(report))
