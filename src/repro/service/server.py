"""A stdlib-asyncio HTTP/1.1 front end for :class:`ServiceApp`.

No web framework: ``asyncio.start_server`` plus a small, strict HTTP/1.1
reader.  The server supports exactly what the service needs — methods
with ``Content-Length`` bodies, percent-encoded query strings, and
keep-alive — and turns every transport-level defect (malformed request
line, truncated body, client disconnect mid-upload) into a clean
connection close with *nothing* persisted: the WAL entry for an upload
is only written after the full body arrived and decoded.

Oversized uploads are refused before the body is buffered (413 from the
declared ``Content-Length``), so a hostile client cannot balloon memory
past ``capacity x max_body_bytes`` + one rejected header.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional, Tuple
from urllib.parse import unquote, unquote_plus

from repro.service.api import Request, Response, ServiceApp

__all__ = ["ServiceServer", "parse_qs", "serve"]

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}

_MAX_HEADER_BYTES = 16384


def parse_qs(raw: str) -> Dict[str, List[str]]:
    """Decode a query string into a multi-value dict (order-preserving)."""
    params: Dict[str, List[str]] = {}
    for piece in raw.split("&"):
        if not piece:
            continue
        key, sep, value = piece.partition("=")
        params.setdefault(unquote_plus(key), []).append(unquote_plus(value))
    return params


class _BadRequest(Exception):
    def __init__(self, status: int, message: str):
        self.status = status
        self.message = message
        super().__init__(message)


class ServiceServer:
    """One listening socket over one :class:`ServiceApp`."""

    def __init__(
        self,
        app: ServiceApp,
        host: str = "127.0.0.1",
        port: int = 0,
        body_read_timeout: float = 30.0,
    ):
        self.app = app
        self.host = host
        self.port = port
        self.body_read_timeout = float(body_read_timeout)
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> Tuple[str, int]:
        """Recover the WAL, start the workers, bind, return (host, port)."""
        await self.app.startup()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        return self.host, self.port

    async def stop(self, drain: bool = True) -> None:
        """Close the socket and shut the app down (optionally draining)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.app.shutdown(drain=drain)

    async def serve_forever(self) -> None:
        """Serve until cancelled; ``start()`` must have been awaited."""
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    # -- the wire ------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request, keep_alive = await self._read_request(reader)
                except (asyncio.IncompleteReadError, ConnectionError):
                    # Client went away (possibly mid-body).  Nothing was
                    # accepted, so nothing needs cleaning up.
                    return
                except asyncio.TimeoutError:
                    await self._write_error(writer, 408, "body read timed out")
                    return
                except _BadRequest as exc:
                    await self._write_error(writer, exc.status, exc.message)
                    return
                if request is None:
                    return  # clean EOF between requests
                response = await self.app.handle(request)
                try:
                    await self._write_response(writer, response, keep_alive)
                except ConnectionError:
                    return
                if not keep_alive:
                    return
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[Optional[Request], bool]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
            # Request arrival on the app's uptime clock — the trace's
            # http.request span starts here, covering the body read.
            t_recv = self.app.uptime()
        except asyncio.LimitOverrunError:
            raise _BadRequest(400, "request head too large") from None
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None, False  # clean close between requests
            raise
        if len(head) > _MAX_HEADER_BYTES:
            raise _BadRequest(400, "request head too large")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _BadRequest(400, "malformed request line %r" % lines[0][:200])
        method, target, version = parts
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep:
                raise _BadRequest(400, "malformed header line %r" % line[:200])
            headers[name.strip().lower()] = value.strip()
        path, _, raw_query = target.partition("?")
        if "chunked" in headers.get("transfer-encoding", "").lower():
            raise _BadRequest(400, "chunked transfer encoding not supported")
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _BadRequest(400, "bad Content-Length") from None
        if length < 0:
            raise _BadRequest(400, "bad Content-Length")
        if length > self.app.max_body_bytes:
            # Refuse before buffering: the declared size already breaks
            # the contract, so the body is never read.
            raise _BadRequest(
                413,
                "declared body of %d bytes exceeds the %d-byte limit"
                % (length, self.app.max_body_bytes),
            )
        body = b""
        if length:
            body = await asyncio.wait_for(
                reader.readexactly(length), timeout=self.body_read_timeout
            )
        keep_alive = (
            version != "HTTP/1.0"
            and headers.get("connection", "").lower() != "close"
        )
        # Percent-decode the path with unquote (NOT unquote_plus): "+"
        # only means space in query strings, never in path segments.
        request = Request(
            method=method.upper(),
            path=unquote(path),
            params=parse_qs(raw_query),
            headers=headers,
            body=body,
            t_recv=t_recv,
        )
        return request, keep_alive

    async def _write_response(
        self, writer: asyncio.StreamWriter, response: Response, keep_alive: bool
    ) -> None:
        reason = _REASONS.get(response.status, "Unknown")
        head = [
            "HTTP/1.1 %d %s" % (response.status, reason),
            "Content-Type: %s" % response.content_type,
            "Content-Length: %d" % len(response.body),
            "Connection: %s" % ("keep-alive" if keep_alive else "close"),
        ]
        head.extend("%s: %s" % (k, v) for k, v in sorted(response.headers.items()))
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        writer.write(response.body)
        await writer.drain()

    async def _write_error(
        self, writer: asyncio.StreamWriter, status: int, message: str
    ) -> None:
        body = (
            '{"error": {"message": %s, "type": "BadRequest"}}\n'
            % _json_string(message)
        ).encode("utf-8")
        try:
            await self._write_response(
                writer, Response(status, body), keep_alive=False
            )
        except ConnectionError:
            pass


def _json_string(text: str) -> str:
    import json

    return json.dumps(text)


async def _serve_async(
    store_root: str,
    host: str,
    port: int,
    queue_capacity: int,
    max_body_bytes: int,
    query_jobs: int,
    commit_workers: int,
    access_log: Optional[str] = None,
    trace_ring: int = 512,
    slowest_per_route: int = 8,
) -> None:
    app = ServiceApp(
        store_root,
        queue_capacity=queue_capacity,
        max_body_bytes=max_body_bytes,
        query_jobs=query_jobs,
        commit_workers=commit_workers,
        access_log=access_log,
        trace_ring=trace_ring,
        slowest_per_route=slowest_per_route,
    )
    server = ServiceServer(app, host=host, port=port)
    bound_host, bound_port = await server.start()
    print("repro service listening on http://%s:%d" % (bound_host, bound_port), flush=True)
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.stop()


def serve(
    store_root: str,
    host: str = "127.0.0.1",
    port: int = 8080,
    queue_capacity: int = 256,
    max_body_bytes: int = 32 << 20,
    query_jobs: int = 1,
    commit_workers: int = 2,
    access_log: Optional[str] = None,
    trace_ring: int = 512,
    slowest_per_route: int = 8,
) -> None:
    """Blocking entry point for ``repro service serve``."""
    try:
        asyncio.run(
            _serve_async(
                store_root,
                host,
                port,
                queue_capacity,
                max_body_bytes,
                query_jobs,
                commit_workers,
                access_log=access_log,
                trace_ring=trace_ring,
                slowest_per_route=slowest_per_route,
            )
        )
    except KeyboardInterrupt:
        pass
