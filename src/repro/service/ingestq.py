"""The bounded write-ahead ingest queue (WAL) with explicit backpressure.

Streaming ingest must survive two things a direct ``ingest_bundle`` call
does not: a crash between "client got 202" and "segments on disk", and a
thundering herd of producers.  The queue answers both:

* **Durability** — every accepted upload is first landed as one WAL
  entry (``wal/<seq>.wal``: a JSON header line + the raw upload bytes,
  written atomically) *before* the request is acknowledged.  The commit
  workers then run the idempotent :meth:`TraceBank.ingest_bundle` dedup
  path and unlink the entry; a crash replays surviving entries on the
  next startup (re-committing one is harmless — ingest is idempotent).
* **Backpressure** — at most ``capacity`` entries may be in flight
  (queued or committing).  ``reserve()`` beyond that raises
  :class:`~repro.errors.IngestQueueFull`, which the HTTP layer maps to
  ``429 Too Many Requests`` + ``Retry-After`` — memory and WAL disk are
  bounded by ``capacity × max_body_bytes``, never by client count.

Entries that fail commit with a *data* error (undecodable bytes that
somehow reached the queue, e.g. a WAL file corrupted on disk between
restarts) are discarded — unlinked and counted — not retried forever.
A *transient* commit failure (``OSError`` such as ENOSPC/EMFILE, or any
other non-data exception) must NOT discard: the entry was durably
acked, so its WAL file stays on disk and the next startup's recovery
re-commits it.  The store itself stays verifiable throughout because
nothing touches ``segments/``/``manifests/`` except the atomic-write
ingest path.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.errors import IngestQueueFull, ServiceError, TraceError
from repro.store.bank import IngestResult, _atomic_write_bytes
from repro.trace import binary_format, text_format
from repro.trace.records import TraceBundle, TraceFile

__all__ = ["WAL_SCHEMA", "WalEntry", "IngestQueue", "decode_upload"]

#: Versioned WAL header schema; recovery discards anything else.
WAL_SCHEMA = "repro/service/wal/v1"


def decode_upload(body: bytes) -> TraceFile:
    """Decode one uploaded trace body (binary or text format).

    Raises :class:`~repro.errors.TraceError` subclasses on truncated or
    corrupt bytes — the HTTP layer's typed-4xx contract.  An empty body
    is rejected here too (an aborted client must not become an empty
    run).
    """
    if not body:
        raise TraceError("empty upload body")
    if body[: len(binary_format.MAGIC)] == binary_format.MAGIC:
        return binary_format.decode_trace_file(body)
    try:
        text = body.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise TraceError("upload is neither binary-trace nor UTF-8: %s" % exc) from None
    return text_format.decode_trace_file(text)


@dataclass
class WalEntry:
    """One accepted-but-not-yet-committed upload."""

    entry_id: str
    tenant: str
    rank: Optional[int]
    meta: Dict[str, str]
    codec: str
    path: Path
    nbytes: int
    #: Decoded at accept time (fresh uploads) or at recovery; commit
    #: re-uses it so the body is only parsed once per process.
    trace: Optional[TraceFile] = None
    #: Resolved with the :class:`IngestResult` (or exception) for
    #: ``?sync=1`` requests that wait for their commit.
    future: Optional["asyncio.Future[IngestResult]"] = field(
        default=None, repr=False
    )
    #: Trace-context join points, set at accept time so the commit
    #: worker can attach its spans to the originating request's trace
    #: (recovered entries have none — their request is long gone).
    trace_id: Optional[str] = None
    parent_span_id: Optional[str] = None
    enqueue_ts: Optional[float] = None
    #: Zero-arg seconds callable (the app's uptime clock); when set,
    #: :meth:`IngestQueue.commit` stamps the ``bank.ingest_bundle``
    #: interval below so the commit worker can emit the bank span.
    clock: Optional[Any] = field(default=None, repr=False)
    bank_ts: Optional[float] = None
    bank_dur: Optional[float] = None


class IngestQueue:
    """Bounded WAL-backed ingest queue (see module docstring).

    ``reserve()``/``release()`` bound the in-flight count; the asyncio
    queue between the HTTP handlers and the commit workers never holds
    more than ``capacity`` entries.  All methods are meant to be called
    from the server's event-loop thread except :meth:`write_wal` and
    :meth:`commit`, which block on file I/O and belong in an executor.
    """

    def __init__(
        self,
        root: Union[str, Path],
        capacity: int = 256,
        retry_after: float = 0.25,
    ):
        if capacity < 1:
            raise ServiceError("ingest queue capacity must be >= 1")
        self.wal_dir = Path(root) / "wal"
        self.wal_dir.mkdir(parents=True, exist_ok=True)
        self.capacity = int(capacity)
        self.retry_after = float(retry_after)
        self.queue: "asyncio.Queue[WalEntry]" = asyncio.Queue()
        self._in_flight = 0
        #: ``write_wal`` runs in executor threads (one per concurrent
        #: upload), so sequence allocation must be synchronized: two
        #: uploads drawing the same seq would share a WAL path and the
        #: second atomic write would silently overwrite the first
        #: durably-acked entry.
        self._seq_lock = threading.Lock()
        self._seq = self._next_seq_start()
        self.committed = 0
        self.discarded = 0

    def _next_seq_start(self) -> int:
        highest = -1
        for p in self.wal_dir.glob("*.wal"):
            try:
                highest = max(highest, int(p.stem.split("-", 1)[0]))
            except ValueError:
                continue
        return highest + 1

    # -- backpressure --------------------------------------------------------

    @property
    def depth(self) -> int:
        """Entries currently in flight (accepted, not yet committed)."""
        return self._in_flight

    def reserve(self) -> None:
        """Claim one in-flight slot or raise :class:`IngestQueueFull`."""
        if self._in_flight >= self.capacity:
            raise IngestQueueFull(self._in_flight, self.capacity, self.retry_after)
        self._in_flight += 1

    def release(self) -> None:
        """Return one slot (commit finished or accept failed mid-way)."""
        self._in_flight = max(0, self._in_flight - 1)

    # -- accept path ---------------------------------------------------------

    def write_wal(
        self,
        tenant: str,
        body: bytes,
        trace: TraceFile,
        rank: Optional[int],
        meta: Dict[str, str],
        codec: str,
    ) -> WalEntry:
        """Durably land one accepted upload as a WAL entry (blocking I/O).

        The caller must hold a reservation.  The entry file is written
        atomically, so a crash leaves either a complete entry or nothing.
        """
        with self._seq_lock:
            seq = self._seq
            self._seq += 1
        entry_id = "%08d-%s" % (seq, tenant)
        path = self.wal_dir / (entry_id + ".wal")
        if path.exists():
            raise ServiceError(
                "WAL entry %s already exists; refusing to overwrite a "
                "durably-acked upload" % path.name
            )
        header = {
            "schema": WAL_SCHEMA,
            "tenant": tenant,
            "rank": rank,
            "meta": dict(meta),
            "codec": codec,
            "nbytes": len(body),
            "sha256": hashlib.sha256(body).hexdigest(),
        }
        blob = json.dumps(header, sort_keys=True).encode("utf-8") + b"\n" + body
        _atomic_write_bytes(path, blob)
        return WalEntry(
            entry_id=entry_id,
            tenant=tenant,
            rank=rank,
            meta=dict(meta),
            codec=codec,
            path=path,
            nbytes=len(body),
            trace=trace,
        )

    # -- recovery ------------------------------------------------------------

    def recover(self) -> List[WalEntry]:
        """Replay WAL entries surviving a previous process (blocking I/O).

        Complete, decodable entries come back ready to enqueue; torn or
        corrupt ones (bad schema, checksum mismatch, undecodable body)
        are discarded on the spot — they never reached a 202 whose data
        the client believes safe, or their bytes rotted and re-upload is
        the only cure.
        """
        entries: List[WalEntry] = []
        for path in sorted(self.wal_dir.glob("*.wal")):
            try:
                blob = path.read_bytes()
                head, sep, body = blob.partition(b"\n")
                header = json.loads(head.decode("utf-8"))
                if (
                    not sep
                    or not isinstance(header, dict)
                    or header.get("schema") != WAL_SCHEMA
                    or len(body) != int(header["nbytes"])
                    or hashlib.sha256(body).hexdigest() != header["sha256"]
                ):
                    raise ValueError("torn or corrupt WAL entry")
                trace = decode_upload(body)
            except (OSError, ValueError, KeyError, TypeError, TraceError):
                self.discarded += 1
                try:
                    path.unlink()
                except OSError:
                    pass
                continue
            entries.append(
                WalEntry(
                    entry_id=path.stem,
                    tenant=str(header["tenant"]),
                    rank=(None if header.get("rank") is None else int(header["rank"])),
                    meta={str(k): str(v) for k, v in dict(header.get("meta") or {}).items()},
                    codec=str(header.get("codec") or "v1"),
                    path=path,
                    nbytes=len(body),
                    trace=trace,
                )
            )
        return entries

    # -- commit path ---------------------------------------------------------

    def commit(self, entry: WalEntry, bank) -> IngestResult:
        """Idempotently archive one entry and retire its WAL file.

        Blocking (hashing + file I/O); run in an executor.  The WAL file
        is unlinked only after the manifest is durably in place — the
        crash window re-commits, never loses.
        """
        clock = entry.clock
        trace = entry.trace
        if trace is None:  # pragma: no cover - recovery always decodes
            raise ServiceError("WAL entry %s lost its decoded trace" % entry.entry_id)
        rank = entry.rank
        if rank is None:
            rank = trace.rank if trace.rank is not None else 0
        bundle = TraceBundle(files={int(rank): trace})
        if trace.framework:
            bundle.metadata.setdefault("framework", trace.framework)
        meta: Dict[str, Any] = {"kind": "service"}
        meta.update(entry.meta)
        if clock is not None:
            entry.bank_ts = clock()
        result = bank.ingest_bundle(bundle, meta=meta, codec=entry.codec)
        if clock is not None and entry.bank_ts is not None:
            entry.bank_dur = clock() - entry.bank_ts
        try:
            entry.path.unlink()
        except OSError:
            pass
        self.committed += 1
        return result
