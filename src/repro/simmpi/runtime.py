"""mpirun-style job launcher for the simulated cluster.

A *workload* is a generator function ``app(mpi, args)`` taking an
:class:`~repro.simmpi.comm.MPIRank` handle and an argument mapping.
:func:`mpirun` places one rank per node (round-robin when ranks exceed
nodes), wires up the communicator, runs every rank to completion, and
reports per-rank results plus the job's elapsed *true* time — the quantity
the paper's "elapsed time overhead" formula needs.

Tracing frameworks hook in through ``setup``/``teardown`` callbacks, which
receive each rank's :class:`~repro.simos.process.SimProcess` before the
application starts / after it ends — the moral equivalent of wrapping the
launch line with ``strace`` or pointing ``LD_PRELOAD`` at an interposition
library.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional

from repro.cluster.cluster import Cluster
from repro.errors import DeadlockError, MPIError, SimTimeoutError
from repro.simfs.vfs import VFS
from repro.simmpi.comm import Communicator, MPIRank
from repro.simos.process import SimProcess

__all__ = ["JobResult", "mpirun"]

AppFn = Callable[[MPIRank, Dict[str, Any]], Generator[Any, Any, Any]]
SetupFn = Callable[[int, SimProcess, MPIRank], None]


@dataclass
class JobResult:
    """Outcome of one simulated MPI job."""

    results: List[Any]
    start_time: float
    end_time: float
    rank_end_times: List[float] = field(default_factory=list)
    procs: List[SimProcess] = field(repr=False, default_factory=list)
    ranks: List[MPIRank] = field(repr=False, default_factory=list)
    comm: Optional[Communicator] = field(repr=False, default=None)
    #: The rank bodies' kernel processes, in rank order — the chaos harness
    #: inspects their completions to classify how a faulted job ended.
    des_processes: List[Any] = field(repr=False, default_factory=list)

    @property
    def elapsed(self) -> float:
        """True simulated wall-clock of the job (the ``time``-utility view)."""
        return self.end_time - self.start_time

    @property
    def nprocs(self) -> int:
        return len(self.results)


def mpirun(
    cluster: Cluster,
    vfs: VFS,
    app: AppFn,
    nprocs: Optional[int] = None,
    args: Optional[Dict[str, Any]] = None,
    uid: int = 1000,
    user: str = "jdoe",
    setup: Optional[SetupFn] = None,
    teardown: Optional[SetupFn] = None,
    base_pid: int = 10000,
    run: bool = True,
    horizon: Optional[float] = None,
) -> JobResult:
    """Launch ``app`` on ``nprocs`` ranks and (by default) run to completion.

    Parameters mirror a batch launch: the cluster and mounted VFS are the
    machine, ``app`` is the executable, ``args`` its argv.  ``setup`` and
    ``teardown`` are tracing-framework attach points.  With ``run=False``
    the job is spawned but the caller drives ``cluster.sim.run()`` itself
    (used to co-schedule competing jobs).

    ``horizon`` bounds the run in *simulated* seconds from job start: if
    ranks are still running when it expires, :class:`SimTimeoutError`
    names them instead of the drain continuing indefinitely — the retry
    signal the chaos harness's exponential-backoff policy consumes.
    """
    n = nprocs if nprocs is not None else len(cluster.nodes)
    if n < 1:
        raise MPIError("nprocs must be >= 1")
    args = dict(args or {})
    sim = cluster.sim
    comm = Communicator(sim, cluster.network, n)

    procs: List[SimProcess] = []
    ranks: List[MPIRank] = []
    for r in range(n):
        node = cluster.nodes[r % len(cluster.nodes)]
        proc = SimProcess(
            sim, node, vfs, pid=base_pid + r, uid=uid, user=user, rank=r
        )
        procs.append(proc)
        ranks.append(MPIRank(comm, r, proc))

    if setup is not None:
        for r in range(n):
            setup(r, procs[r], ranks[r])

    start_time = sim.now
    end_times: List[float] = [start_time] * n
    results: List[Any] = [None] * n

    def rank_body(r: int):
        value = yield from app(ranks[r], args)
        results[r] = value
        end_times[r] = sim.now

    spawned = [sim.spawn(rank_body(r), name="rank%d" % r) for r in range(n)]

    # With a fault plane installed, register each rank's kernel process so
    # scheduled node crashes interrupt exactly the ranks placed there.
    plane = getattr(sim, "fault_plane", None)
    if plane is not None:
        for r in range(n):
            plane.track_rank(procs[r].node.index, spawned[r], r)

    result = JobResult(
        results=results,
        start_time=start_time,
        end_time=start_time,
        rank_end_times=end_times,
        procs=procs,
        ranks=ranks,
        comm=comm,
        des_processes=spawned,
    )
    if not run:
        return result

    try:
        # Whole-job drains are the simulator's hot loop; run_fast dispatches
        # the identical event history with the per-event backwards-time
        # check dropped after its warm-up window.
        sim.run_fast(until=(start_time + horizon) if horizon is not None else None)
    except DeadlockError:
        # A dead rank leaves peers blocked in collectives/recvs; the root
        # cause is the rank's own exception — surface that, not the
        # secondary deadlock.
        for proc in spawned:
            if proc.completion.done and proc.completion.exception is not None:
                raise proc.completion.exception from None
        raise
    for r, proc in enumerate(spawned):
        if proc.completion.exception is not None:
            raise proc.completion.exception
    if horizon is not None:
        pending = [r for r, proc in enumerate(spawned) if proc.alive]
        if pending:
            raise SimTimeoutError(horizon, pending)
    result.end_time = max(end_times)

    if teardown is not None:
        for r in range(n):
            teardown(r, procs[r], ranks[r])
    return result
