"""Simulated MPI runtime.

A deliberately small MPI modelled on the mpi4py API (the idioms of the
HPC-parallel guides): communicators with ``send``/``recv``/``barrier``/
``bcast``/``gather``/``reduce``, and MPI-IO files with
``write_at``/``read_at`` over the simulated storage stack.

MPI functions are *library calls*: they dispatch through each rank's
:class:`~repro.simos.process.SimProcess` library seam, so an attached
ltrace-style interposer (LANL-Trace in ltrace mode, //TRACE) sees
``MPI_Barrier``, ``MPI_File_open``, ... while the syscalls they make
underneath (``SYS_open``, ``SYS_write``...) appear at the syscall seam —
reproducing the two-level capture visible in the paper's Figure 1.
"""

from repro.simmpi.comm import ANY_SOURCE, ANY_TAG, Communicator, MPIRank
from repro.simmpi.mpiio import MPIFile, MPI_MODE_CREATE, MPI_MODE_RDONLY, MPI_MODE_WRONLY, MPI_MODE_RDWR
from repro.simmpi.runtime import JobResult, mpirun

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Communicator",
    "MPIRank",
    "MPIFile",
    "MPI_MODE_CREATE",
    "MPI_MODE_RDONLY",
    "MPI_MODE_WRONLY",
    "MPI_MODE_RDWR",
    "JobResult",
    "mpirun",
]
