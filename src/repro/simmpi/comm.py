"""Communicators, point-to-point messaging, and collectives.

Point-to-point uses eager delivery: ``send`` charges the sender's NIC and
the fabric for the payload, then deposits the message in the receiver's
mailbox; ``recv`` blocks until a matching ``(source, tag)`` message exists.

Collectives synchronize through shared per-call-index state (every rank's
N-th collective joins the same instance — mismatched names raise
:class:`~repro.errors.CollectiveMismatch`, modelling the real-world hang a
mismatched collective causes, but loudly).  Their time cost is the
classic logarithmic tree: ``ceil(log2(size))`` network latencies, charged
once all ranks have arrived.

Every MPI function is dispatched through the calling process's *library*
seam so ltrace-level tracers observe it.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from repro.des.events import Completion
from repro.errors import CollectiveMismatch, RankError
from repro.obs.tracepoints import STATE as _TELEMETRY
from repro.simos.process import SimProcess

__all__ = ["ANY_SOURCE", "ANY_TAG", "Communicator", "MPIRank"]

ANY_SOURCE = -1
ANY_TAG = -1

#: nominal bytes a python object payload occupies on the wire when the
#: caller does not say (pickle-ish small-object cost)
_DEFAULT_PAYLOAD = 256


class _Mailbox:
    """Per-rank incoming message queue with (source, tag) matching."""

    def __init__(self) -> None:
        self.messages: List[Tuple[int, int, Any]] = []
        self.waiters: List[Tuple[int, int, Completion]] = []

    def deliver(self, source: int, tag: int, payload: Any) -> None:
        for i, (want_src, want_tag, comp) in enumerate(self.waiters):
            if want_src in (ANY_SOURCE, source) and want_tag in (ANY_TAG, tag):
                del self.waiters[i]
                comp.succeed((source, tag, payload))
                return
        self.messages.append((source, tag, payload))

    def request(self, sim: Any, source: int, tag: int) -> Completion:
        for i, (msg_src, msg_tag, payload) in enumerate(self.messages):
            if source in (ANY_SOURCE, msg_src) and tag in (ANY_TAG, msg_tag):
                del self.messages[i]
                comp = Completion(sim, name="recv-ready")
                comp.succeed((msg_src, msg_tag, payload))
                return comp
        comp = Completion(sim, name="recv-wait")
        self.waiters.append((source, tag, comp))
        return comp


class _Collective:
    """Shared state of one collective call instance."""

    def __init__(self, sim: Any, name: str, size: int):
        self.name = name
        self.size = size
        self.arrived = 0
        self.values: Dict[int, Any] = {}
        self.root: Optional[int] = None
        self.release = Completion(sim, name="collective:%s" % name)


class Communicator:
    """Shared state of an MPI_COMM_WORLD-like communicator."""

    def __init__(self, sim: Any, network: Any, size: int):
        if size < 1:
            raise RankError("communicator size must be >= 1")
        self.sim = sim
        self.network = network
        self.size = size
        self.mailboxes = [_Mailbox() for _ in range(size)]
        # per-rank count of collective calls made, and the shared instances
        self._collective_seq = [0] * size
        self._collectives: Dict[int, _Collective] = {}
        self.messages_sent = 0

    def check_rank(self, rank: int) -> None:
        """Raise :class:`RankError` unless ``rank`` is in this communicator."""
        if not (0 <= rank < self.size):
            raise RankError("rank %d out of range [0, %d)" % (rank, self.size))

    # -- collectives ------------------------------------------------------------

    def _tree_latency(self) -> float:
        hops = max(1, math.ceil(math.log2(max(2, self.size))))
        return hops * self.network.config.latency

    def join_collective(
        self, rank: int, name: str, value: Any = None, root: Optional[int] = None
    ) -> Tuple[_Collective, bool]:
        """Register ``rank``'s arrival at its next collective.

        Returns ``(instance, is_last)``.  Raises
        :class:`CollectiveMismatch` if this rank's call disagrees with the
        instance already in flight.
        """
        index = self._collective_seq[rank]
        self._collective_seq[rank] += 1
        inst = self._collectives.get(index)
        if inst is None:
            inst = self._collectives[index] = _Collective(self.sim, name, self.size)
            inst.root = root
        else:
            if inst.name != name:
                raise CollectiveMismatch(
                    "rank %d called %s while others called %s" % (rank, name, inst.name)
                )
            if root is not None and inst.root is not None and inst.root != root:
                raise CollectiveMismatch(
                    "rank %d used root %d; others used %d" % (rank, root, inst.root)
                )
            if inst.root is None:
                inst.root = root
        inst.values[rank] = value
        inst.arrived += 1
        is_last = inst.arrived == self.size
        if is_last:
            del self._collectives[index]
        return inst, is_last


class MPIRank:
    """One rank's MPI handle: the API workloads program against.

    Bundles the communicator, this rank's number, and the underlying
    :class:`~repro.simos.process.SimProcess` whose seams tracers attach to.
    All methods are generators (``yield from`` them).
    """

    def __init__(self, comm: Communicator, rank: int, proc: SimProcess):
        comm.check_rank(rank)
        self.comm = comm
        self.rank = rank
        self.proc = proc
        self.sim = comm.sim

    @property
    def size(self) -> int:
        return self.comm.size

    # -- non-communication queries -----------------------------------------------

    def wtime(self) -> float:
        """MPI_Wtime: the *local* node clock, skew, drift and all."""
        return self.proc.node.now_local()

    def get_rank(self) -> Generator[Any, Any, int]:
        """MPI_Comm_rank as a traced library call."""

        def body():
            yield 0
            return self.rank

        return self.proc._libcall("MPI_Comm_rank", ("MPI_COMM_WORLD",), body())

    def get_size(self) -> Generator[Any, Any, int]:
        """MPI_Comm_size as a traced library call."""

        def body():
            yield 0
            return self.comm.size

        return self.proc._libcall("MPI_Comm_size", ("MPI_COMM_WORLD",), body())

    # -- point-to-point --------------------------------------------------------------

    def send(
        self, dest: int, obj: Any, tag: int = 0, nbytes: Optional[int] = None
    ) -> Generator[Any, Any, None]:
        """MPI_Send: eager buffered send of a python object."""
        self.comm.check_rank(dest)
        payload_bytes = _DEFAULT_PAYLOAD if nbytes is None else nbytes

        def body():
            col = _TELEMETRY.collector
            if col is not None:
                col.mpi_message(payload_bytes)
            yield from self.comm.network.transfer(self.proc.node.nic, payload_bytes)
            self.comm.mailboxes[dest].deliver(self.rank, tag, obj)
            self.comm.messages_sent += 1
            return None

        return self.proc._libcall(
            "MPI_Send", (dest, tag, payload_bytes), body(),
            nbytes=payload_bytes, trace_result=0,
        )

    def recv(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> Generator[Any, Any, Any]:
        """MPI_Recv: blocks until a matching message arrives; returns the object."""
        if source != ANY_SOURCE:
            self.comm.check_rank(source)

        def body():
            src, t, payload = yield self.comm.mailboxes[self.rank].request(
                self.sim, source, tag
            )
            return payload

        return self.proc._libcall("MPI_Recv", (source, tag), body(), trace_result=0)

    # -- collectives --------------------------------------------------------------------

    def _collective_body(
        self,
        name: str,
        value: Any,
        root: Optional[int],
        extract: Callable[[_Collective], Any],
        payload_bytes: int = _DEFAULT_PAYLOAD,
    ):
        def body():
            col = _TELEMETRY.collector
            t0 = self.sim.now if col is not None else 0.0
            inst, is_last = self.comm.join_collective(self.rank, name, value, root)
            if is_last:
                # The last arriver pays the tree propagation, then frees all.
                yield self.comm._tree_latency()
                if payload_bytes > 0:
                    yield from self.comm.network.transfer(
                        self.proc.node.nic, payload_bytes
                    )
                inst.release.succeed(None)
            else:
                yield inst.release
            if col is not None:
                col.mpi_collective(
                    name,
                    self.proc.node.index,
                    self.rank,
                    t0,
                    self.sim.now - t0,
                )
            return extract(inst)

        return body()

    def barrier(self) -> Generator[Any, Any, None]:
        """MPI_Barrier."""
        return self.proc._libcall(
            "MPI_Barrier",
            ("MPI_COMM_WORLD",),
            self._collective_body("barrier", None, None, lambda inst: None, 0),
            trace_result=0,
        )

    def bcast(self, obj: Any, root: int = 0) -> Generator[Any, Any, Any]:
        """MPI_Bcast: every rank returns the root's object."""
        self.comm.check_rank(root)
        return self.proc._libcall(
            "MPI_Bcast",
            (root,),
            self._collective_body(
                "bcast", obj, root, lambda inst: inst.values[inst.root]
            ),
            trace_result=0,
        )

    def gather(self, obj: Any, root: int = 0) -> Generator[Any, Any, Optional[List[Any]]]:
        """MPI_Gather: root returns the rank-ordered list, others None."""
        self.comm.check_rank(root)
        me = self.rank
        return self.proc._libcall(
            "MPI_Gather",
            (root,),
            self._collective_body(
                "gather",
                obj,
                root,
                lambda inst: [inst.values[r] for r in range(inst.size)]
                if me == inst.root
                else None,
            ),
            trace_result=0,
        )

    def allgather(self, obj: Any) -> Generator[Any, Any, List[Any]]:
        """MPI_Allgather: every rank returns the rank-ordered list."""
        return self.proc._libcall(
            "MPI_Allgather",
            (),
            self._collective_body(
                "allgather",
                obj,
                None,
                lambda inst: [inst.values[r] for r in range(inst.size)],
            ),
            trace_result=0,
        )

    def reduce(
        self, value: Any, op: Callable[[Any, Any], Any] = lambda a, b: a + b, root: int = 0
    ) -> Generator[Any, Any, Any]:
        """MPI_Reduce: root returns the fold of all values, others None."""
        self.comm.check_rank(root)
        me = self.rank

        def fold(inst: _Collective) -> Any:
            if me != inst.root:
                return None
            acc = inst.values[0]
            for r in range(1, inst.size):
                acc = op(acc, inst.values[r])
            return acc

        return self.proc._libcall(
            "MPI_Reduce", (root,),
            self._collective_body("reduce", value, root, fold),
            trace_result=0,
        )

    def allreduce(
        self, value: Any, op: Callable[[Any, Any], Any] = lambda a, b: a + b
    ) -> Generator[Any, Any, Any]:
        """MPI_Allreduce: every rank returns the fold of all values."""

        def fold(inst: _Collective) -> Any:
            acc = inst.values[0]
            for r in range(1, inst.size):
                acc = op(acc, inst.values[r])
            return acc

        return self.proc._libcall(
            "MPI_Allreduce", (),
            self._collective_body("allreduce", value, None, fold),
            trace_result=0,
        )

    def scatter(self, objs: Optional[List[Any]], root: int = 0) -> Generator[Any, Any, Any]:
        """MPI_Scatter: rank i returns root's ``objs[i]``."""
        self.comm.check_rank(root)
        me = self.rank

        def extract(inst: _Collective) -> Any:
            seq = inst.values[inst.root]
            if seq is None or len(seq) != inst.size:
                raise RankError("scatter root must supply one object per rank")
            return seq[me]

        return self.proc._libcall(
            "MPI_Scatter", (root,),
            self._collective_body("scatter", objs, root, extract),
            trace_result=0,
        )
