"""MPI-IO: file access through the MPI library.

``MPI_File_*`` functions are library calls whose bodies issue ordinary
syscalls — exactly the two-level structure visible in the paper's Figure 1
raw trace, where one ``MPI_File_open(...)`` line is followed by the
``SYS_statfs64`` / ``SYS_open`` / ``SYS_fcntl64`` calls the library makes
underneath.  An ltrace-level tracer records both layers; an strace-level
tracer records only the ``SYS_*`` lines.

``write_at`` is implemented as seek+write (two syscalls), matching the
ADIO/UFS driver of the paper's mpich 1.2.6 era and giving the "constant
number of traced events ... for each block" that drives LANL-Trace's
overhead curve.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.errors import InvalidArgument, ReplayError
from repro.simfs.vfs import O_CREAT, O_RDONLY, O_RDWR, O_WRONLY
from repro.simmpi.comm import MPIRank
from repro.simos.process import SEEK_SET

__all__ = [
    "MPIFile",
    "MPI_MODE_CREATE",
    "MPI_MODE_RDONLY",
    "MPI_MODE_WRONLY",
    "MPI_MODE_RDWR",
    "Request",
]

# Real MPI-2 constants.
MPI_MODE_CREATE = 1
MPI_MODE_RDONLY = 2
MPI_MODE_WRONLY = 4
MPI_MODE_RDWR = 8


def _amode_to_flags(amode: int) -> int:
    if amode & MPI_MODE_RDWR:
        flags = O_RDWR
    elif amode & MPI_MODE_WRONLY:
        flags = O_WRONLY
    elif amode & MPI_MODE_RDONLY:
        flags = O_RDONLY
    else:
        raise InvalidArgument("amode must include an access mode")
    if amode & MPI_MODE_CREATE:
        flags |= O_CREAT
    return flags


class Request:
    """A nonblocking I/O request (returned by ``iwrite_at``)."""

    def __init__(self, completion: Any):
        self.completion = completion

    @property
    def done(self) -> bool:
        return self.completion.done


class MPIFile:
    """An open MPI-IO file for one rank."""

    def __init__(self, mpi: MPIRank, fd: int, path: str, collective: bool):
        self.mpi = mpi
        self.fd = fd
        self.path = path
        self.collective = collective
        self.closed = False

    # -- lifecycle ------------------------------------------------------------

    @classmethod
    def open(
        cls,
        mpi: MPIRank,
        path: str,
        amode: int = MPI_MODE_WRONLY | MPI_MODE_CREATE,
        collective: bool = True,
    ) -> Generator[Any, Any, "MPIFile"]:
        """MPI_File_open.  ``collective=True`` synchronizes all ranks of the
        communicator (shared-file N-to-1 use); ``collective=False`` opens
        independently (COMM_SELF-style, for N-to-N private files)."""
        proc = mpi.proc
        flags = _amode_to_flags(amode)

        def body():
            # The library probes the file system, then opens, then fcntls —
            # the Figure 1 syscall sequence.
            yield from proc.statfs(path)
            fd = yield from proc.open(path, flags, 0o664)
            yield from proc.fcntl(fd, 1, 0)
            if collective:
                inst, is_last = mpi.comm.join_collective(mpi.rank, "File_open", None, None)
                if is_last:
                    yield mpi.comm._tree_latency()
                    inst.release.succeed(None)
                else:
                    yield inst.release
            return fd

        fd = yield from proc._libcall(
            "MPI_File_open",
            ("MPI_COMM_WORLD" if collective else "MPI_COMM_SELF", path, amode),
            body(),
            path=path,
        )
        return cls(mpi, fd, path, collective)

    def close(self) -> Generator[Any, Any, None]:
        """MPI_File_close (collective if the open was)."""
        proc = self.mpi.proc
        mpi = self.mpi

        def body():
            yield from proc.close(self.fd)
            if self.collective:
                inst, is_last = mpi.comm.join_collective(mpi.rank, "File_close", None, None)
                if is_last:
                    yield mpi.comm._tree_latency()
                    inst.release.succeed(None)
                else:
                    yield inst.release
            return 0

        yield from proc._libcall("MPI_File_close", (self.path,), body(), path=self.path)
        self.closed = True

    def _check_open(self) -> None:
        if self.closed:
            raise ReplayError("MPI file %s used after close" % self.path)

    # -- data access --------------------------------------------------------------

    def write_at(self, offset: int, nbytes: int) -> Generator[Any, Any, int]:
        """MPI_File_write_at: explicit-offset write (seek + write)."""
        self._check_open()
        proc = self.mpi.proc

        def body():
            yield from proc.lseek(self.fd, offset, SEEK_SET)
            return (yield from proc.write(self.fd, nbytes))

        return (
            yield from proc._libcall(
                "MPI_File_write_at",
                (self.path, offset, nbytes),
                body(),
                path=self.path,
                nbytes=nbytes,
                offset=offset,
                fd=self.fd,
            )
        )

    def read_at(self, offset: int, nbytes: int) -> Generator[Any, Any, int]:
        """MPI_File_read_at: explicit-offset read (seek + read)."""
        self._check_open()
        proc = self.mpi.proc

        def body():
            yield from proc.lseek(self.fd, offset, SEEK_SET)
            return (yield from proc.read(self.fd, nbytes))

        return (
            yield from proc._libcall(
                "MPI_File_read_at",
                (self.path, offset, nbytes),
                body(),
                path=self.path,
                nbytes=nbytes,
                offset=offset,
                fd=self.fd,
            )
        )

    def write_at_all(
        self,
        offset: Optional[int] = None,
        nbytes: Optional[int] = None,
        extents: Optional[list] = None,
    ) -> Generator[Any, Any, int]:
        """MPI_File_write_at_all: collective write with two-phase I/O.

        The classic ROMIO optimization (an *extension* beyond the paper's
        mpich 1.2.6-era seek+write path).  Each rank contributes either one
        contiguous extent (``offset``, ``nbytes``) or a list of ``extents``
        — e.g. all of its strided blocks at once, the MPI-datatype use
        case.  Two phases:

        1. **exchange** — every rank ships its payload toward the
           aggregators over the network and the extent lists are combined;
        2. **write** — the merged extent space is split into one contiguous
           *file domain* per rank, and each rank writes its own domain
           sequentially.

        This converts the paper's worst-case pattern — N-to-1 strided small
        blocks — into large sequential writes; the ablation benchmark
        quantifies the win.  Collective: every rank must call it.
        """
        self._check_open()
        proc = self.mpi.proc
        mpi = self.mpi
        if extents is None:
            if offset is None or nbytes is None:
                raise InvalidArgument("write_at_all needs (offset, nbytes) or extents")
            extents = [(offset, nbytes)]
        my_bytes = sum(ln for _, ln in extents)

        def merge(all_extents):
            runs = []
            for off, ln in sorted(all_extents):
                if ln <= 0:
                    continue
                if runs and runs[-1][0] + runs[-1][1] >= off:
                    runs[-1][1] = max(runs[-1][1], off + ln - runs[-1][0])
                else:
                    runs.append([off, ln])
            return runs

        def domains(runs, size):
            """Split merged runs into ``size`` contiguous byte domains."""
            total = sum(r[1] for r in runs)
            share = -(-total // size) if total else 0
            out = [[] for _ in range(size)]
            rank, used = 0, 0
            for off, ln in runs:
                pos = off
                remaining = ln
                while remaining > 0:
                    take = min(remaining, share - used) if share else remaining
                    if take <= 0:
                        rank, used = rank + 1, 0
                        continue
                    out[min(rank, size - 1)].append((pos, take))
                    pos += take
                    remaining -= take
                    used += take
                    if used >= share and rank < size - 1:
                        rank, used = rank + 1, 0
            return out

        def body():
            # Phase 1: exchange — payload moves toward the aggregators.
            if my_bytes > 0:
                yield from mpi.comm.network.transfer(proc.node.nic, my_bytes)
            inst, is_last = mpi.comm.join_collective(
                mpi.rank, "File_write_at_all", list(extents), None
            )
            if is_last:
                yield mpi.comm._tree_latency()
                inst.release.succeed(None)
            else:
                yield inst.release
            # Phase 2: each rank writes its contiguous file domain.
            all_extents = [e for v in inst.values.values() for e in v]
            runs = merge(all_extents)
            mine = domains(runs, mpi.size)[mpi.rank]
            for dom_off, dom_len in mine:
                yield from proc.pwrite(self.fd, dom_len, dom_off)
            # Everyone leaves together (data must be durable for all).
            inst2, is_last2 = mpi.comm.join_collective(
                mpi.rank, "File_write_at_all_end", None, None
            )
            if is_last2:
                yield mpi.comm._tree_latency()
                inst2.release.succeed(None)
            else:
                yield inst2.release
            return my_bytes

        first_off = extents[0][0] if extents else 0
        return (
            yield from proc._libcall(
                "MPI_File_write_at_all",
                (self.path, first_off, my_bytes),
                body(),
                path=self.path,
                nbytes=my_bytes,
                offset=first_off,
                fd=self.fd,
            )
        )

    def iwrite_at(self, offset: int, nbytes: int) -> Generator[Any, Any, Request]:
        """MPI_File_iwrite_at: nonblocking write; pair with :meth:`wait`."""
        self._check_open()
        proc = self.mpi.proc

        def io_child():
            yield from proc.lseek(self.fd, offset, SEEK_SET)
            return (yield from proc.write(self.fd, nbytes))

        def body():
            child = self.mpi.sim.spawn(
                io_child(), name="iwrite:%s@%d" % (self.path, offset)
            )
            yield 0
            return Request(child.completion)

        return (
            yield from proc._libcall(
                "MPI_File_iwrite_at",
                (self.path, offset, nbytes),
                body(),
                path=self.path,
                nbytes=nbytes,
                offset=offset,
                fd=self.fd,
            )
        )

    def wait(self, request: Request) -> Generator[Any, Any, int]:
        """MPIO_Wait: block until a nonblocking request completes."""
        proc = self.mpi.proc

        def body():
            return (yield request.completion)

        return (yield from proc._libcall("MPIO_Wait", (), body()))

    # -- metadata --------------------------------------------------------------------

    def get_size(self) -> Generator[Any, Any, int]:
        """MPI_File_get_size."""
        proc = self.mpi.proc

        def body():
            st = yield from proc.fstat(self.fd)
            return st.size

        return (yield from proc._libcall("MPI_File_get_size", (self.path,), body()))

    def set_size(self, size: int) -> Generator[Any, Any, None]:
        """MPI_File_set_size (truncate/extend)."""
        proc = self.mpi.proc
        handle = proc._handle(self.fd)

        def body():
            yield from handle.fs.op_truncate(proc.ctx, handle.ino, size)
            return None

        yield from proc._libcall(
            "MPI_File_set_size", (self.path, size), body(), path=self.path
        )

    def sync(self) -> Generator[Any, Any, None]:
        """MPI_File_sync."""
        proc = self.mpi.proc

        def body():
            yield from proc.fsync(self.fd)
            return None

        yield from proc._libcall("MPI_File_sync", (self.path,), body(), path=self.path)
