"""Simulated storage stack.

Reproduces the storage substrate of the paper's testbed (§4.1.2): compute
nodes writing through a VFS to one of several file systems —

* :class:`~repro.simfs.localfs.LocalFS` — an ext3-like local file system on
  a block device (Tracefs was validated on ext3);
* :class:`~repro.simfs.nfs.NFS` — a network file system with per-RPC
  network costs (Tracefs was validated on NFS);
* :class:`~repro.simfs.pfs.ParallelFS` — a parallel file system striping
  files across storage servers backed by RAID-5 (the paper's "RAID 5 with a
  stripe width of 64 kilobytes across 252 hard drives");
* :class:`~repro.simfs.stackable.StackableFS` — the stackable-layer
  mechanism (FiST-style, [7]) that Tracefs mounts on top of any of the
  above.

Only metadata and timing are simulated — file *contents* are not stored.
Sizes, offsets, and per-operation service times are modelled faithfully
enough to reproduce the paper's bandwidth/overhead phenomena.
"""

from repro.simfs.blockdev import BlockDevice, DiskParams
from repro.simfs.raid import Raid5Geometry, Raid5Model
from repro.simfs.vfs import VFS, FileSystem, Inode, OpenFile, StatResult
from repro.simfs.localfs import LocalFS, LocalFSParams
from repro.simfs.nfs import NFS, NFSParams
from repro.simfs.pfs import ParallelFS, PFSParams
from repro.simfs.stackable import StackableFS
from repro.simfs.cache import CacheParams, CachingFS

__all__ = [
    "BlockDevice",
    "DiskParams",
    "Raid5Geometry",
    "Raid5Model",
    "VFS",
    "FileSystem",
    "Inode",
    "OpenFile",
    "StatResult",
    "LocalFS",
    "LocalFSParams",
    "NFS",
    "NFSParams",
    "ParallelFS",
    "PFSParams",
    "StackableFS",
    "CacheParams",
    "CachingFS",
]
