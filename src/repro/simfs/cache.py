"""Client-side page cache as a stackable layer.

A second use of the FiST-style stacking mechanism (§2.2 / reference [7])
beyond tracing: :class:`CachingFS` mounts over any lower file system and
absorbs reads that hit recently-accessed blocks, with either write-through
or write-back policy.  Block-granular LRU, bounded capacity.

Relevance to the paper's subject matter: caches are the reason VFS-level
tracing (Tracefs) sees operations that block-level tracing would miss, and
the reason traced I/O *timing* depends on history.  The ablation benchmark
uses this layer to show how a cache reshapes the block-size/bandwidth
curve that Figures 2-4 are built on.

Only timing and metadata are simulated — "cached" means the lower file
system is not consulted, not that bytes are stored.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Generator, Tuple

from repro.errors import InvalidArgument
from repro.obs.tracepoints import STATE as _TELEMETRY
from repro.simfs.stackable import StackableFS
from repro.simfs.vfs import CallerContext, FileSystem
from repro.units import KiB, MiB

__all__ = ["CachingFS", "CacheParams"]


@dataclass(frozen=True)
class CacheParams:
    """Cache geometry and costs.

    Attributes
    ----------
    capacity:
        Total cached bytes before LRU eviction.
    block_size:
        Cache granule; extents are rounded out to block boundaries.
    hit_cost:
        CPU time to serve one cached block (copy + bookkeeping).
    write_back:
        If True, writes are absorbed and flushed on fsync/close
        (write-back); if False every write also goes to the lower FS
        (write-through).  Reads always fill the cache.
    """

    capacity: int = 64 * MiB
    block_size: int = 64 * KiB
    hit_cost: float = 20e-6
    write_back: bool = False

    def __post_init__(self) -> None:
        if self.capacity <= 0 or self.block_size <= 0:
            raise InvalidArgument("cache capacity and block size must be positive")
        if self.block_size > self.capacity:
            raise InvalidArgument("block size exceeds capacity")


class CachingFS(StackableFS):
    """LRU page cache over a lower file system."""

    fstype = "cachefs"

    def __init__(self, sim: Any, lower: FileSystem, params: CacheParams | None = None):
        super().__init__(sim, lower, name="cache(%s)" % lower.name)
        self.params = params or CacheParams()
        # (ino, block_index) -> dirty flag; OrderedDict gives LRU order.
        self._blocks: OrderedDict[Tuple[int, int], bool] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0

    # -- cache mechanics -----------------------------------------------------------

    def _block_range(self, offset: int, nbytes: int) -> range:
        bs = self.params.block_size
        if nbytes <= 0:
            return range(0)
        return range(offset // bs, (offset + nbytes - 1) // bs + 1)

    @property
    def cached_bytes(self) -> int:
        return len(self._blocks) * self.params.block_size

    def _touch(self, key: Tuple[int, int], dirty: bool) -> None:
        if key in self._blocks:
            dirty = dirty or self._blocks[key]
            self._blocks.pop(key)
        self._blocks[key] = dirty

    def _evict_for(self, needed_blocks: int):
        """Evict LRU blocks until there is room; yields write-back I/O."""
        max_blocks = self.params.capacity // self.params.block_size
        while len(self._blocks) + needed_blocks > max_blocks and self._blocks:
            (ino, bidx), dirty = next(iter(self._blocks.items()))
            self._blocks.pop((ino, bidx))
            self.evictions += 1
            if dirty:
                yield ino, bidx

    def _flush_blocks(self, ctx: CallerContext, dirty_list) -> Generator[Any, Any, None]:
        bs = self.params.block_size
        col = _TELEMETRY.collector
        if col is not None and dirty_list:
            col.cache_writeback(self.name, len(dirty_list))
        for ino, bidx in dirty_list:
            self.writebacks += 1
            yield from self.lower.op_write(
                ctx, ino, bidx * bs, bs, stream=("cache-wb", ino)
            )

    # -- intercepted data path ---------------------------------------------------------

    def op_read(self, ctx: CallerContext, ino: int, offset: int, nbytes: int, stream: Any):
        """Serve from cache; fault missing blocks in from the lower FS."""
        blocks = list(self._block_range(offset, nbytes))
        missing = [b for b in blocks if (ino, b) not in self._blocks]
        n = 0
        if missing:
            self.misses += len(missing)
            dirty = list(self._evict_for(len(missing)))
            yield from self._flush_blocks(ctx, dirty)
            # One lower read covering the missing span (readahead-style).
            bs = self.params.block_size
            span_start = missing[0] * bs
            span_len = (missing[-1] - missing[0] + 1) * bs
            yield from self.lower.op_read(ctx, ino, span_start, span_len, stream)
            for b in missing:
                self._touch((ino, b), dirty=False)
        hit_blocks = [b for b in blocks if b not in missing]
        self.hits += len(hit_blocks)
        col = _TELEMETRY.collector
        if col is not None:
            col.cache_access(self.name, len(hit_blocks), len(missing))
        if hit_blocks:
            yield self.params.hit_cost * len(hit_blocks)
            for b in hit_blocks:
                self._touch((ino, b), dirty=False)
        # Result semantics come from the lower namespace (sizes live there).
        size = self.lower.ns.by_ino(ino).size
        n = max(0, min(nbytes, size - offset))
        return n

    def op_write(self, ctx: CallerContext, ino: int, offset: int, nbytes: int, stream: Any):
        """Write through or absorb (write-back), caching the blocks."""
        blocks = list(self._block_range(offset, nbytes))
        new = [b for b in blocks if (ino, b) not in self._blocks]
        col = _TELEMETRY.collector
        if col is not None:
            col.cache_access(self.name, len(blocks) - len(new), len(new))
        dirty_evicted = list(self._evict_for(len(new)))
        yield from self._flush_blocks(ctx, dirty_evicted)
        if self.params.write_back:
            for b in blocks:
                self._touch((ino, b), dirty=True)
            yield self.params.hit_cost * len(blocks)
            # size bookkeeping without lower I/O
            inode = self.lower.ns.by_ino(ino)
            inode.size = max(inode.size, offset + nbytes)
            inode.mtime = self.sim.now
            return nbytes
        n = yield from self.lower.op_write(ctx, ino, offset, nbytes, stream)
        for b in blocks:
            self._touch((ino, b), dirty=False)
        return n

    def op_fsync(self, ctx: CallerContext, ino: int):
        """Flush this inode's dirty blocks, then fsync the lower FS."""
        dirty = [
            (i, b) for (i, b), d in list(self._blocks.items()) if d and i == ino
        ]
        for key in dirty:
            self._blocks[key] = False
        yield from self._flush_blocks(ctx, dirty)
        yield from self.lower.op_fsync(ctx, ino)

    def op_truncate(self, ctx: CallerContext, ino: int, size: int):
        """Truncate below, invalidating cached blocks past the new end."""
        # Drop cached blocks past the new end.
        bs = self.params.block_size
        cutoff = -(-size // bs)
        for key in [k for k in self._blocks if k[0] == ino and k[1] >= cutoff]:
            self._blocks.pop(key)
        return (yield from self.lower.op_truncate(ctx, ino, size))

    # -- introspection ----------------------------------------------------------------

    def stats(self) -> dict:
        """Hit/miss/eviction counters and the current cache footprint."""
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / total if total else 0.0,
            "evictions": self.evictions,
            "writebacks": self.writebacks,
            "cached_bytes": self.cached_bytes,
        }
