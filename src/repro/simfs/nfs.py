"""NFS-like network file system.

Every operation is a synchronous RPC from the caller's node to one server:
request over the network, server-side service on the backing local file
system, reply back.  Data operations additionally move the payload over
the wire in ``rsize``/``wsize`` chunks, which is why NFS bandwidth is so
sensitive to small operations — per-RPC costs dominate.

Tracefs was validated on NFS by its authors (and by the paper, §2.2); the
paper also found that an NFS-backed setup is not a *parallel* file system:
a single server serializes the cluster, which our model reproduces — all
RPCs funnel through one server resource.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

from repro.cluster.network import Network
from repro.des.resources import Resource
from repro.simfs.localfs import LocalFS
from repro.simfs.vfs import CallerContext, FileSystem, Inode
from repro.units import KiB

__all__ = ["NFS", "NFSParams"]


@dataclass(frozen=True)
class NFSParams:
    """Protocol parameters.

    Attributes
    ----------
    rpc_overhead:
        Server CPU time to decode/dispatch one RPC.
    wsize:
        Maximum payload per WRITE RPC (rsize is assumed equal).
    server_threads:
        Concurrent RPCs the server processes (nfsd thread count).
    """

    rpc_overhead: float = 40e-6
    wsize: int = 64 * KiB
    server_threads: int = 8

    def __post_init__(self) -> None:
        if self.wsize <= 0:
            raise ValueError("wsize must be positive")
        if self.server_threads < 1:
            raise ValueError("server_threads must be >= 1")


class NFS(FileSystem):
    """Network file system: RPCs from client nodes to one backing server."""

    fstype = "nfs"
    parallel_compatible = False  # single server — not a parallel FS

    def __init__(
        self,
        sim: Any,
        network: Network,
        backing: Optional[LocalFS] = None,
        params: Optional[NFSParams] = None,
        name: str = "",
    ):
        super().__init__(sim, name=name)
        self.network = network
        self.backing = backing or LocalFS(sim, name="nfs-backing")
        self.params = params or NFSParams()
        self.server = Resource(
            sim, capacity=self.params.server_threads, name="nfsd:%s" % (name or "nfs")
        )

    # The NFS namespace *is* the backing FS's namespace: clients see the
    # server's tree.  Point our ns at it so metadata stays consistent.
    @property
    def ns(self):  # type: ignore[override]
        return self.backing.ns

    @ns.setter
    def ns(self, value):  # the base constructor assigns a fresh Namespace
        pass  # discarded: backing owns the namespace

    # -- RPC machinery ----------------------------------------------------------

    def _rpc(self, ctx: CallerContext, payload: int) -> Generator[Any, Any, None]:
        """One request/reply exchange carrying ``payload`` data bytes."""
        # Request (small header + payload for writes).
        yield from self.network.transfer(ctx.node.nic, 128 + payload)
        yield self.server.acquire()
        try:
            yield self.params.rpc_overhead
        finally:
            self.server.release()
        # Reply header (replies carrying read payloads add it in _read_service).
        yield self.network.config.latency

    def _meta_service(self, ctx: CallerContext, op: str) -> Generator[Any, Any, None]:
        yield from self._rpc(ctx, 0)
        yield from self.backing._meta_service(ctx, op)

    def _chunked(self, nbytes: int):
        w = self.params.wsize
        full, rem = divmod(nbytes, w)
        return [w] * full + ([rem] if rem else [])

    def _write_service(
        self, ctx: CallerContext, inode: Inode, offset: int, nbytes: int, stream: Any
    ) -> Generator[Any, Any, None]:
        pos = offset
        for chunk in self._chunked(nbytes):
            yield from self._rpc(ctx, chunk)
            yield from self.backing._write_service(ctx, inode, pos, chunk, stream)
            pos += chunk

    def _read_service(
        self, ctx: CallerContext, inode: Inode, offset: int, nbytes: int, stream: Any
    ) -> Generator[Any, Any, None]:
        pos = offset
        for chunk in self._chunked(nbytes):
            yield from self._rpc(ctx, 0)
            yield from self.backing._read_service(ctx, inode, pos, chunk, stream)
            # Reply carries the payload back to the client.
            yield from self.network.transfer(ctx.node.nic, chunk)
            pos += chunk
