"""Stackable file system layer (FiST-style, paper reference [7]).

A :class:`StackableFS` mounts *on top of* any lower file system and
forwards every VFS operation to it, giving subclasses two generator hooks —
``before_op`` and ``after_op`` — to observe and to charge time.  This is
the architecture Tracefs uses ("Using the stackable file system framework,
Tracefs can be mounted on top of a variety of file systems of your choice
(e.g. NFS, ext3, etc.)", §2.2).

The layer has no namespace of its own: ``ns`` delegates to the lower file
system, so a path resolves identically whether or not the layer is
interposed — mounting the tracer must not change application-visible
semantics, only timing.
"""

from __future__ import annotations

from typing import Any, Generator, List

from repro.simfs.vfs import CallerContext, FileSystem, StatResult

__all__ = ["StackableFS"]


class StackableFS(FileSystem):
    """Transparent pass-through file system with observation hooks."""

    fstype = "stackable"

    def __init__(self, sim: Any, lower: FileSystem, name: str = ""):
        super().__init__(sim, name=name or "stack(%s)" % lower.name)
        self.lower = lower

    # The stackable layer exposes the lower namespace as its own.
    @property
    def ns(self):  # type: ignore[override]
        return self.lower.ns

    @ns.setter
    def ns(self, value):  # base constructor assigns one; discard it
        pass

    @property
    def parallel_compatible(self) -> bool:  # type: ignore[override]
        return self.lower.parallel_compatible

    # -- hooks (override in subclasses) -------------------------------------------

    def before_op(self, ctx: CallerContext, op: str, args: tuple) -> Generator[Any, Any, None]:
        """Runs before the lower operation.  May charge time."""
        yield 0

    def after_op(
        self, ctx: CallerContext, op: str, args: tuple, result: Any, duration: float
    ) -> Generator[Any, Any, None]:
        """Runs after the lower operation completed.  May charge time."""
        yield 0

    def _wrap(self, ctx: CallerContext, op: str, args: tuple, lower_gen):
        """Run one lower operation between the two hooks."""
        yield from self.before_op(ctx, op, args)
        t0 = self.sim.now
        result = yield from lower_gen
        yield from self.after_op(ctx, op, args, result, self.sim.now - t0)
        return result

    # -- forwarded operations -------------------------------------------------------

    def op_open(self, ctx: CallerContext, relpath: str, flags: int, mode: int = 0o644):
        """Forwarded to the lower file system, between the hooks."""
        return (
            yield from self._wrap(
                ctx, "open", (relpath, flags, mode),
                self.lower.op_open(ctx, relpath, flags, mode),
            )
        )

    def op_read(self, ctx: CallerContext, ino: int, offset: int, nbytes: int, stream: Any):
        """Forwarded to the lower file system, between the hooks."""
        return (
            yield from self._wrap(
                ctx, "read", (ino, offset, nbytes),
                self.lower.op_read(ctx, ino, offset, nbytes, stream),
            )
        )

    def op_write(self, ctx: CallerContext, ino: int, offset: int, nbytes: int, stream: Any):
        """Forwarded to the lower file system, between the hooks."""
        return (
            yield from self._wrap(
                ctx, "write", (ino, offset, nbytes),
                self.lower.op_write(ctx, ino, offset, nbytes, stream),
            )
        )

    def op_truncate(self, ctx: CallerContext, ino: int, size: int):
        """Forwarded to the lower file system, between the hooks."""
        return (
            yield from self._wrap(
                ctx, "truncate", (ino, size), self.lower.op_truncate(ctx, ino, size)
            )
        )

    def op_fsync(self, ctx: CallerContext, ino: int):
        """Forwarded to the lower file system, between the hooks."""
        return (
            yield from self._wrap(ctx, "fsync", (ino,), self.lower.op_fsync(ctx, ino))
        )

    def op_stat(self, ctx: CallerContext, relpath: str) -> Generator[Any, Any, StatResult]:
        """Forwarded to the lower file system, between the hooks."""
        return (
            yield from self._wrap(ctx, "stat", (relpath,), self.lower.op_stat(ctx, relpath))
        )

    def op_fstat(self, ctx: CallerContext, ino: int) -> Generator[Any, Any, StatResult]:
        """Forwarded to the lower file system, between the hooks."""
        return (
            yield from self._wrap(ctx, "fstat", (ino,), self.lower.op_fstat(ctx, ino))
        )

    def op_unlink(self, ctx: CallerContext, relpath: str):
        """Forwarded to the lower file system, between the hooks."""
        return (
            yield from self._wrap(ctx, "unlink", (relpath,), self.lower.op_unlink(ctx, relpath))
        )

    def op_mkdir(self, ctx: CallerContext, relpath: str, mode: int = 0o755):
        """Forwarded to the lower file system, between the hooks."""
        return (
            yield from self._wrap(
                ctx, "mkdir", (relpath, mode), self.lower.op_mkdir(ctx, relpath, mode)
            )
        )

    def op_readdir(self, ctx: CallerContext, relpath: str) -> Generator[Any, Any, List[str]]:
        """Forwarded to the lower file system, between the hooks."""
        return (
            yield from self._wrap(
                ctx, "readdir", (relpath,), self.lower.op_readdir(ctx, relpath)
            )
        )

    def op_rename(self, ctx: CallerContext, old: str, new: str):
        """Forwarded to the lower file system, between the hooks."""
        return (
            yield from self._wrap(
                ctx, "rename", (old, new), self.lower.op_rename(ctx, old, new)
            )
        )

    def op_statfs(self, ctx: CallerContext):
        """Forwarded to the lower file system, between the hooks."""
        return (
            yield from self._wrap(ctx, "statfs", (), self.lower.op_statfs(ctx))
        )
