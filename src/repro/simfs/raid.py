"""RAID-5 geometry and timing model.

The paper's storage system: "we wrote constant sized output files under
RAID 5 with a stripe width of 64 kilobytes across 252 hard drives"
(§4.1.2).  Two pieces here:

* :class:`Raid5Geometry` — the pure address arithmetic: byte extents map to
  per-drive segments with left-symmetric rotating parity.  This is
  property-tested (every byte maps to exactly one drive segment, no two
  extents overlap, parity never coincides with data in a row).
* :class:`Raid5Model` — an *analytic* service-time model over the geometry.
  Individual drives are not discrete-event simulated (252 drives × millions
  of ops would drown the event queue); instead each array computes the
  parallel completion time of an extent across its drives, including the
  read-modify-write penalty for partial-stripe writes that makes small
  blocks expensive on RAID-5 — one of the physical reasons the paper's
  bandwidth is so much worse at 64 KiB than at 8 MiB.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.simfs.blockdev import DiskParams
from repro.units import KiB

__all__ = ["Raid5Geometry", "Raid5Model", "Segment"]


@dataclass(frozen=True)
class Segment:
    """One contiguous piece of an extent on one drive."""

    drive: int
    drive_offset: int
    nbytes: int
    logical_offset: int


class Raid5Geometry:
    """Left-symmetric RAID-5 address arithmetic.

    Logical bytes are grouped into stripes of ``(n_drives - 1)`` data units
    of ``stripe_width`` bytes each; the parity unit rotates right-to-left
    across rows (left-symmetric layout, the common md/raid5 default).
    """

    def __init__(self, n_drives: int, stripe_width: int = 64 * KiB):
        if n_drives < 3:
            raise ValueError("RAID-5 needs at least 3 drives")
        if stripe_width <= 0:
            raise ValueError("stripe width must be positive")
        self.n_drives = n_drives
        self.stripe_width = stripe_width
        self.data_per_row = (n_drives - 1) * stripe_width

    def parity_drive(self, row: int) -> int:
        """Drive holding parity for stripe row ``row`` (rotating)."""
        return (self.n_drives - 1 - (row % self.n_drives)) % self.n_drives

    def locate(self, logical_offset: int) -> Tuple[int, int]:
        """Map one logical byte to ``(drive, drive_offset)``."""
        if logical_offset < 0:
            raise ValueError("negative offset")
        row, in_row = divmod(logical_offset, self.data_per_row)
        unit, in_unit = divmod(in_row, self.stripe_width)
        parity = self.parity_drive(row)
        # Data units fill drives left to right, skipping the parity drive.
        drive = unit if unit < parity else unit + 1
        return drive, row * self.stripe_width + in_unit

    def map_extent(self, offset: int, nbytes: int) -> List[Segment]:
        """Split a logical extent into maximal per-drive segments."""
        if nbytes < 0:
            raise ValueError("negative extent length")
        segments: List[Segment] = []
        pos = offset
        end = offset + nbytes
        while pos < end:
            drive, drive_off = self.locate(pos)
            # Run length until the end of the current stripe unit.
            in_unit = pos % self.stripe_width
            run = min(self.stripe_width - in_unit, end - pos)
            segments.append(Segment(drive, drive_off, run, pos))
            pos += run
        return segments

    def rows_touched(self, offset: int, nbytes: int) -> range:
        """Stripe rows overlapped by the extent."""
        if nbytes <= 0:
            return range(0)
        first = offset // self.data_per_row
        last = (offset + nbytes - 1) // self.data_per_row
        return range(first, last + 1)

    def is_full_row_write(self, offset: int, nbytes: int, row: int) -> bool:
        """Does the extent cover stripe row ``row`` completely?

        Full-row writes compute parity from the new data alone (no
        read-modify-write); partial-row writes must read old data+parity.
        """
        row_start = row * self.data_per_row
        return offset <= row_start and offset + nbytes >= row_start + self.data_per_row


class Raid5Model:
    """Analytic service time of one extent on a RAID-5 array.

    The extent's per-drive byte loads are computed from the geometry; the
    array completes when its most-loaded drive finishes.  Every involved
    row adds a parity write, and every *partial* row adds a
    read-modify-write round (old data + old parity reads) — the classic
    RAID-5 small-write penalty.
    """

    def __init__(self, geometry: Raid5Geometry, disk: DiskParams | None = None):
        self.geometry = geometry
        self.disk = disk or DiskParams()
    def service_time(self, offset: int, nbytes: int, sequential: bool) -> float:
        """Parallel completion time of one extent across the array."""
        disk = self.disk
        if nbytes <= 0:
            return disk.settle_time
        g = self.geometry
        in_unit = offset % g.stripe_width
        if in_unit + nbytes <= g.stripe_width and (in_unit > 0 or nbytes < g.data_per_row):
            # Closed form for the dominant case: the extent lives in one
            # stripe unit of one (partial) row, so the loads are exactly
            # {data drive: nbytes, parity drive: stripe_width} and one
            # read-modify-write round is charged.  Matches the general
            # path bit for bit (same operations in the same order).
            busiest = nbytes if nbytes > g.stripe_width else g.stripe_width
            t = busiest / disk.stream_bandwidth + disk.settle_time
            if not sequential:
                t += disk.seek_time
            t += 1 * disk.settle_time
            return t
        return self._service_time_uncached(offset, nbytes, sequential)

    def _service_time_uncached(self, offset: int, nbytes: int, sequential: bool) -> float:
        g = self.geometry
        per_drive: Dict[int, int] = defaultdict(int)
        for seg in g.map_extent(offset, nbytes):
            per_drive[seg.drive] += seg.nbytes

        rmw_rows = 0
        for row in g.rows_touched(offset, nbytes):
            pdrive = g.parity_drive(row)
            # Parity unit is written for every touched row.
            per_drive[pdrive] += g.stripe_width
            if not g.is_full_row_write(offset, nbytes, row):
                rmw_rows += 1

        busiest = max(per_drive.values())
        t = busiest / self.disk.stream_bandwidth + self.disk.settle_time
        if not sequential:
            t += self.disk.seek_time
        # Each read-modify-write round costs an extra rotation's worth of
        # settle on the parity path (read old, wait, write new).
        t += rmw_rows * self.disk.settle_time
        return t
