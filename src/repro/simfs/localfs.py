"""ext3-like local file system on a block device or RAID array."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

from repro.des.resources import Resource
from repro.simfs.blockdev import BlockDevice, DiskParams
from repro.simfs.raid import Raid5Geometry, Raid5Model
from repro.simfs.vfs import CallerContext, FileSystem, Inode

__all__ = ["LocalFS", "LocalFSParams"]


@dataclass(frozen=True)
class LocalFSParams:
    """Software costs of the local file system layer.

    Attributes
    ----------
    meta_op_cost:
        CPU time of one metadata operation (dentry walk, inode update).
    journal_cost:
        Extra cost per metadata *mutation* (ext3 journals metadata).
    """

    meta_op_cost: float = 20e-6
    journal_cost: float = 80e-6


_MUTATING_META = {"open", "truncate", "unlink", "mkdir", "rename", "fsync"}


class LocalFS(FileSystem):
    """A local file system backed by one disk (or an analytic RAID-5 array).

    Construct with either a :class:`~repro.simfs.blockdev.BlockDevice` (per
    extent queueing on a single spindle) or a
    :class:`~repro.simfs.raid.Raid5Model` (analytic service times on a
    FIFO array queue).
    """

    fstype = "ext3"
    parallel_compatible = False  # a node-local FS cannot serve a parallel job

    def __init__(
        self,
        sim: Any,
        device: Optional[BlockDevice] = None,
        raid: Optional[Raid5Model] = None,
        params: Optional[LocalFSParams] = None,
        name: str = "",
    ):
        super().__init__(sim, name=name)
        if device is None and raid is None:
            device = BlockDevice(sim, DiskParams(), name="%s-disk" % (name or self.fstype))
        if device is not None and raid is not None:
            raise ValueError("pass either a block device or a RAID model, not both")
        self.device = device
        self.raid = raid
        # One request queue in front of the array when using the analytic model.
        self._raid_queue = Resource(sim, capacity=1, name="raidq") if raid else None
        self._raid_streams: dict[Any, int] = {}
        self.params = params or LocalFSParams()

    # -- timing hooks -----------------------------------------------------------

    def _meta_service(self, ctx: CallerContext, op: str) -> Generator[Any, Any, None]:
        cost = self.params.meta_op_cost
        if op in _MUTATING_META:
            cost += self.params.journal_cost
        yield cost

    def _data_service(
        self, ctx: CallerContext, inode: Inode, offset: int, nbytes: int, stream: Any
    ) -> Generator[Any, Any, None]:
        if self.device is not None:
            yield from self.device.service(stream, offset, nbytes)
            return
        assert self.raid is not None and self._raid_queue is not None
        yield self._raid_queue.acquire()
        try:
            sequential = self._raid_streams.get(stream) == offset
            self._raid_streams[stream] = offset + nbytes
            t = self.raid.service_time(offset, nbytes, sequential)
            if t > 0:
                yield t
        finally:
            self._raid_queue.release()

    def _read_service(self, ctx, inode, offset, nbytes, stream):
        yield from self._data_service(ctx, inode, offset, nbytes, stream)

    def _write_service(self, ctx, inode, offset, nbytes, stream):
        yield from self._data_service(ctx, inode, offset, nbytes, stream)
