"""Block-device timing model.

A disk is a FIFO resource whose service time for an extent is::

    t = seek (if non-sequential) + rotational settle + nbytes / stream_bw

Sequentiality is judged per *stream* (a (file, client) pair supplied by the
caller), not per raw LBA, approximating the write-back aggregation a real
OS performs: a client appending to its own file keeps streaming even while
other clients interleave.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Hashable, Optional

from repro.des.resources import Resource
from repro.obs.tracepoints import STATE as _TELEMETRY
from repro.units import MiB

__all__ = ["DiskParams", "BlockDevice"]


@dataclass(frozen=True)
class DiskParams:
    """Mechanical/transfer characteristics of one spindle (2007-era SATA).

    Attributes
    ----------
    seek_time:
        Average head seek for a non-sequential access, seconds.
    settle_time:
        Rotational settle charged on every access (half-rotation average).
    stream_bandwidth:
        Sustained sequential transfer rate, bytes/second.
    """

    seek_time: float = 8e-3
    settle_time: float = 2e-3
    stream_bandwidth: float = 60.0 * MiB

    def __post_init__(self) -> None:
        if self.seek_time < 0 or self.settle_time < 0:
            raise ValueError("seek/settle times must be non-negative")
        if self.stream_bandwidth <= 0:
            raise ValueError("stream_bandwidth must be positive")

    def service_time(self, nbytes: int, sequential: bool) -> float:
        """Raw service time for one extent, excluding queueing."""
        t = nbytes / self.stream_bandwidth + self.settle_time
        if not sequential:
            t += self.seek_time
        return t


class BlockDevice:
    """One disk: FIFO queue + per-stream sequentiality tracking."""

    def __init__(self, sim: Any, params: Optional[DiskParams] = None, name: str = "disk"):
        self.sim = sim
        self.params = params or DiskParams()
        self.queue = Resource(sim, capacity=1, name=name)
        self.name = name
        # stream key -> next expected offset for sequential continuation
        self._stream_pos: dict[Hashable, int] = {}
        self._bytes_served = 0
        self._ops_served = 0
        self._seeks = 0

    def is_sequential(self, stream: Hashable, offset: int) -> bool:
        """Would an access at ``offset`` continue ``stream``'s last extent?"""
        return self._stream_pos.get(stream) == offset

    def service(
        self, stream: Hashable, offset: int, nbytes: int
    ) -> Generator[Any, Any, float]:
        """Sub-activity: queue for the disk and transfer one extent.

        Returns the service time charged (excluding queueing delay).
        Use with ``yield from``.
        """
        yield self.queue.acquire()
        try:
            sequential = self.is_sequential(stream, offset)
            t = self.params.service_time(nbytes, sequential)
            if not sequential:
                self._seeks += 1
            self._stream_pos[stream] = offset + nbytes
            self._bytes_served += nbytes
            self._ops_served += 1
            col = _TELEMETRY.collector
            if col is not None:
                col.disk_op(
                    self.name, self.sim.now, nbytes, sequential, self.queue.in_use
                )
            if t > 0:
                yield t
        finally:
            self.queue.release()
            col = _TELEMETRY.collector
            if col is not None:
                col.metrics.sample(
                    "disk.%s.busy" % self.name, self.sim.now, self.queue.in_use
                )
        return t

    # -- accounting -----------------------------------------------------------

    @property
    def bytes_served(self) -> int:
        return self._bytes_served

    @property
    def ops_served(self) -> int:
        return self._ops_served

    @property
    def seeks(self) -> int:
        return self._seeks
