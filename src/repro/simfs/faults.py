"""Fault-injecting stackable layer.

A third use of FiST-style stacking: :class:`FaultInjectingFS` wraps any
lower file system and injects deterministic, seeded failures — error
returns (``EIO``-style) and latency spikes — into a configurable subset of
operations.

Why it belongs in a tracing reproduction: tracing frameworks must record
*failed* calls faithfully (strace prints ``= -1 EIO (...)`` lines; the
paper's replayable traces must preserve them), and overhead measurements
must hold up when the underlying storage misbehaves.  This layer makes
both testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, FrozenSet, Generator, Optional

from repro.errors import SimOSError
from repro.simfs.stackable import StackableFS
from repro.simfs.vfs import CallerContext, FileSystem

__all__ = ["FaultInjectingFS", "FaultPlan", "InjectedIOError"]


class InjectedIOError(SimOSError):
    """The injected failure (POSIX EIO)."""

    errno_name = "EIO"


@dataclass(frozen=True)
class FaultPlan:
    """What to inject, where, how often.

    Attributes
    ----------
    error_rate:
        Probability an eligible operation fails with EIO.
    delay_rate / delay:
        Probability an eligible operation stalls, and for how long
        (a hung-disk latency spike).
    ops:
        Operation names eligible for injection (empty = all).
    path_substring:
        Only operations whose path argument contains this string are
        eligible (None = all paths).
    seed_stream:
        Name of the simulator random stream driving the coin flips —
        deterministic per simulator seed.
    horizon:
        Optional simulated-time bound the plan must fit inside: a delay
        at least this long could stall an op past a bounded run's end,
        so it is rejected at construction instead of timing out later.
    """

    error_rate: float = 0.0
    delay_rate: float = 0.0
    delay: float = 0.1
    ops: FrozenSet[str] = frozenset()
    path_substring: Optional[str] = None
    seed_stream: str = "faults"
    horizon: Optional[float] = None

    def __post_init__(self) -> None:
        for rate in (self.error_rate, self.delay_rate):
            if not (0.0 <= rate <= 1.0):
                raise ValueError("rates must be in [0, 1]")
        if self.delay < 0:
            raise ValueError("delay must be non-negative")
        if self.horizon is not None:
            if self.horizon <= 0:
                raise ValueError("horizon must be positive")
            if self.delay >= self.horizon:
                raise ValueError(
                    "delay (%gs) must be shorter than the horizon (%gs)"
                    % (self.delay, self.horizon)
                )
        object.__setattr__(self, "ops", frozenset(self.ops))


class FaultInjectingFS(StackableFS):
    """Inject failures/delays into a lower file system's operations."""

    fstype = "faultfs"

    def __init__(self, sim: Any, lower: FileSystem, plan: FaultPlan):
        super().__init__(sim, lower, name="faults(%s)" % lower.name)
        self.plan = plan
        self._rng = sim.random.stream(plan.seed_stream)
        self.errors_injected = 0
        self.delays_injected = 0

    def _eligible(self, op: str, args: tuple) -> bool:
        if self.plan.ops and op not in self.plan.ops:
            return False
        if self.plan.path_substring is not None:
            path_args = [a for a in args if isinstance(a, str)]
            if not any(self.plan.path_substring in a for a in path_args):
                return False
        return True

    def before_op(self, ctx: CallerContext, op: str, args: tuple) -> Generator[Any, Any, None]:
        """Roll the dice: maybe stall, maybe fail, then pass through.

        Draw contract: every eligible operation consumes exactly two RNG
        values from the plan's stream — the delay coin first, then the
        error coin — regardless of the configured rates.  (A previous
        version short-circuited the draw when a rate was 0.0, so turning
        one fault type off shifted the other's entire coin sequence and
        broke run-to-run comparisons between plans.)
        """
        if self._eligible(op, args):
            delay_hit = self._rng.random() < self.plan.delay_rate
            error_hit = self._rng.random() < self.plan.error_rate
            if delay_hit:
                self.delays_injected += 1
                yield self.plan.delay
            if error_hit:
                self.errors_injected += 1
                raise InjectedIOError("injected fault in %s" % op)
        yield 0
