"""Virtual file system layer: namespace, inodes, mounts, file handles.

The VFS plays the same role as the Linux VFS in the paper's frameworks
survey: it is *the* interposition point for Tracefs ("file system
operations, i.e. Virtual File System (VFS) calls", §4.2).  File systems
implement the generator-based operation protocol (``op_open``,
``op_write``, ...); the VFS resolves paths through a mount table and
forwards to whichever file system — possibly a stackable tracing layer —
is mounted there.

Contents are not stored; inodes track sizes and attributes only.
"""

from __future__ import annotations

import posixpath
from dataclasses import dataclass
from typing import Any, Dict, Generator, Iterable, List, Optional, Tuple

from repro.errors import (
    BadFileDescriptor,
    CrossDeviceLink,
    FileExists,
    FileNotFound,
    InvalidArgument,
    IsADirectory,
    NotADirectory,
    NotMounted,
    PermissionDenied,
)

__all__ = [
    "CallerContext",
    "FileSystem",
    "Inode",
    "Namespace",
    "OpenFile",
    "StatResult",
    "VFS",
    "O_RDONLY",
    "O_WRONLY",
    "O_RDWR",
    "O_CREAT",
    "O_EXCL",
    "O_TRUNC",
    "O_APPEND",
]

# POSIX-style open flags (values match Linux for familiarity).
O_RDONLY = 0o0
O_WRONLY = 0o1
O_RDWR = 0o2
O_CREAT = 0o100
O_EXCL = 0o200
O_TRUNC = 0o1000
O_APPEND = 0o2000

_ACCMODE = 0o3


@dataclass(frozen=True)
class CallerContext:
    """Who is performing a file-system operation, from where.

    ``node`` is the compute node issuing the call (network file systems
    charge transfers against its NIC); ``uid``/``user`` drive permission
    checks and show up in traces (and are anonymization targets).
    """

    node: Any
    pid: int = 0
    uid: int = 1000
    user: str = "jdoe"


@dataclass(frozen=True)
class StatResult:
    """Snapshot of an inode's attributes (what ``stat(2)`` returns)."""

    ino: int
    size: int
    mode: int
    uid: int
    is_dir: bool
    nlink: int
    mtime: float
    ctime: float


class Inode:
    """File or directory metadata.  Contents are sizes, not bytes."""

    __slots__ = ("ino", "is_dir", "size", "mode", "uid", "mtime", "ctime", "children", "nlink")

    def __init__(self, ino: int, is_dir: bool, mode: int, uid: int, now: float):
        self.ino = ino
        self.is_dir = is_dir
        self.size = 0
        self.mode = mode
        self.uid = uid
        self.mtime = now
        self.ctime = now
        self.nlink = 1
        self.children: Optional[Dict[str, "Inode"]] = {} if is_dir else None

    def stat(self) -> StatResult:
        """Snapshot the inode's current attributes."""
        return StatResult(
            ino=self.ino,
            size=self.size,
            mode=self.mode,
            uid=self.uid,
            is_dir=self.is_dir,
            nlink=self.nlink,
            mtime=self.mtime,
            ctime=self.ctime,
        )


class Namespace:
    """An in-memory inode tree with POSIX-flavoured path semantics.

    Pure data structure — no simulated time.  File systems call into it
    and charge time separately through their service hooks.
    """

    def __init__(self) -> None:
        self._next_ino = 2
        self.root = Inode(1, True, 0o755, 0, 0.0)
        self._by_ino: Dict[int, Inode] = {1: self.root}

    def _alloc(self, is_dir: bool, mode: int, uid: int, now: float) -> Inode:
        ino = self._next_ino
        self._next_ino += 1
        inode = Inode(ino, is_dir, mode, uid, now)
        self._by_ino[ino] = inode
        return inode

    @staticmethod
    def split(relpath: str) -> List[str]:
        parts = [p for p in relpath.split("/") if p and p != "."]
        for p in parts:
            if p == "..":
                raise InvalidArgument("'..' not supported in simulated paths")
        return parts

    def lookup(self, relpath: str) -> Inode:
        """Resolve ``relpath`` to its inode (FileNotFound if absent)."""
        node = self.root
        for part in self.split(relpath):
            if not node.is_dir:
                raise NotADirectory(part)
            child = node.children.get(part)  # type: ignore[union-attr]
            if child is None:
                raise FileNotFound(relpath)
            node = child
        return node

    def by_ino(self, ino: int) -> Inode:
        """Look an inode up by number."""
        inode = self._by_ino.get(ino)
        if inode is None:
            raise FileNotFound("inode %d" % ino)
        return inode

    def lookup_parent(self, relpath: str) -> Tuple[Inode, str]:
        """Resolve to ``(parent directory inode, final name component)``."""
        parts = self.split(relpath)
        if not parts:
            raise InvalidArgument("path refers to the root")
        parent = self.root
        for part in parts[:-1]:
            if not parent.is_dir:
                raise NotADirectory(part)
            child = parent.children.get(part)  # type: ignore[union-attr]
            if child is None:
                raise FileNotFound(relpath)
            parent = child
        if not parent.is_dir:
            raise NotADirectory(relpath)
        return parent, parts[-1]

    def create(self, relpath: str, mode: int, uid: int, now: float,
               is_dir: bool = False, exclusive: bool = False) -> Inode:
        """Create (or return, unless ``exclusive``) the entry at ``relpath``."""
        parent, name = self.lookup_parent(relpath)
        existing = parent.children.get(name)  # type: ignore[union-attr]
        if existing is not None:
            if exclusive:
                raise FileExists(relpath)
            if existing.is_dir != is_dir:
                raise (IsADirectory if existing.is_dir else NotADirectory)(relpath)
            return existing
        inode = self._alloc(is_dir, mode, uid, now)
        parent.children[name] = inode  # type: ignore[index]
        parent.mtime = now
        return inode

    def unlink(self, relpath: str, now: float) -> None:
        """Remove the entry (empty directories only)."""
        parent, name = self.lookup_parent(relpath)
        inode = parent.children.get(name)  # type: ignore[union-attr]
        if inode is None:
            raise FileNotFound(relpath)
        if inode.is_dir:
            if inode.children:
                raise InvalidArgument("directory not empty: %s" % relpath)
        del parent.children[name]  # type: ignore[arg-type]
        parent.mtime = now
        inode.nlink -= 1
        if inode.nlink <= 0:
            self._by_ino.pop(inode.ino, None)

    def readdir(self, relpath: str) -> List[str]:
        """Sorted child names of a directory."""
        inode = self.lookup(relpath)
        if not inode.is_dir:
            raise NotADirectory(relpath)
        return sorted(inode.children)  # type: ignore[arg-type]

    def rename(self, old: str, new: str, now: float) -> None:
        """Move an entry; displacing a non-empty directory is rejected."""
        old_parent, old_name = self.lookup_parent(old)
        inode = old_parent.children.get(old_name)  # type: ignore[union-attr]
        if inode is None:
            raise FileNotFound(old)
        new_parent, new_name = self.lookup_parent(new)
        displaced = new_parent.children.get(new_name)  # type: ignore[union-attr]
        if displaced is not None and displaced.is_dir and displaced.children:
            raise InvalidArgument("rename target directory not empty")
        del old_parent.children[old_name]  # type: ignore[arg-type]
        new_parent.children[new_name] = inode  # type: ignore[index]
        old_parent.mtime = new_parent.mtime = now


def _check_permission(inode: Inode, ctx: CallerContext, write: bool) -> None:
    if ctx.uid == 0:
        return
    if inode.uid == ctx.uid:
        needed = 0o200 if write else 0o400
    else:
        needed = 0o002 if write else 0o004
    if not (inode.mode & needed):
        raise PermissionDenied("uid %d mode %o" % (ctx.uid, inode.mode))


class FileSystem:
    """Concrete base file system: namespace + overridable timing hooks.

    Subclasses (:class:`~repro.simfs.localfs.LocalFS`,
    :class:`~repro.simfs.nfs.NFS`, :class:`~repro.simfs.pfs.ParallelFS`)
    override the three service hooks to charge their characteristic costs.
    All ``op_*`` methods are generators driven by the DES kernel.
    """

    #: short type tag shown by mount tables / classification tooling
    fstype = "base"

    #: whether the paper found this FS family compatible with parallel
    #: workloads "out of the box" (drives Tracefs's NotTraceable behaviour)
    parallel_compatible = True

    def __init__(self, sim: Any, name: str = ""):
        self.sim = sim
        self.name = name or self.fstype
        self.ns = Namespace()

    # -- timing hooks (override in subclasses) --------------------------------

    def _meta_service(self, ctx: CallerContext, op: str) -> Generator[Any, Any, None]:
        """Time charged for one metadata operation (lookup, create, ...)."""
        yield 10e-6

    def _read_service(
        self, ctx: CallerContext, inode: Inode, offset: int, nbytes: int, stream: Any
    ) -> Generator[Any, Any, None]:
        """Time charged to move ``nbytes`` from storage to the caller."""
        yield 0

    def _write_service(
        self, ctx: CallerContext, inode: Inode, offset: int, nbytes: int, stream: Any
    ) -> Generator[Any, Any, None]:
        """Time charged to move ``nbytes`` from the caller to storage."""
        yield 0

    # -- operations ------------------------------------------------------------

    def op_open(
        self, ctx: CallerContext, relpath: str, flags: int, mode: int = 0o644
    ) -> Generator[Any, Any, int]:
        """Resolve/create ``relpath``; returns the inode number."""
        yield from self._meta_service(ctx, "open")
        created = False
        if flags & O_CREAT:
            try:
                inode = self.ns.lookup(relpath)
                if flags & O_EXCL:
                    raise FileExists(relpath)
            except FileNotFound:
                inode = self.ns.create(relpath, mode, ctx.uid, self.sim.now)
                created = True
        else:
            inode = self.ns.lookup(relpath)
        if inode.is_dir and (flags & _ACCMODE) != O_RDONLY:
            raise IsADirectory(relpath)
        # POSIX: the mode of a file created by this very open() does not
        # gate this open — a 0400 O_CREAT|O_WRONLY open succeeds once.
        if not created:
            _check_permission(inode, ctx, write=(flags & _ACCMODE) != O_RDONLY)
        if flags & O_TRUNC and not inode.is_dir:
            inode.size = 0
            inode.mtime = self.sim.now
        return inode.ino

    def op_read(
        self, ctx: CallerContext, ino: int, offset: int, nbytes: int, stream: Any
    ) -> Generator[Any, Any, int]:
        """Read up to ``nbytes`` at ``offset``; returns bytes read."""
        inode = self.ns.by_ino(ino)
        if inode.is_dir:
            raise IsADirectory("inode %d" % ino)
        if offset < 0 or nbytes < 0:
            raise InvalidArgument("negative offset/length")
        n = max(0, min(nbytes, inode.size - offset))
        if n > 0:
            yield from self._read_service(ctx, inode, offset, n, stream)
        else:
            yield from self._meta_service(ctx, "read-eof")
        return n

    def op_write(
        self, ctx: CallerContext, ino: int, offset: int, nbytes: int, stream: Any
    ) -> Generator[Any, Any, int]:
        """Write ``nbytes`` at ``offset``; returns bytes written."""
        inode = self.ns.by_ino(ino)
        if inode.is_dir:
            raise IsADirectory("inode %d" % ino)
        if offset < 0 or nbytes < 0:
            raise InvalidArgument("negative offset/length")
        if nbytes > 0:
            yield from self._write_service(ctx, inode, offset, nbytes, stream)
        inode.size = max(inode.size, offset + nbytes)
        inode.mtime = self.sim.now
        return nbytes

    def op_truncate(self, ctx: CallerContext, ino: int, size: int) -> Generator[Any, Any, None]:
        """Set the file size (grow or shrink)."""
        if size < 0:
            raise InvalidArgument("negative size")
        inode = self.ns.by_ino(ino)
        yield from self._meta_service(ctx, "truncate")
        inode.size = size
        inode.mtime = self.sim.now

    def op_fsync(self, ctx: CallerContext, ino: int) -> Generator[Any, Any, None]:
        """Flush the file (metadata cost only in the base model)."""
        self.ns.by_ino(ino)  # validates
        yield from self._meta_service(ctx, "fsync")

    def op_stat(self, ctx: CallerContext, relpath: str) -> Generator[Any, Any, StatResult]:
        """Attributes of the file at ``relpath``."""
        yield from self._meta_service(ctx, "stat")
        return self.ns.lookup(relpath).stat()

    def op_fstat(self, ctx: CallerContext, ino: int) -> Generator[Any, Any, StatResult]:
        """Attributes of an open inode."""
        yield from self._meta_service(ctx, "fstat")
        return self.ns.by_ino(ino).stat()

    def op_unlink(self, ctx: CallerContext, relpath: str) -> Generator[Any, Any, None]:
        """Remove a file (owner/permission checked)."""
        yield from self._meta_service(ctx, "unlink")
        inode = self.ns.lookup(relpath)
        _check_permission(inode, ctx, write=True)
        self.ns.unlink(relpath, self.sim.now)

    def op_mkdir(self, ctx: CallerContext, relpath: str, mode: int = 0o755) -> Generator[Any, Any, None]:
        """Create a directory (EEXIST if present)."""
        yield from self._meta_service(ctx, "mkdir")
        self.ns.create(relpath, mode, ctx.uid, self.sim.now, is_dir=True, exclusive=True)

    def op_readdir(self, ctx: CallerContext, relpath: str) -> Generator[Any, Any, List[str]]:
        """List a directory."""
        yield from self._meta_service(ctx, "readdir")
        return self.ns.readdir(relpath)

    def op_rename(self, ctx: CallerContext, old: str, new: str) -> Generator[Any, Any, None]:
        """Rename within this file system."""
        yield from self._meta_service(ctx, "rename")
        self.ns.rename(old, new, self.sim.now)

    def op_statfs(self, ctx: CallerContext) -> Generator[Any, Any, Dict[str, int]]:
        """File-system totals (file count, bytes used)."""
        yield from self._meta_service(ctx, "statfs")
        total_size = sum(
            i.size for i in self.ns._by_ino.values() if not i.is_dir
        )
        return {"files": len(self.ns._by_ino), "bytes_used": total_size}


class OpenFile:
    """A process's handle on an open file (one entry in its fd table)."""

    __slots__ = ("fs", "ino", "path", "flags", "position", "closed")

    def __init__(self, fs: FileSystem, ino: int, path: str, flags: int):
        self.fs = fs
        self.ino = ino
        self.path = path
        self.flags = flags
        self.position = 0
        self.closed = False

    @property
    def readable(self) -> bool:
        return (self.flags & _ACCMODE) in (O_RDONLY, O_RDWR)

    @property
    def writable(self) -> bool:
        return (self.flags & _ACCMODE) in (O_WRONLY, O_RDWR)


class VFS:
    """Mount table + path routing.

    Longest-prefix mount resolution, like the kernel: mounting a stackable
    tracing layer *over* an existing mount point shadows the lower mount —
    exactly how Tracefs interposes.
    """

    def __init__(self, sim: Any):
        self.sim = sim
        self._mounts: Dict[str, FileSystem] = {}

    @staticmethod
    def _norm(path: str) -> str:
        if not path.startswith("/"):
            raise InvalidArgument("paths must be absolute: %r" % path)
        norm = posixpath.normpath(path)
        return norm

    def mount(self, prefix: str, fs: FileSystem) -> None:
        """Mount ``fs`` at ``prefix`` (shadowing any existing mount)."""
        self._mounts[self._norm(prefix)] = fs

    def unmount(self, prefix: str) -> FileSystem:
        """Remove and return the file system mounted at ``prefix``."""
        try:
            return self._mounts.pop(self._norm(prefix))
        except KeyError:
            raise NotMounted(prefix) from None

    def mounts(self) -> Dict[str, FileSystem]:
        """A copy of the mount table."""
        return dict(self._mounts)

    def resolve(self, path: str) -> Tuple[FileSystem, str]:
        """Map an absolute path to ``(file system, fs-relative path)``."""
        norm = self._norm(path)
        best = None
        for prefix in self._mounts:
            if norm == prefix or norm.startswith(prefix.rstrip("/") + "/"):
                if best is None or len(prefix) > len(best):
                    best = prefix
        if best is None:
            raise NotMounted(path)
        rel = norm[len(best):].lstrip("/")
        return self._mounts[best], rel
