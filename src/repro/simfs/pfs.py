"""Parallel file system: files striped across storage servers.

Models the LANL parallel file system of §4.1.2: clients stripe file data
round-robin (PanFS/Lustre style) over ``n_servers`` storage servers, each
backed by a RAID-5 array (the paper's 252 drives divided among servers,
64 KiB RAID stripe).  The behaviours that matter for the paper's figures:

* per-operation costs (RPC, locks, seeks) amortize as block size grows —
  the "bandwidth as a logarithmic function of block size" of Figure 2;
* shared-file writes (N-to-1) pay extent-lock serialization that private
  files (N-to-N) do not;
* strided shared writes land non-sequentially on each server and pay a
  seek per operation, which non-strided and N-to-N writes avoid.

Large operations fan out to multiple servers in parallel (one child
process per server chunk), so big blocks also gain server parallelism
within a single call — the second reason bandwidth climbs with block size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Set, Tuple

from repro.cluster.network import Network
from repro.des.events import AllOf
from repro.des.resources import Resource
from repro.obs.tracepoints import STATE as _TELEMETRY
from repro.simfs.blockdev import DiskParams
from repro.simfs.raid import Raid5Geometry, Raid5Model
from repro.simfs.vfs import CallerContext, FileSystem, Inode
from repro.units import KiB

__all__ = ["ParallelFS", "PFSParams"]


@dataclass(frozen=True)
class PFSParams:
    """Parallel file system shape and cost parameters.

    Attributes
    ----------
    n_servers:
        Storage servers data is striped over.
    stripe_width:
        File striping unit across servers (bytes).
    server_threads:
        Concurrent requests each server services.
    rpc_overhead:
        Server CPU per request.
    drives_per_server:
        Spindles in each server's RAID-5 array (252 total in the paper).
    raid_stripe_width:
        RAID-5 stripe unit inside each server (the paper's 64 KiB).
    extent_lock_time:
        Serialization cost per write to a *shared* file (distributed
        extent/range lock management).  Charged only when more than one
        client node has the file open — the N-to-1 patterns.
    disk:
        Per-spindle characteristics.
    """

    n_servers: int = 8
    stripe_width: int = 64 * KiB
    server_threads: int = 4
    rpc_overhead: float = 30e-6
    drives_per_server: int = 31
    raid_stripe_width: int = 64 * KiB
    extent_lock_time: float = 200e-6
    disk: DiskParams = DiskParams()

    def __post_init__(self) -> None:
        if self.n_servers < 1:
            raise ValueError("need at least one storage server")
        if self.stripe_width <= 0:
            raise ValueError("stripe_width must be positive")
        if self.server_threads < 1:
            raise ValueError("server_threads must be >= 1")


class _Server:
    """One storage server: request queue + analytic RAID-5 array."""

    def __init__(self, sim: Any, index: int, params: PFSParams):
        self.index = index
        self.queue = Resource(
            sim, capacity=params.server_threads, name="oss%d" % index
        )
        self.raid = Raid5Model(
            Raid5Geometry(params.drives_per_server, params.raid_stripe_width),
            params.disk,
        )
        # (ino, client) -> next sequential server-local offset
        self.stream_pos: Dict[Tuple[int, int], int] = {}
        self.bytes_served = 0
        self.ops_served = 0
        self.seeks = 0


class ParallelFS(FileSystem):
    """A striped, multi-server parallel file system."""

    fstype = "pfs"
    parallel_compatible = True

    def __init__(
        self,
        sim: Any,
        network: Network,
        params: Optional[PFSParams] = None,
        name: str = "",
    ):
        super().__init__(sim, name=name)
        self.network = network
        self.params = params or PFSParams()
        self.servers = [_Server(sim, i, self.params) for i in range(self.params.n_servers)]
        # Metadata server: one queue for all namespace operations.
        self.mds = Resource(sim, capacity=2, name="mds:%s" % (name or "pfs"))
        # ino -> client node indices that have it open (shared-file detection)
        self._openers: Dict[int, Set[int]] = {}
        # ino -> extent lock token
        self._locks: Dict[int, Resource] = {}

    # -- striping arithmetic -----------------------------------------------------

    def map_stripes(self, offset: int, nbytes: int) -> List[Tuple[int, int, int]]:
        """Split a file extent into ``(server, server_offset, nbytes)`` chunks.

        Round-robin striping: file stripe unit ``u`` lives on server
        ``u % n_servers`` at server-local unit index ``u // n_servers``.
        Adjacent units on the same server are merged into one chunk.
        """
        if offset < 0 or nbytes < 0:
            raise ValueError("negative offset/length")
        w = self.params.stripe_width
        n = self.params.n_servers
        raw: List[Tuple[int, int, int]] = []
        pos = offset
        end = offset + nbytes
        while pos < end:
            unit, in_unit = divmod(pos, w)
            run = min(w - in_unit, end - pos)
            server = unit % n
            server_off = (unit // n) * w + in_unit
            raw.append((server, server_off, run))
            pos += run
        # Merge adjacent same-server chunks (contiguous server offsets).
        merged: List[Tuple[int, int, int]] = []
        for server, soff, run in raw:
            if merged and merged[-1][0] == server and merged[-1][1] + merged[-1][2] == soff:
                s, o, r = merged[-1]
                merged[-1] = (s, o, r + run)
            else:
                merged.append((server, soff, run))
        return merged

    # -- open/close bookkeeping ---------------------------------------------------

    def op_open(self, ctx: CallerContext, relpath: str, flags: int, mode: int = 0o644):
        """Open, additionally tracking which clients share the file."""
        ino = yield from super().op_open(ctx, relpath, flags, mode)
        self._openers.setdefault(ino, set()).add(ctx.node.index)
        return ino

    def note_close(self, ctx: CallerContext, ino: int) -> None:
        """Called by the OS layer when a process closes the file."""
        openers = self._openers.get(ino)
        if openers is not None:
            openers.discard(ctx.node.index)
            if not openers:
                self._openers.pop(ino, None)
                self._locks.pop(ino, None)

    def _is_shared(self, ino: int) -> bool:
        return len(self._openers.get(ino, ())) > 1

    # -- timing hooks ---------------------------------------------------------------

    def _meta_service(self, ctx: CallerContext, op: str) -> Generator[Any, Any, None]:
        # Metadata is an RPC to the metadata server.
        col = _TELEMETRY.collector
        if col is not None:
            col.pfs_meta_rpc()
        yield from self.network.transfer(ctx.node.nic, 128)
        yield self.mds.acquire()
        try:
            yield self.params.rpc_overhead
        finally:
            self.mds.release()
        yield self.network.config.latency

    def _server_chunk(
        self,
        ctx: CallerContext,
        server: _Server,
        ino: int,
        server_off: int,
        nbytes: int,
        write: bool,
    ) -> Generator[Any, Any, None]:
        """One chunk on one server: wire transfer + RAID service."""
        # Payload moves over the client's NIC (requests for writes,
        # replies for reads use the same link in this model).
        yield from self.network.transfer(ctx.node.nic, 128 + nbytes)
        yield server.queue.acquire()
        try:
            yield self.params.rpc_overhead
            stream = (ino, ctx.node.index)
            sequential = server.stream_pos.get(stream) == server_off
            server.stream_pos[stream] = server_off + nbytes
            if not sequential:
                server.seeks += 1
            t = server.raid.service_time(server_off, nbytes, sequential)
            col = _TELEMETRY.collector
            if col is not None:
                col.pfs_chunk(
                    server.queue.name,
                    self.sim.now,
                    nbytes,
                    sequential,
                    server.queue.in_use,
                )
            if t > 0:
                yield t
            server.bytes_served += nbytes
            server.ops_served += 1
        finally:
            server.queue.release()
            col = _TELEMETRY.collector
            if col is not None:
                col.metrics.sample(
                    "pfs.%s.in_use" % server.queue.name,
                    self.sim.now,
                    server.queue.in_use,
                )

    def _data_service(
        self, ctx: CallerContext, inode: Inode, offset: int, nbytes: int, write: bool
    ) -> Generator[Any, Any, None]:
        # Shared-file writes serialize briefly on a distributed extent lock.
        if write and self._is_shared(inode.ino):
            lock = self._locks.get(inode.ino)
            if lock is None:
                lock = self._locks[inode.ino] = Resource(
                    self.sim, capacity=1, name="extlock:%d" % inode.ino
                )
            col = _TELEMETRY.collector
            t_lock = self.sim.now if col is not None else 0.0
            yield lock.acquire()
            try:
                yield self.params.extent_lock_time
            finally:
                lock.release()
            if col is not None:
                col.pfs_lock_wait(self.sim.now - t_lock)
        chunks = self.map_stripes(offset, nbytes)
        if len(chunks) == 1:
            server, soff, run = chunks[0]
            yield from self._server_chunk(
                ctx, self.servers[server], inode.ino, soff, run, write
            )
            return
        # Fan out to servers in parallel, one child activity per chunk.
        completions = []
        for server, soff, run in chunks:
            proc = self.sim.spawn(
                self._server_chunk(ctx, self.servers[server], inode.ino, soff, run, write),
                name="pfs-chunk:s%d" % server,
            )
            completions.append(proc.completion)
        yield AllOf(completions)

    def _write_service(self, ctx, inode, offset, nbytes, stream):
        yield from self._data_service(ctx, inode, offset, nbytes, write=True)

    def _read_service(self, ctx, inode, offset, nbytes, stream):
        yield from self._data_service(ctx, inode, offset, nbytes, write=False)

    # -- introspection ----------------------------------------------------------------

    def server_stats(self) -> List[Dict[str, int]]:
        """Per-server byte/op/seek counters (for tests and reports)."""
        return [
            {
                "server": s.index,
                "bytes_served": s.bytes_served,
                "ops_served": s.ops_served,
                "seeks": s.seeks,
            }
            for s in self.servers
        ]
