"""Cluster-wide fault injection: schedules, the fault plane, chaos runs.

``repro.faults`` generalizes the single-filesystem
:class:`~repro.simfs.faults.FaultInjectingFS` into a simulator-wide
*fault plane*: one declarative, seeded :class:`FaultSchedule` drives node
crashes, network partitions, link degradation and disk fault storms
through hooks in the DES kernel, the cluster network, the simulated OS
and the VFS — deterministically, off named RNG streams, so fault runs
stay byte-identical across ``jobs=1``/``jobs=N``/warm-cache.
"""

from repro.faults.chaos import (
    CHAOS_FRAMEWORKS,
    CHAOS_MATRICES,
    ChaosScenario,
    FaultRunOutcome,
    build_chaos_specs,
    execute_fault_spec,
    render_chaos_report,
    run_chaos_matrix,
    run_traced_with_faults,
    run_under_faults,
)
from repro.faults.corrupt import (
    bit_flip,
    crash_truncation_corpus,
    crashed_rank_blob,
    torn_write,
)
from repro.faults.plane import FaultPlane, ScheduledFaultFS, install_fault_plane
from repro.faults.schedule import (
    FOREVER,
    DiskErrorStorm,
    DiskSlowdown,
    FaultSchedule,
    LinkDegradation,
    NetworkPartition,
    NodeCrash,
)

__all__ = [
    "FOREVER",
    "NodeCrash",
    "NetworkPartition",
    "LinkDegradation",
    "DiskSlowdown",
    "DiskErrorStorm",
    "FaultSchedule",
    "FaultPlane",
    "ScheduledFaultFS",
    "install_fault_plane",
    "ChaosScenario",
    "CHAOS_FRAMEWORKS",
    "CHAOS_MATRICES",
    "FaultRunOutcome",
    "run_under_faults",
    "run_traced_with_faults",
    "execute_fault_spec",
    "build_chaos_specs",
    "run_chaos_matrix",
    "render_chaos_report",
    "torn_write",
    "bit_flip",
    "crash_truncation_corpus",
    "crashed_rank_blob",
]
