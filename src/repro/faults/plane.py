"""Execution of a :class:`~repro.faults.schedule.FaultSchedule`.

The :class:`FaultPlane` is the one object the whole simulator consults
about injected misbehaviour.  ``install()`` wires it into a built
testbed: it hangs itself off ``Simulator.fault_plane`` (the hook the
network, the syscall dispatcher and the simfs layer check), schedules the
crash/restart firings, and interposes a :class:`ScheduledFaultFS` over
every mount a disk fault targets.

Determinism contract
--------------------
The plane is *static-window* wherever possible: "is node N down at time
t?", "is this link degraded?", "is this mount inside a storm window?" are
pure functions of the immutable schedule and ``sim.now`` — no state, no
draws.  The only stochastic faults (packet drops, EIO storms) draw from
two dedicated named RNG streams, ``faults.net`` and ``faults.disk``, and
only *inside* their windows.  Named streams are independent by
construction (:class:`~repro.des.rand.RandomStreams`), so a fault run
never perturbs the cluster's clock draws or any other subsystem — and a
no-fault run with the plane installed is byte-identical to one without
it.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from repro.errors import FaultError, NodeCrashed
from repro.faults.schedule import (
    FOREVER,
    DiskErrorStorm,
    DiskSlowdown,
    FaultSchedule,
    LinkDegradation,
    NetworkPartition,
    NodeCrash,
)
from repro.obs.tracepoints import STATE as _TELEMETRY
from repro.simfs.faults import InjectedIOError
from repro.simfs.stackable import StackableFS

__all__ = ["FaultPlane", "ScheduledFaultFS", "install_fault_plane"]


def _in_window(windows: List[Tuple[float, float]], now: float) -> Optional[float]:
    """The end of the window containing ``now``, or None."""
    for start, end in windows:
        if start <= now < end:
            return end
    return None


class FaultPlane:
    """Live executor of one fault schedule on one simulated machine."""

    def __init__(self, schedule: FaultSchedule):
        self.schedule = schedule
        self.sim: Any = None
        #: (sim_time, kind, detail) in firing order — the deterministic
        #: fault history the chaos report and tests compare byte-for-byte.
        self.fault_log: List[Tuple[float, str, str]] = []
        #: injection counters ("node.crashes", "net.drops", ...)
        self.counters: Dict[str, int] = {}
        self._nodes: List[Any] = []
        self._nic_owner: Dict[int, int] = {}
        self._rank_procs: Dict[int, List[Tuple[Any, int]]] = {}
        self._crash_listeners: List[Callable[[int, float, List[int]], None]] = []
        self._down_windows = schedule.node_down_windows()
        self._partition_windows: Dict[int, List[Tuple[float, float]]] = {}
        for ev in schedule.select(NetworkPartition):
            for node in ev.nodes:
                self._partition_windows.setdefault(node, []).append(ev.window)
        self._link_events: Dict[int, List[LinkDegradation]] = {}
        for ev in schedule.select(LinkDegradation):
            self._link_events.setdefault(ev.node, []).append(ev)
        self._net_rng: Any = None
        self._installed = False

    # -- wiring ------------------------------------------------------------

    def install(self, cluster: Any, vfs: Any = None) -> "FaultPlane":
        """Attach this plane to a built cluster (and optionally its VFS).

        Idempotence is deliberately *not* supported: a plane binds to one
        simulator's RNG streams and event queue.  Build a fresh plane per
        run — exactly as testbeds are built fresh per measurement.
        """
        if self._installed:
            raise FaultError("fault plane is already installed")
        self._installed = True
        self.sim = cluster.sim
        self.sim.fault_plane = self
        self._net_rng = self.sim.random.stream("faults.net")
        self._nodes = list(cluster.nodes)
        for node in self._nodes:
            self._nic_owner[id(node.nic)] = node.index
        for ev in self.schedule.events:
            if isinstance(ev, NodeCrash) and ev.node >= len(self._nodes):
                raise FaultError(
                    "NodeCrash targets node %d but the cluster has %d node(s)"
                    % (ev.node, len(self._nodes))
                )
            self.sim.schedule(ev.at - self.sim.now, self._fire, ev)
            _start, end = ev.window
            if end != FOREVER:
                self.sim.schedule(end - self.sim.now, self._fire_end, ev)
        if vfs is not None:
            self._wrap_mounts(vfs)
        return self

    def _wrap_mounts(self, vfs: Any) -> None:
        by_mount: Dict[str, List[Any]] = {}
        for ev in self.schedule.select(DiskSlowdown, DiskErrorStorm):
            by_mount.setdefault(ev.mount, []).append(ev)
        for mount, events in sorted(by_mount.items()):
            lower, rel = vfs.resolve(mount)
            if rel:
                raise FaultError(
                    "disk fault mount %r is not a mount point (resolved "
                    "inside %r)" % (mount, lower.name)
                )
            slowdowns = [e for e in events if isinstance(e, DiskSlowdown)]
            storms = [e for e in events if isinstance(e, DiskErrorStorm)]
            vfs.mount(mount, ScheduledFaultFS(self.sim, lower, self, mount,
                                              slowdowns, storms))

    def track_rank(self, node_index: int, des_proc: Any, rank: int) -> None:
        """Register a rank's DES process for crash interruption."""
        self._rank_procs.setdefault(node_index, []).append((des_proc, rank))

    def register_crash_listener(
        self, fn: Callable[[int, float, List[int]], None]
    ) -> None:
        """``fn(node_index, at, ranks)`` runs when a node crash fires —
        the hook tracing frameworks use to model in-flight data loss."""
        self._crash_listeners.append(fn)

    # -- static-window queries (the hot-path API) --------------------------

    def node_down(self, node_index: int) -> bool:
        """Is the node inside a crash window right now?"""
        windows = self._down_windows.get(node_index)
        if not windows:
            return False
        return _in_window(windows, self.sim.now) is not None

    def network_gate(self, sender_nic: Any, nbytes: int) -> Generator[Any, Any, None]:
        """Sub-activity run at the head of every network transfer.

        Applies, in order: partition stall (until heal; forever-parks on a
        named completion when the partition never heals, so the queue
        drain turns it into a DeadlockError naming the partition), then
        link degradation (extra latency, then drop/retransmit backoff
        drawing from ``faults.net``).  Outside every window this yields
        nothing and draws nothing.
        """
        node = self._nic_owner.get(id(sender_nic))
        if node is None:
            return
        sim = self.sim
        windows = self._partition_windows.get(node)
        if windows:
            heal = _in_window(windows, sim.now)
            if heal is not None:
                self._count("net.partition_stalls")
                self._inject("partition_stall")
                if heal == FOREVER:
                    # Never settles: the simulated TCP stack retries until
                    # the cluster gives up — i.e. a loud DeadlockError.
                    yield sim.completion("partition:node%d" % node)
                else:
                    yield heal - sim.now
        events = self._link_events.get(node)
        if events:
            now = sim.now
            for ev in events:
                start, end = ev.window
                if not (start <= now < end):
                    continue
                if ev.extra_latency > 0:
                    self._count("net.latency_spikes")
                    self._inject("latency_spike")
                    yield ev.extra_latency
                if ev.drop_rate > 0.0:
                    rng = self._net_rng
                    backoff = ev.retransmit_timeout
                    for _attempt in range(ev.max_retransmits):
                        if rng.random() >= ev.drop_rate:
                            break
                        self._count("net.drops")
                        self._inject("packet_drop")
                        yield backoff
                        backoff *= 2.0

    # -- event firing ------------------------------------------------------

    def _fire(self, ev: Any) -> None:
        if isinstance(ev, NodeCrash):
            node = self._nodes[ev.node]
            node.up = False
            self._count("node.crashes")
            tracked = self._rank_procs.get(ev.node, ())
            ranks = sorted(rank for proc, rank in tracked if proc.alive)
            self._log(
                "node_crash",
                "node %d (%s) crashed; killed rank(s) %s"
                % (ev.node, node.hostname,
                   ", ".join(str(r) for r in ranks) or "none"),
            )
            for proc, rank in tracked:
                if proc.alive:
                    proc.interrupt(
                        NodeCrashed(
                            "node %d (%s) crashed at t=%g while rank %d was "
                            "running" % (ev.node, node.hostname, self.sim.now, rank)
                        )
                    )
            for listener in self._crash_listeners:
                listener(ev.node, self.sim.now, ranks)
        elif isinstance(ev, NetworkPartition):
            self._log(
                "partition",
                "node(s) %s cut off the fabric"
                % ", ".join(str(n) for n in ev.nodes),
            )
            self._count("net.partitions")
        elif isinstance(ev, LinkDegradation):
            self._log(
                "link_degraded",
                "node %d link: +%gs latency, drop_rate=%g"
                % (ev.node, ev.extra_latency, ev.drop_rate),
            )
            self._count("net.degradations")
        elif isinstance(ev, DiskSlowdown):
            self._log(
                "disk_slowdown",
                "%s: +%gs per op for %gs" % (ev.mount, ev.extra_latency, ev.duration),
            )
            self._count("disk.slowdowns")
        elif isinstance(ev, DiskErrorStorm):
            self._log(
                "disk_error_storm",
                "%s: EIO rate %g for %gs" % (ev.mount, ev.error_rate, ev.duration),
            )
            self._count("disk.storms")

    def _fire_end(self, ev: Any) -> None:
        if isinstance(ev, NodeCrash):
            node = self._nodes[ev.node]
            node.up = True
            self._log("node_restart", "node %d (%s) back up" % (ev.node, node.hostname))
        elif isinstance(ev, NetworkPartition):
            self._log(
                "heal", "node(s) %s rejoined the fabric"
                % ", ".join(str(n) for n in ev.nodes),
            )
        elif isinstance(ev, LinkDegradation):
            self._log("link_restored", "node %d link restored" % ev.node)
        elif isinstance(ev, DiskSlowdown):
            self._log("disk_slowdown_end", "%s back to full speed" % ev.mount)
        elif isinstance(ev, DiskErrorStorm):
            self._log("disk_error_storm_end", "%s storm passed" % ev.mount)

    # -- bookkeeping -------------------------------------------------------

    def _log(self, kind: str, detail: str) -> None:
        self.fault_log.append((self.sim.now, kind, detail))
        col = _TELEMETRY.collector
        if col is not None:
            col.fault_event(kind, self.sim.now)

    def _count(self, key: str) -> None:
        self.counters[key] = self.counters.get(key, 0) + 1

    def _inject(self, kind: str) -> None:
        col = _TELEMETRY.collector
        if col is not None:
            col.fault_injection(kind)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready deterministic summary: log + counters."""
        return {
            "schedule": self.schedule.describe(),
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "log": [
                {"t": t, "kind": kind, "detail": detail}
                for (t, kind, detail) in self.fault_log
            ],
        }


class ScheduledFaultFS(StackableFS):
    """Disk-layer executor of the plane's slowdown/storm windows.

    The window-scoped cousin of
    :class:`~repro.simfs.faults.FaultInjectingFS` and subject to the same
    draw-order contract, simplified by the static windows: slowdowns are
    draw-free (pure added latency), and each storm draws exactly one coin
    per eligible operation, storms in schedule order, from the dedicated
    ``faults.disk`` stream.  Outside every window the hook draws nothing,
    so adding a disk fault late in a run cannot shift the history before
    its window opens.
    """

    fstype = "chaosfs"

    def __init__(
        self,
        sim: Any,
        lower: Any,
        plane: FaultPlane,
        mount: str,
        slowdowns: List[DiskSlowdown],
        storms: List[DiskErrorStorm],
    ):
        super().__init__(sim, lower, name="chaos(%s)" % lower.name)
        self.plane = plane
        self.mount = mount
        self.slowdowns = list(slowdowns)
        self.storms = list(storms)
        self._rng = sim.random.stream("faults.disk")

    def before_op(self, ctx: Any, op: str, args: tuple) -> Generator[Any, Any, None]:
        """Apply active slowdown windows, then storm coins, then pass through."""
        now = self.sim.now
        for ev in self.slowdowns:
            start, end = ev.window
            if start <= now < end and (not ev.ops or op in ev.ops):
                self.plane._count("disk.delays")
                self.plane._inject("disk_delay")
                yield ev.extra_latency
        for ev in self.storms:
            start, end = ev.window
            if start <= now < end and (not ev.ops or op in ev.ops):
                if self._rng.random() < ev.error_rate:
                    self.plane._count("disk.errors")
                    self.plane._inject("disk_error")
                    raise InjectedIOError(
                        "storm-injected fault in %s on %s" % (op, self.mount)
                    )
        yield 0


def install_fault_plane(schedule: FaultSchedule, cluster: Any,
                        vfs: Any = None) -> FaultPlane:
    """Build a plane for ``schedule`` and install it on ``cluster``."""
    return FaultPlane(schedule).install(cluster, vfs)
