"""Crash-shaped trace corruption: what a node crash does to capture files.

When the fault plane kills a node mid-job, the trace bytes that node was
writing end wherever the last flush landed: torn mid-record, and — on
real disks losing power — occasionally bit-flipped in the unsynced tail.
This module manufactures exactly those artifacts for the fuzz suite:

* :func:`torn_write` / :func:`bit_flip` — the two primitive corruptions;
* :func:`crash_truncation_corpus` — a deterministic, seeded corpus of
  torn/flipped variants of one encoded trace;
* :func:`crashed_rank_blob` — the end-to-end path: run a small traced job
  under a :class:`~repro.faults.schedule.NodeCrash`, take the crashed
  rank's partial capture out of the framework's bundle, and encode it —
  a *real* crash-truncated binary trace produced via the fault plane,
  not a synthetic approximation.
"""

from __future__ import annotations

from typing import Any, List, Optional

import numpy as np

from repro.errors import FaultError

__all__ = [
    "torn_write",
    "bit_flip",
    "crash_truncation_corpus",
    "crashed_rank_blob",
]


def torn_write(blob: bytes, keep: int) -> bytes:
    """The first ``keep`` bytes of ``blob`` — a write cut by a crash."""
    if not (0 <= keep <= len(blob)):
        raise FaultError("torn_write keep=%r outside [0, %d]" % (keep, len(blob)))
    return blob[:keep]


def bit_flip(blob: bytes, byte_index: int, mask: int = 0x01) -> bytes:
    """``blob`` with ``mask`` XORed into one byte — unsynced-tail damage."""
    if not (0 <= byte_index < len(blob)):
        raise FaultError("bit_flip index %r outside blob of %d bytes"
                         % (byte_index, len(blob)))
    if not (1 <= mask <= 0xFF):
        raise FaultError("mask must be a non-zero byte value")
    out = bytearray(blob)
    out[byte_index] ^= mask
    return bytes(out)


def crash_truncation_corpus(blob: bytes, seed: int = 0, n: int = 32) -> List[bytes]:
    """A deterministic corpus of crash-shaped corruptions of ``blob``.

    Half the variants are torn writes (cut points drawn over the full
    length, so most land mid-record), half are torn writes with one bit
    flipped in the surviving prefix.  Same ``blob``/``seed``/``n`` →
    byte-identical corpus, so hypothesis-free tests stay reproducible.
    """
    if not blob:
        raise FaultError("cannot build a corpus from an empty blob")
    rng = np.random.default_rng(seed)
    corpus: List[bytes] = []
    for i in range(n):
        cut = int(rng.integers(1, len(blob)))
        torn = torn_write(blob, cut)
        if i % 2 == 1 and len(torn) > 1:
            idx = int(rng.integers(0, len(torn)))
            mask = int(rng.integers(1, 256))
            torn = bit_flip(torn, idx, mask)
        corpus.append(torn)
    return corpus


def crashed_rank_blob(
    crash_node: int = 1,
    crash_at: float = 0.01,
    nprocs: int = 4,
    seed: int = 0,
    framework: str = "lanl-trace",
    workload_args: Optional[dict] = None,
) -> bytes:
    """A real crash-truncated binary trace, produced via the fault plane.

    Runs a small traced ``mpi_io_test`` job with a node crash, lets the
    framework's ``on_node_crash`` hook drop the crashed rank's unflushed
    tail, and returns that rank's surviving events encoded in the binary
    trace format — the artifact a post-mortem analysis tool would be
    handed.  Deterministic for fixed arguments.
    """
    from repro.faults.chaos import run_traced_with_faults
    from repro.faults.schedule import FaultSchedule, NodeCrash
    from repro.harness.figures import paper_testbed
    from repro.trace.binary_format import encode_trace_file
    from repro.units import KiB

    schedule = FaultSchedule.of(
        NodeCrash(at=crash_at, node=crash_node), name="crash-capture"
    )
    args = dict(
        workload_args
        or {"block_size": 64 * KiB, "nobj": 8, "path": "/pfs/crash.out"}
    )
    outcome = run_traced_with_faults(
        schedule,
        framework,
        "mpi_io_test",
        args,
        config=paper_testbed(seed=seed, nprocs=nprocs),
        nprocs=nprocs,
        seed=seed,
        horizon=120.0,
    )
    bundle = outcome.bundle
    if bundle is None:
        raise FaultError("crashed run produced no trace bundle")
    crashed_rank = crash_node % nprocs
    tf = bundle.files.get(crashed_rank)
    if tf is None or not tf.events:
        raise FaultError(
            "rank %d has no surviving capture — crash fired before any "
            "events were recorded?" % crashed_rank
        )
    return encode_trace_file(tf)
