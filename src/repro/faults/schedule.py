"""Declarative, deterministic cluster-wide fault schedules.

A :class:`FaultSchedule` is a frozen, pickle-safe plan of *when* the
simulated machine misbehaves: node crashes (with optional restart),
network partitions (with optional heal), per-link packet drop and latency
spikes, and disk slowdown / EIO storms.  It generalizes the single-layer
:class:`~repro.simfs.faults.FaultPlan` into one composable description
covering every layer the simulator models.

Schedules carry no randomness themselves — event *times and windows* are
explicit, and the stochastic parts (packet-drop coins, EIO coins) are
drawn from the owning simulator's named RNG streams by the
:class:`~repro.faults.plane.FaultPlane` that executes the schedule.  That
split is what keeps fault runs byte-identical across ``jobs=1``,
``jobs=N`` and warm-cache replay: the schedule hashes into the run-cache
key, and the draws come from seed-derived streams no other subsystem
perturbs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields as dataclass_fields
from typing import Any, Dict, FrozenSet, Iterable, Optional, Tuple

from repro.errors import FaultError

__all__ = [
    "NodeCrash",
    "NetworkPartition",
    "LinkDegradation",
    "DiskSlowdown",
    "DiskErrorStorm",
    "FaultSchedule",
    "event_json",
]

#: Window end used for events that never recover (no restart / no heal).
FOREVER = float("inf")


def _check_at(at: float) -> None:
    if at < 0:
        raise FaultError("fault time must be non-negative, got %r" % (at,))


def _check_window(duration: Optional[float]) -> None:
    if duration is not None and duration <= 0:
        raise FaultError("fault duration must be positive, got %r" % (duration,))


@dataclass(frozen=True)
class NodeCrash:
    """Kill one node at ``at``; optionally bring it back ``restart_after``
    seconds later.

    While down, every syscall dispatched on the node raises
    :class:`~repro.errors.NodeCrashed`, and rank processes placed on it
    are interrupted immediately — in-flight work (including a tracer's
    unflushed buffers) is lost, which is exactly the behaviour the
    framework-under-faults tests probe.
    """

    at: float
    node: int
    restart_after: Optional[float] = None

    def __post_init__(self) -> None:
        _check_at(self.at)
        _check_window(self.restart_after)
        if self.node < 0:
            raise FaultError("node index must be non-negative")

    @property
    def window(self) -> Tuple[float, float]:
        end = FOREVER if self.restart_after is None else self.at + self.restart_after
        return (self.at, end)


@dataclass(frozen=True)
class NetworkPartition:
    """Cut the listed nodes off the fabric at ``at``; heal ``heal_after``
    seconds later (never, when ``None``).

    Transfers from a partitioned node's NIC stall until the heal time.
    An unhealed partition stalls them forever — which the simulator turns
    into a loud :class:`~repro.errors.DeadlockError` naming the
    partition, never a silent hang.
    """

    at: float
    nodes: Tuple[int, ...]
    heal_after: Optional[float] = None

    def __post_init__(self) -> None:
        _check_at(self.at)
        _check_window(self.heal_after)
        object.__setattr__(self, "nodes", tuple(sorted(set(self.nodes))))
        if not self.nodes:
            raise FaultError("partition needs at least one node")

    @property
    def window(self) -> Tuple[float, float]:
        end = FOREVER if self.heal_after is None else self.at + self.heal_after
        return (self.at, end)


@dataclass(frozen=True)
class LinkDegradation:
    """Degrade one node's link for a window: added latency and/or packet
    drop.

    ``drop_rate`` is the per-message probability that the first
    transmission is lost; each loss costs a retransmit timeout that
    doubles per attempt (TCP-style backoff), drawn against the
    ``faults.net`` RNG stream.
    """

    at: float
    duration: float
    node: int
    extra_latency: float = 0.0
    drop_rate: float = 0.0
    retransmit_timeout: float = 2e-3
    max_retransmits: int = 8

    def __post_init__(self) -> None:
        _check_at(self.at)
        _check_window(self.duration)
        if self.node < 0:
            raise FaultError("node index must be non-negative")
        if self.extra_latency < 0:
            raise FaultError("extra_latency must be non-negative")
        if not (0.0 <= self.drop_rate <= 1.0):
            raise FaultError("drop_rate must be in [0, 1]")
        if self.retransmit_timeout <= 0:
            raise FaultError("retransmit_timeout must be positive")
        if self.max_retransmits < 1:
            raise FaultError("max_retransmits must be >= 1")

    @property
    def window(self) -> Tuple[float, float]:
        return (self.at, self.at + self.duration)


@dataclass(frozen=True)
class DiskSlowdown:
    """Add deterministic per-operation latency on one mount for a window
    (a degraded-RAID / hung-controller storm).  No RNG draws — slowdowns
    never shift another fault's coin sequence."""

    at: float
    duration: float
    extra_latency: float
    mount: str = "/pfs"
    ops: FrozenSet[str] = frozenset()

    def __post_init__(self) -> None:
        _check_at(self.at)
        _check_window(self.duration)
        if self.extra_latency <= 0:
            raise FaultError("extra_latency must be positive")
        object.__setattr__(self, "ops", frozenset(self.ops))

    @property
    def window(self) -> Tuple[float, float]:
        return (self.at, self.at + self.duration)


@dataclass(frozen=True)
class DiskErrorStorm:
    """Fail eligible operations on one mount with EIO during a window.

    One coin per eligible op, drawn from the ``faults.disk`` stream —
    the documented draw order is schedule order, after any (draw-free)
    slowdowns.
    """

    at: float
    duration: float
    error_rate: float
    mount: str = "/pfs"
    ops: FrozenSet[str] = frozenset({"read", "write"})

    def __post_init__(self) -> None:
        _check_at(self.at)
        _check_window(self.duration)
        if not (0.0 < self.error_rate <= 1.0):
            raise FaultError("error_rate must be in (0, 1]")
        object.__setattr__(self, "ops", frozenset(self.ops))

    @property
    def window(self) -> Tuple[float, float]:
        return (self.at, self.at + self.duration)


#: Every event type a schedule may carry (used for validation).
_EVENT_TYPES = (NodeCrash, NetworkPartition, LinkDegradation, DiskSlowdown, DiskErrorStorm)


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered, immutable set of fault events for one run.

    Hashable and pickle-safe by construction, so it can ride on a
    :class:`~repro.harness.parallel.RunSpec` (and therefore into the
    run-cache key) unchanged.  ``name`` labels the scenario in reports.
    """

    events: Tuple[object, ...] = ()
    name: str = ""

    def __post_init__(self) -> None:
        events = tuple(self.events)
        for ev in events:
            if not isinstance(ev, _EVENT_TYPES):
                raise FaultError(
                    "unknown fault event %r (expected one of %s)"
                    % (ev, ", ".join(t.__name__ for t in _EVENT_TYPES))
                )
        # Canonical order: by time, then by a stable type/detail key, so two
        # schedules listing the same events compare (and hash) equal.
        object.__setattr__(
            self, "events", tuple(sorted(events, key=lambda e: (e.at, repr(e))))
        )

    @staticmethod
    def of(*events: object, name: str = "") -> "FaultSchedule":
        """Convenience constructor: ``FaultSchedule.of(ev1, ev2, ...)``."""
        return FaultSchedule(events=tuple(events), name=name)

    @property
    def is_empty(self) -> bool:
        return not self.events

    def select(self, *types: type) -> Tuple[object, ...]:
        """The schedule's events of the given type(s), in time order."""
        return tuple(e for e in self.events if isinstance(e, types))

    def validate_horizon(self, horizon: Optional[float]) -> None:
        """Check every event fires inside a simulated-time horizon.

        A fault scheduled past the run's horizon would silently never
        fire — almost always a mis-specified scenario; fail it loudly.
        """
        if horizon is None:
            return
        late = [e for e in self.events if e.at >= horizon]
        if late:
            raise FaultError(
                "fault event(s) scheduled at/after the %gs horizon would "
                "never fire: %s" % (horizon, "; ".join(repr(e) for e in late))
            )

    def node_down_windows(self) -> dict:
        """node index -> list of (start, end) down windows, time-ordered."""
        windows: dict = {}
        for ev in self.select(NodeCrash):
            windows.setdefault(ev.node, []).append(ev.window)
        return windows

    def describe(self) -> str:
        """One-line human summary ("2 events: NodeCrash@0.1, ...")."""
        if self.is_empty:
            return "no faults"
        parts = ["%s@%g" % (type(e).__name__, e.at) for e in self.events]
        return "%d event(s): %s" % (len(self.events), ", ".join(parts))

    def to_json(self) -> Dict[str, Any]:
        """The schedule as plain JSON, suitable for archive metadata.

        Diagnosis tools read this back from a run's manifest to surface
        the injected faults as root-cause candidates, so the shape is
        stable: ``{"name", "events": [{"type", "window", <fields>}]}``
        with an unbounded window end rendered as ``None`` (JSON has no
        infinity).
        """
        return {
            "name": self.name,
            "events": [event_json(ev) for ev in self.events],
        }


def event_json(ev: object) -> Dict[str, Any]:
    """One fault event as plain JSON: type name, window, and fields."""
    if not isinstance(ev, _EVENT_TYPES):
        raise FaultError("not a fault event: %r" % (ev,))
    out: Dict[str, Any] = {"type": type(ev).__name__}
    start, end = ev.window  # type: ignore[attr-defined]
    out["window"] = [start, None if end == FOREVER else end]
    for f in dataclass_fields(ev):
        value = getattr(ev, f.name)
        if isinstance(value, frozenset):
            value = sorted(value)
        elif isinstance(value, tuple):
            value = list(value)
        out[f.name] = value
    return out
