"""The chaos/conformance harness: fault matrices against the frameworks.

One chaos *point* is the taxonomy's §3.1 overhead protocol executed under
a :class:`~repro.faults.schedule.FaultSchedule`: a fresh testbed untraced
and an identical fresh testbed traced, both with the same fault plane
installed.  Every point is bounded by a simulated-time horizon — a run
that cannot finish raises :class:`~repro.errors.SimTimeoutError` (or
:class:`~repro.errors.DeadlockError` if the queue drains first), never a
silent hang — and timeouts are retried with an exponentially doubled
horizon before a point is annotated as failed.

A chaos *matrix* is a named set of scenarios crossed with the paper's
three frameworks.  ``repro chaos --matrix smoke`` runs the acceptance
matrix: node crash, (healed) network partition, disk slowdown storm, and
an EIO storm, each against LANL-Trace, Tracefs and //TRACE, plus a
no-fault baseline per framework for the overhead deltas.  Points route
through :func:`~repro.harness.parallel.run_sweep`, so the matrix fans out
over worker processes and memoizes in the run cache with the same
byte-identity guarantees as the figure sweeps.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    DeadlockError,
    FaultError,
    NodeCrashed,
    ReproError,
    SimOSError,
    SimTimeoutError,
)
from repro.faults.plane import FaultPlane
from repro.faults.schedule import (
    DiskErrorStorm,
    DiskSlowdown,
    FaultSchedule,
    NetworkPartition,
    NodeCrash,
)
from repro.harness.parallel import PointResult, RunSpec, RunStats, run_sweep
from repro.harness.testbed import TestbedConfig, build_testbed
from repro.obs.metrics import canonical_json
from repro.units import KiB

__all__ = [
    "ChaosScenario",
    "CHAOS_MATRICES",
    "FaultRunOutcome",
    "run_under_faults",
    "run_traced_with_faults",
    "execute_fault_spec",
    "build_chaos_specs",
    "run_chaos_matrix",
    "render_chaos_report",
]

#: The frameworks a matrix exercises by default — the paper's three.
CHAOS_FRAMEWORKS: Tuple[str, ...] = ("lanl-trace", "tracefs", "ptrace")

#: Ranks per chaos point.  Small on purpose: scenarios probe *behaviour*
#: under faults, not the Figure 2-4 performance envelope.
CHAOS_NPROCS = 4

#: Simulated-time budget per attempt; doubled on each timeout retry.
CHAOS_HORIZON = 30.0


@dataclass(frozen=True)
class ChaosScenario:
    """One named fault schedule with its execution policy.

    ``workload``/``workload_args``/``nprocs``, when set, override the
    matrix defaults (the paper's ``mpi_io_test`` smoke shape) — this is
    how zoo scenarios become chaos rows: same fault plane, different
    application.  ``workload_args`` is a sorted kv-tuple so the scenario
    stays hashable and pickle-stable.
    """

    name: str
    schedule: FaultSchedule
    horizon: float = CHAOS_HORIZON
    retries: int = 1
    description: str = ""
    workload: Optional[str] = None
    workload_args: Tuple[Tuple[str, Any], ...] = ()
    nprocs: Optional[int] = None

    def effective_workload(self) -> str:
        """The registered workload this scenario runs (matrix default: mpi_io_test)."""
        return self.workload or "mpi_io_test"

    def effective_args(self) -> Dict[str, Any]:
        """The workload arguments, falling back to the smoke shape."""
        return dict(self.workload_args) if self.workload_args else _smoke_workload_args()

    def effective_nprocs(self) -> int:
        """Ranks for this scenario's points (matrix default: CHAOS_NPROCS)."""
        return self.nprocs if self.nprocs is not None else CHAOS_NPROCS


def _smoke_scenarios() -> Tuple[ChaosScenario, ...]:
    # Times are calibrated against the smoke workload below: the untraced
    # run takes ~0.13s simulated, the slowest traced run ~0.36s, so
    # windows opening at 0.02-0.05s hit the I/O phase of every run.
    return (
        ChaosScenario(
            name="baseline",
            schedule=FaultSchedule(name="baseline"),
            description="no faults — the overhead-delta reference",
        ),
        ChaosScenario(
            name="node-crash",
            schedule=FaultSchedule.of(
                NodeCrash(at=0.05, node=1), name="node-crash"
            ),
            description="node 1 dies mid-I/O; its rank's capture is lost",
        ),
        ChaosScenario(
            name="partition",
            schedule=FaultSchedule.of(
                NetworkPartition(at=0.03, nodes=(2,), heal_after=0.04),
                name="partition",
            ),
            description="node 2 cut off the fabric for 40ms, then healed",
        ),
        ChaosScenario(
            name="disk-storm",
            schedule=FaultSchedule.of(
                DiskSlowdown(at=0.02, duration=0.08, extra_latency=2e-3,
                             mount="/pfs"),
                name="disk-storm",
            ),
            description="the PFS adds 2ms to every op for 80ms",
        ),
        ChaosScenario(
            name="eio-storm",
            schedule=FaultSchedule.of(
                DiskErrorStorm(at=0.03, duration=0.05, error_rate=0.25,
                               mount="/pfs"),
                name="eio-storm",
            ),
            description="25% of PFS reads/writes fail with EIO for 50ms",
        ),
    )


def _zoo_scenarios() -> Tuple[ChaosScenario, ...]:
    """Every zoo scenario as a (baseline, disk-storm) chaos pair.

    The zoo registry is imported lazily to keep the module dependency
    one-way (zoo depends on the harness, never on the fault matrices).
    """
    from repro.zoo.registry import SCENARIOS

    rows: List[ChaosScenario] = []
    for zc in SCENARIOS.values():
        args = tuple(sorted(zc.args(smoke=True).items()))
        rows.append(
            ChaosScenario(
                name="%s/baseline" % zc.name,
                schedule=FaultSchedule(name="baseline"),
                description="no faults — %s reference" % zc.name,
                workload=zc.workload,
                workload_args=args,
                nprocs=zc.nprocs,
            )
        )
        rows.append(
            ChaosScenario(
                name="%s/disk-storm" % zc.name,
                schedule=FaultSchedule.of(
                    DiskSlowdown(at=0.02, duration=0.08, extra_latency=2e-3,
                                 mount="/pfs"),
                    name="disk-storm",
                ),
                description="PFS adds 2ms/op for 80ms under %s" % zc.name,
                workload=zc.workload,
                workload_args=args,
                nprocs=zc.nprocs,
            )
        )
    return tuple(rows)


#: matrix name -> scenario tuple.  ``smoke`` is the CI acceptance matrix;
#: ``zoo`` crosses every registered zoo scenario with a no-fault baseline
#: and a disk storm.
CHAOS_MATRICES: Dict[str, Tuple[ChaosScenario, ...]] = {
    "smoke": _smoke_scenarios(),
}


def _chaos_matrix(matrix: str) -> Tuple[ChaosScenario, ...]:
    """Resolve a matrix by name; the zoo matrix materializes lazily."""
    if matrix == "zoo" and "zoo" not in CHAOS_MATRICES:
        CHAOS_MATRICES["zoo"] = _zoo_scenarios()
    try:
        return CHAOS_MATRICES[matrix]
    except KeyError:
        raise FaultError(
            "unknown chaos matrix %r (known: %s)"
            % (matrix, ", ".join(sorted(set(CHAOS_MATRICES) | {"zoo"})))
        ) from None


def _smoke_workload_args() -> Dict[str, Any]:
    return {"path": "/pfs/chaos.out", "block_size": 64 * KiB, "nobj": 16}


def chaos_testbed(seed: int = 0) -> TestbedConfig:
    """The small calibrated machine every chaos point runs on."""
    from repro.harness.figures import paper_testbed

    return paper_testbed(seed=seed, nprocs=CHAOS_NPROCS)


# -- single-run execution ----------------------------------------------------


@dataclass
class FaultRunOutcome:
    """One application run under a fault plane, classified.

    ``status`` is one of ``completed``, ``node-crash``, ``io-error``,
    ``deadlock``, ``timeout``, ``failed``.  ``stats`` always carries the
    numbers up to completion or failure detection; ``faults`` is the
    plane's deterministic snapshot (log + counters); ``bundle`` is the
    framework's trace bundle when one was attached (present even for
    failed runs — partial captures are the interesting artifact).
    """

    status: str
    stats: RunStats
    error: Optional[str] = None
    faults: Dict[str, Any] = field(default_factory=dict)
    bundle: Any = None
    killed_ranks: List[int] = field(default_factory=list)
    pending_ranks: List[int] = field(default_factory=list)
    #: Exported ``repro/telemetry/v1`` payload when the run was captured
    #: inside a telemetry session (partial up to the failure for runs
    #: that crashed/timed out — the interesting capture).
    telemetry: Optional[Dict[str, Any]] = None


def _classify(exc: BaseException) -> Tuple[str, str]:
    if isinstance(exc, NodeCrashed):
        return "node-crash", str(exc)
    if isinstance(exc, SimOSError):
        return "io-error", "%s: %s" % (type(exc).__name__, exc)
    return "failed", "%s: %s" % (type(exc).__name__, exc)


def run_under_faults(
    schedule: FaultSchedule,
    framework_factory: Optional[Callable[[], Any]],
    workload: Callable,
    workload_args: Dict[str, Any],
    config: Optional[TestbedConfig] = None,
    nprocs: Optional[int] = None,
    seed: Optional[int] = None,
    horizon: Optional[float] = None,
) -> FaultRunOutcome:
    """One bounded application run on a fresh testbed with faults installed.

    Drives the simulator itself (``mpirun(run=False)``) so the framework
    lifecycle completes even when ranks die: crash listeners fire,
    ``finalize`` still assembles the (partial) bundle, and every failure
    mode is classified instead of propagating.
    """
    from repro.simmpi.runtime import mpirun

    schedule.validate_horizon(horizon)
    tb = build_testbed(config, seed=seed)
    plane = FaultPlane(schedule).install(tb.cluster, tb.vfs)
    framework = None
    app = workload
    setup = None
    if framework_factory is not None:
        framework = framework_factory()
        framework.prepare(tb)
        app = framework.wrap_app(workload)
        setup = framework.setup_rank
        plane.register_crash_listener(framework.on_node_crash)

    job = mpirun(
        tb.cluster, tb.vfs, app, nprocs=nprocs, args=workload_args,
        setup=setup, run=False,
    )
    sim = tb.sim
    start = job.start_time
    status, error = "completed", None
    try:
        sim.run_fast(until=(start + horizon) if horizon is not None else None)
    except DeadlockError as exc:
        root = None
        for proc in job.des_processes:
            if proc.completion.done and proc.completion.exception is not None:
                root = proc.completion.exception
                break
        if root is not None:
            status, error = _classify(root)
        else:
            status, error = "deadlock", str(exc).splitlines()[0]
    else:
        failed = [
            proc.completion.exception
            for proc in job.des_processes
            if proc.completion.done and proc.completion.exception is not None
        ]
        pending = [r for r, p in enumerate(job.des_processes) if p.alive]
        if failed:
            status, error = _classify(failed[0])
        elif pending:
            status = "timeout"
            error = str(SimTimeoutError(horizon or 0.0, pending))
    job.end_time = max(job.rank_end_times) if status == "completed" else sim.now

    bundle = None
    if framework is not None:
        try:
            bundle = framework.finalize(job)
        except ReproError:
            bundle = None

    from repro.harness.experiment import _total_payload

    killed = sorted(
        r
        for r, proc in enumerate(job.des_processes)
        if proc.completion.done
        and isinstance(proc.completion.exception, NodeCrashed)
    )
    pending_ranks = [r for r, p in enumerate(job.des_processes) if p.alive]
    return FaultRunOutcome(
        status=status,
        stats=RunStats(
            elapsed=job.elapsed,
            bytes_moved=_total_payload(job),
            events_executed=sim.events_executed,
        ),
        error=error,
        faults=plane.snapshot(),
        bundle=bundle,
        killed_ranks=killed,
        pending_ranks=pending_ranks,
    )


def run_traced_with_faults(
    schedule: FaultSchedule,
    framework: str,
    workload: str,
    workload_args: Dict[str, Any],
    config: Optional[TestbedConfig] = None,
    nprocs: Optional[int] = None,
    seed: Optional[int] = None,
    horizon: Optional[float] = None,
) -> FaultRunOutcome:
    """Name-based convenience wrapper around :func:`run_under_faults`."""
    from repro.harness.parallel import WORKLOADS, as_framework_spec

    spec = as_framework_spec(framework)
    return run_under_faults(
        schedule,
        spec.build,
        WORKLOADS[workload],
        workload_args,
        config=config,
        nprocs=nprocs,
        seed=seed,
        horizon=horizon,
    )


def _attempt_with_retries(
    schedule: FaultSchedule,
    framework_factory: Optional[Callable[[], Any]],
    workload: Callable,
    workload_args: Dict[str, Any],
    config: Optional[TestbedConfig],
    nprocs: Optional[int],
    seed: Optional[int],
    horizon: Optional[float],
    retries: int,
    telemetry: bool = False,
) -> Tuple[FaultRunOutcome, int]:
    """Run with the exponential-backoff timeout policy.

    Only ``timeout`` retries (with a doubled horizon): the run needed
    more simulated time, so give it more.  Crashes, injected errors and
    deadlocks are deterministic — re-running reproduces them exactly, so
    they terminate the attempt loop immediately.

    With ``telemetry`` each attempt runs inside its own fresh session
    (so a retried attempt's half-history never contaminates the final
    capture) and the returned outcome carries the exported payload.
    """
    attempts = 0
    budget = horizon
    while True:
        attempts += 1
        if telemetry:
            from repro.obs.tracepoints import session

            with session() as col:
                outcome = run_under_faults(
                    schedule, framework_factory, workload, workload_args,
                    config=config, nprocs=nprocs, seed=seed, horizon=budget,
                )
                outcome.telemetry = col.export(end_time=outcome.stats.elapsed)
        else:
            outcome = run_under_faults(
                schedule, framework_factory, workload, workload_args,
                config=config, nprocs=nprocs, seed=seed, horizon=budget,
            )
        if outcome.status != "timeout" or attempts > retries:
            return outcome, attempts
        budget = (budget or CHAOS_HORIZON) * 2.0


def _bundle_metadata(bundle: Any) -> Optional[Dict[str, Any]]:
    meta = getattr(bundle, "metadata", None)
    if not meta:
        return None
    try:
        return json.loads(canonical_json(meta))
    except TypeError:
        return {str(k): str(v) for k, v in sorted(meta.items(), key=lambda kv: str(kv[0]))}


def execute_fault_spec(spec: RunSpec) -> PointResult:
    """Measure one chaos point: untraced + traced under the same schedule.

    The worker entry :func:`~repro.harness.parallel.execute_spec` routes
    here whenever a spec carries ``faults`` or ``sim_timeout``.  A run
    that does not complete yields a failed point: zeroed-overhead stats
    up to the failure, ``error`` annotated, full fault history in
    ``chaos`` — the figure pipeline renders it as a FAILED row instead of
    dropping the figure.
    """
    t0 = time.perf_counter()
    schedule = spec.faults if spec.faults is not None else FaultSchedule()
    if not isinstance(schedule, FaultSchedule):
        raise FaultError(
            "RunSpec.faults must be a FaultSchedule, got %r" % (schedule,)
        )
    workload = spec.workload_fn()
    args = spec.args_dict()
    untraced, u_attempts = _attempt_with_retries(
        schedule, None, workload, args,
        spec.config, spec.nprocs, spec.seed, spec.sim_timeout, spec.retries,
        telemetry=spec.telemetry,
    )
    traced, t_attempts = _attempt_with_retries(
        schedule, spec.framework.build, workload, args,
        spec.config, spec.nprocs, spec.seed, spec.sim_timeout, spec.retries,
        telemetry=spec.telemetry,
    )
    error = None
    if untraced.status != "completed":
        error = "untraced: %s (%s)" % (untraced.status, untraced.error)
    elif traced.status != "completed":
        error = "traced: %s (%s)" % (traced.status, traced.error)
    chaos = {
        "scenario": schedule.name or "baseline",
        "schedule": schedule.describe(),
        "untraced": {
            "status": untraced.status,
            "error": untraced.error,
            "elapsed": untraced.stats.elapsed,
            "killed_ranks": untraced.killed_ranks,
            "pending_ranks": untraced.pending_ranks,
            "attempts": u_attempts,
            "faults": untraced.faults,
        },
        "traced": {
            "status": traced.status,
            "error": traced.error,
            "elapsed": traced.stats.elapsed,
            "killed_ranks": traced.killed_ranks,
            "pending_ranks": traced.pending_ranks,
            "attempts": t_attempts,
            "faults": traced.faults,
            "bundle_metadata": _bundle_metadata(traced.bundle),
        },
    }
    from repro.harness.parallel import ingest_spec_bundle

    run_id = ingest_spec_bundle(
        spec,
        traced.bundle,
        extra={
            "kind": "chaos",
            "scenario": schedule.name or "baseline",
            "status": traced.status,
            # The structured schedule rides in the manifest so diagnosis
            # can surface injected faults as root-cause candidates.
            "faults": schedule.to_json(),
        },
    )
    telemetry = None
    if spec.telemetry:
        telemetry = {"untraced": untraced.telemetry, "traced": traced.telemetry}
    return PointResult(
        params=spec.workload_args,
        untraced=untraced.stats,
        traced=traced.stats,
        wall_seconds=time.perf_counter() - t0,
        telemetry=telemetry,
        error=error,
        attempts=max(u_attempts, t_attempts),
        # JSON round trip so the payload compares equal before and after a
        # run-cache round trip (the telemetry byte-identity idiom).
        chaos=json.loads(canonical_json(chaos)),
        store_run_id=run_id,
    )


# -- matrix execution --------------------------------------------------------


def build_chaos_specs(
    matrix: str = "smoke",
    frameworks: Sequence[str] = CHAOS_FRAMEWORKS,
    seed: int = 0,
    store: Optional[str] = None,
    store_codec: str = "v1",
) -> List[RunSpec]:
    """One spec per (framework, scenario), framework-major order.

    ``store`` makes each scenario archive its traced (possibly partial)
    bundle into the TraceBank there, tagged with the scenario name and
    run status.  Scenarios carrying their own workload (zoo rows) run it
    on their own cluster shape; the rest run the ``mpi_io_test`` smoke
    shape.
    """
    scenarios = _chaos_matrix(matrix)
    config = chaos_testbed(seed=seed)
    return [
        RunSpec.create(
            fw,
            sc.effective_workload(),
            sc.effective_args(),
            config=config,
            nprocs=sc.effective_nprocs(),
            seed=seed,
            faults=sc.schedule,
            sim_timeout=sc.horizon,
            retries=sc.retries,
            store=store,
            store_codec=store_codec,
        )
        for fw in frameworks
        for sc in scenarios
    ]


def run_chaos_matrix(
    matrix: str = "smoke",
    frameworks: Sequence[str] = CHAOS_FRAMEWORKS,
    seed: int = 0,
    jobs: int = 1,
    cache: Optional[Any] = None,
    progress: Optional[Callable] = None,
    store: Optional[str] = None,
    store_codec: str = "v1",
) -> Dict[str, Any]:
    """Run a named matrix and assemble the survival/overhead report.

    The report is plain canonical-JSON-ready data — byte-identical across
    ``jobs=1``/``jobs=N``/warm-cache (host wall-clock is reported in the
    sweep stats only, never inside the per-scenario records).  ``store``
    archives each scenario's traced bundle; rows then carry the archived
    ``store_run_id`` (content-derived, so still byte-stable).
    """
    scenarios = _chaos_matrix(matrix)
    specs = build_chaos_specs(
        matrix, frameworks=frameworks, seed=seed, store=store,
        store_codec=store_codec,
    )
    result = run_sweep(specs, jobs=jobs, cache=cache, progress=progress)

    rows: List[Dict[str, Any]] = []
    # Baselines are keyed (framework, workload): a matrix mixing
    # workloads (the zoo matrix) gets one no-fault reference per
    # application, not one global reference.
    baselines: Dict[Tuple[str, str], float] = {}
    idx = 0
    for fw in frameworks:
        for sc in scenarios:
            point = result.points[idx]
            idx += 1
            chaos = point.chaos or {}
            survived = point.error is None
            overhead = point.elapsed_overhead if survived else None
            if survived and sc.schedule.is_empty:
                baselines[(fw, sc.effective_workload())] = overhead
            row = {
                "framework": fw,
                "scenario": sc.name,
                "workload": sc.effective_workload(),
                "survived": survived,
                "status": {
                    "untraced": chaos.get("untraced", {}).get("status"),
                    "traced": chaos.get("traced", {}).get("status"),
                },
                "error": point.error,
                "attempts": point.attempts,
                "elapsed_overhead": overhead,
                "overhead_delta": None,  # filled below once baselines known
                "fault_counters": chaos.get("traced", {}).get("faults", {}).get(
                    "counters", {}
                ),
                "bundle_metadata": chaos.get("traced", {}).get("bundle_metadata"),
                "store_run_id": point.store_run_id,
                "cached": point.cached,
            }
            rows.append(row)
    for row in rows:
        base = baselines.get((row["framework"], row["workload"]))
        if row["elapsed_overhead"] is not None and base is not None:
            row["overhead_delta"] = row["elapsed_overhead"] - base
    report = {
        "schema": "repro/chaos/v1",
        "matrix": matrix,
        "seed": seed,
        "nprocs": CHAOS_NPROCS,
        "frameworks": list(frameworks),
        "scenarios": [
            {"name": sc.name, "description": sc.description,
             "schedule": sc.schedule.describe(), "horizon": sc.horizon,
             "retries": sc.retries, "workload": sc.effective_workload(),
             "nprocs": sc.effective_nprocs()}
            for sc in scenarios
        ],
        "rows": rows,
        "summary": {
            "points": len(rows),
            "survived": sum(1 for r in rows if r["survived"]),
            "failed_annotated": sum(1 for r in rows if not r["survived"]),
            "retried": sum(1 for r in rows if r["attempts"] > 1),
        },
    }
    return json.loads(canonical_json(report))


def render_chaos_report(report: Dict[str, Any]) -> str:
    """The matrix as a text table: survival + overhead delta per cell."""
    lines = [
        "Chaos matrix %r: %d point(s), %d survived, %d annotated failure(s)"
        % (
            report["matrix"],
            report["summary"]["points"],
            report["summary"]["survived"],
            report["summary"]["failed_annotated"],
        ),
        "%-12s %-12s %-10s %12s %12s  %s"
        % ("framework", "scenario", "survived", "elapsed ovh", "ovh delta", "outcome"),
        "-" * 92,
    ]
    for row in report["rows"]:
        if row["survived"]:
            ovh = "%.1f%%" % (100.0 * row["elapsed_overhead"])
            delta = (
                "%+.1f%%" % (100.0 * row["overhead_delta"])
                if row["overhead_delta"] is not None
                else "-"
            )
            outcome = "completed"
        else:
            ovh, delta = "-", "-"
            outcome = "FAILED: %s" % row["error"]
        lines.append(
            "%-12s %-12s %-10s %12s %12s  %s"
            % (
                row["framework"],
                row["scenario"],
                "yes" if row["survived"] else "no",
                ovh,
                delta,
                outcome,
            )
        )
    return "\n".join(lines) + "\n"
