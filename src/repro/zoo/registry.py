"""The workload zoo's declarative scenario registry.

A :class:`ZooScenario` is everything the harness needs to run one modern
I/O scenario as a first-class sweep point: the registered workload
generator, a default cluster shape, full-scale and smoke-scale parameter
sets, the documented parameter space, and the expected I/O signature
(which class of op — read, write, or metadata — should dominate a traced
run).  ``scenario.spec(...)`` lowers all of that onto the existing
:class:`~repro.harness.parallel.RunSpec` contract, so a zoo scenario
composes with everything built on ``run_sweep``: process-pool fan-out,
the run cache, ``--store`` archiving, fault schedules, telemetry, and
``obs diagnose`` over the archived bundles — none of it zoo-specific.

The four built-ins cover the taxonomy's missing modern shapes:
checkpoint/restart through a burst-buffer tier, an ML-training epoch of
shuffled random reads over a sharded dataset, a log-structured
append-heavy service with compaction, and a create/stat/unlink metadata
storm (the no-payload regime where per-event tracing cost dominates —
the paper's §4.1 small-transfer cliff, taken to its limit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import InvalidArgument
from repro.harness.parallel import RunSpec, WORKLOADS
from repro.harness.testbed import TestbedConfig
from repro.units import KiB

__all__ = [
    "ZooScenario",
    "SCENARIOS",
    "ZOO_NPROCS",
    "get",
    "names",
    "register",
    "zoo_testbed",
]

#: Ranks per zoo point.  Matches the chaos harness's shape so zoo rows
#: slot into fault matrices unchanged.
ZOO_NPROCS = 4


def zoo_testbed(seed: int = 0, nprocs: int = ZOO_NPROCS) -> TestbedConfig:
    """The calibrated machine zoo scenarios run on by default."""
    from repro.harness.figures import paper_testbed

    return paper_testbed(seed=seed, nprocs=nprocs)


def _kv(mapping: Mapping[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    return tuple(sorted(mapping.items()))


@dataclass(frozen=True)
class ZooScenario:
    """One registered scenario: workload + shape + parameters + signature.

    ``base_args`` is the full-scale parameter set, ``smoke_args`` the
    overrides applied on top of it for CI-speed runs.  ``param_space``
    documents the tunable knobs (name → one-line description) for
    ``repro zoo describe``.  ``signature`` states the expected I/O
    signature of a faithful run — currently the dominant op class
    (``read``/``write``/``metadata``) plus whether the scenario moves
    payload bytes at all; the matrix checks it against the archived
    trace's actual profile.
    """

    name: str
    title: str
    description: str
    workload: str
    base_args: Tuple[Tuple[str, Any], ...] = ()
    smoke_args: Tuple[Tuple[str, Any], ...] = ()
    param_space: Tuple[Tuple[str, str], ...] = ()
    signature: Tuple[Tuple[str, Any], ...] = ()
    nprocs: int = ZOO_NPROCS
    framework: str = "lanl-trace"

    def args(self, smoke: bool = False, overrides: Optional[Mapping[str, Any]] = None) -> Dict[str, Any]:
        """The effective workload arguments at the requested scale."""
        merged = dict(self.base_args)
        if smoke:
            merged.update(dict(self.smoke_args))
        if overrides:
            merged.update(overrides)
        return merged

    def signature_dict(self) -> Dict[str, Any]:
        """The declared I/O signature as a plain dict."""
        return dict(self.signature)

    def spec(
        self,
        seed: int = 0,
        smoke: bool = False,
        framework: Optional[str] = None,
        overrides: Optional[Mapping[str, Any]] = None,
        config: Optional[TestbedConfig] = None,
        telemetry: bool = False,
        faults: Optional[Any] = None,
        sim_timeout: Optional[float] = None,
        retries: int = 0,
        store: Optional[str] = None,
        store_codec: str = "v1",
    ) -> RunSpec:
        """Lower this scenario to a pickle-safe harness :class:`RunSpec`."""
        return RunSpec.create(
            framework or self.framework,
            self.workload,
            self.args(smoke=smoke, overrides=overrides),
            config=config if config is not None else zoo_testbed(seed, self.nprocs),
            nprocs=self.nprocs,
            seed=seed,
            telemetry=telemetry,
            faults=faults,
            sim_timeout=sim_timeout,
            retries=retries,
            store=store,
            store_codec=store_codec,
        )

    def describe(self) -> Dict[str, Any]:
        """Plain-JSON description for ``repro zoo describe`` and reports."""
        return {
            "name": self.name,
            "title": self.title,
            "description": self.description,
            "workload": self.workload,
            "framework": self.framework,
            "nprocs": self.nprocs,
            "base_args": dict(self.base_args),
            "smoke_args": dict(self.smoke_args),
            "param_space": {k: v for k, v in self.param_space},
            "signature": self.signature_dict(),
        }


#: scenario name -> spec, in registration order.
SCENARIOS: Dict[str, ZooScenario] = {}


def register(scenario: ZooScenario) -> ZooScenario:
    """Add a scenario to the registry; the name must be new and resolvable."""
    if scenario.name in SCENARIOS:
        raise InvalidArgument("zoo scenario %r already registered" % scenario.name)
    if scenario.workload not in WORKLOADS:
        raise InvalidArgument(
            "zoo scenario %r names unregistered workload %r (known: %s)"
            % (scenario.name, scenario.workload, ", ".join(sorted(WORKLOADS)))
        )
    SCENARIOS[scenario.name] = scenario
    return scenario


def get(name: str) -> ZooScenario:
    """Look up a scenario by name; unknown names list the registry."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise InvalidArgument(
            "unknown zoo scenario %r (known: %s)"
            % (name, ", ".join(names()) or "none")
        ) from None


def names() -> List[str]:
    """Registered scenario names, in registration order."""
    return list(SCENARIOS)


# -- built-in scenarios ------------------------------------------------------

register(
    ZooScenario(
        name="ckpt-tiered",
        title="Checkpoint/restart through a burst-buffer tier",
        description=(
            "Each rank writes per-phase checkpoints to node-local scratch, "
            "fsyncs, drains them to the PFS, frees the buffer, and re-reads "
            "the final checkpoint (restart).  Write-dominant, bursty, "
            "barrier-synchronized — the classic HPC defensive-I/O shape."
        ),
        workload="zoo_checkpoint_tiered",
        base_args=_kv({
            "phases": 3,
            "blocks_per_phase": 8,
            "block_size": 128 * KiB,
            "compute_time": 0.02,
            "restart": True,
        }),
        smoke_args=_kv({
            "phases": 2,
            "blocks_per_phase": 2,
            "block_size": 32 * KiB,
            "compute_time": 0.005,
        }),
        param_space=(
            ("phases", "checkpoint epochs (compute + absorb + drain)"),
            ("blocks_per_phase", "pwrite blocks per checkpoint"),
            ("block_size", "bytes per block"),
            ("compute_time", "simulated compute seconds per phase"),
            ("restart", "re-read the last PFS checkpoint at the end"),
        ),
        signature=_kv({"dominant": "write", "payload": True}),
    )
)

register(
    ZooScenario(
        name="ml-epoch",
        title="ML-training epoch: shuffled reads over a sharded dataset",
        description=(
            "Ranks shard a dataset onto the PFS, then issue shuffled "
            "random preads across *all* ranks' shards — the cross-rank "
            "random-read storm a shuffling data loader produces.  "
            "Read-dominant, small random transfers."
        ),
        workload="zoo_ml_epoch",
        base_args=_kv({
            "shards_per_rank": 2,
            "shard_blocks": 8,
            "block_size": 128 * KiB,
            "samples_per_rank": 96,
            "sample_size": 32 * KiB,
            "shuffle_seed": 0,
        }),
        smoke_args=_kv({
            "shards_per_rank": 1,
            "shard_blocks": 2,
            "block_size": 32 * KiB,
            "samples_per_rank": 8,
            "sample_size": 16 * KiB,
        }),
        param_space=(
            ("shards_per_rank", "dataset shards each rank writes"),
            ("shard_blocks", "sequential blocks per shard"),
            ("block_size", "bytes per shard block"),
            ("samples_per_rank", "shuffled preads per rank per epoch"),
            ("sample_size", "bytes per sample read"),
            ("shuffle_seed", "per-epoch shuffle seed (deterministic)"),
        ),
        signature=_kv({"dominant": "read", "payload": True}),
    )
)

register(
    ZooScenario(
        name="log-append",
        title="Log-structured append-heavy service with compaction",
        description=(
            "Per-rank segment logs filled with O_APPEND record writes and "
            "periodic fsync commit points; closed segments are read back, "
            "rewritten compacted, and unlinked.  Append-dominant with a "
            "read-modify-write compaction tail."
        ),
        workload="zoo_log_append",
        base_args=_kv({
            "segments": 6,
            "appends_per_segment": 16,
            "record_size": 32 * KiB,
            "fsync_every": 4,
            "compact_every": 2,
        }),
        smoke_args=_kv({
            "segments": 2,
            "appends_per_segment": 4,
            "record_size": 8 * KiB,
            "fsync_every": 2,
        }),
        param_space=(
            ("segments", "log segments appended per rank"),
            ("appends_per_segment", "O_APPEND records per segment"),
            ("record_size", "bytes per record"),
            ("fsync_every", "records between fsync commit points"),
            ("compact_every", "closed segments per compaction pass"),
        ),
        signature=_kv({"dominant": "write", "payload": True}),
    )
)

register(
    ZooScenario(
        name="md-storm",
        title="Metadata storm: create/stat/unlink over a directory tree",
        description=(
            "Zero-byte create+close, stat, unlink over per-rank subdirs — "
            "no payload at all, so per-event tracing cost is the whole "
            "overhead.  The §4.1 small-transfer cliff taken to its limit."
        ),
        workload="zoo_metadata_storm",
        base_args=_kv({
            "n_files": 64,
            "subdirs": 4,
            "keep_every": 4,
        }),
        smoke_args=_kv({
            "n_files": 8,
            "subdirs": 2,
        }),
        param_space=(
            ("n_files", "files created per rank"),
            ("subdirs", "per-rank subdirectories the files spread over"),
            ("keep_every", "every Nth file survives (the rest are unlinked)"),
        ),
        signature=_kv({"dominant": "metadata", "payload": False}),
    )
)
