"""The zoo matrix: run every registered scenario through the §3.1 harness.

``run_zoo_matrix`` lowers each scenario to a :class:`RunSpec`, fans the
points over :func:`~repro.harness.parallel.run_sweep` (process pool +
run cache + optional TraceBank archiving — nothing zoo-specific), and
assembles a ``repro/zoo/v1`` report:

* one deterministic **row** per scenario — simulated elapsed for both
  runs, the §3.1 overhead, the payload report aggregated over ranks, the
  archived run id, and the scenario's *signature check* (does the traced
  run's compiled op profile actually show the declared dominant class?);
* a separate **execution** section for host-clock facts (wall seconds,
  cache hits) that legitimately differ between runs.

The rows contain no host clock and no machine state, so
``canonical_json(report["rows"])`` is byte-identical across ``jobs=1``/
``jobs=N`` and cold/warm cache — the determinism contract the zoo tests
pin, same as the figure sweeps.

With ``replay_check=True`` (requires ``store``) each archived scenario
is immediately replayed from its run id through
:func:`~repro.zoo.replaypipe.replay_pipeline` and the row carries the
fidelity verdict — the capture→archive→replay acceptance loop as one
flag.  The replay wall-clock rate feeds the ``zoo_replay_events_per_sec``
baseline-gate metric (``bench_points()``).
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.errors import InvalidArgument
from repro.harness.parallel import PointResult, RunSpec, run_sweep
from repro.obs.metrics import canonical_json
from repro.replay.fidelity import schedule_profile
from repro.replay.pseudoapp import build_pseudoapp
from repro.trace.events import EventLayer
from repro.zoo.registry import SCENARIOS, ZooScenario, get

__all__ = [
    "build_zoo_specs",
    "check_signature",
    "run_zoo_matrix",
    "render_zoo_report",
    "bench_points",
]

ZOO_SCHEMA = "repro/zoo/v1"


def _select(scenarios: Optional[Sequence[str]]) -> List[ZooScenario]:
    if scenarios is None:
        return list(SCENARIOS.values())
    if not scenarios:
        raise InvalidArgument("empty zoo scenario selection")
    return [get(name) for name in scenarios]


def build_zoo_specs(
    scenarios: Optional[Sequence[str]] = None,
    smoke: bool = False,
    seed: int = 0,
    framework: Optional[str] = None,
    telemetry: bool = False,
    store: Optional[str] = None,
    store_codec: str = "v1",
) -> List[RunSpec]:
    """One spec per selected scenario, registry order."""
    return [
        sc.spec(
            seed=seed,
            smoke=smoke,
            framework=framework,
            telemetry=telemetry,
            store=store,
            store_codec=store_codec,
        )
        for sc in _select(scenarios)
    ]


def check_signature(
    scenario: ZooScenario, profile: Dict[str, Any]
) -> List[str]:
    """Violations of the scenario's declared I/O signature (empty = ok).

    ``profile`` is a :func:`~repro.replay.fidelity.schedule_profile` of
    the traced run's compiled op schedule.  The check is deliberately
    coarse — dominance, not exact mixes — so honest parameter changes do
    not trip it, while a scenario that silently stopped reading (or
    started moving payload it should not) does.
    """
    sig = scenario.signature_dict()
    classes = profile["classes"]
    violations: List[str] = []
    dominant = sig.get("dominant")
    if dominant in ("read", "write"):
        other = "write" if dominant == "read" else "read"
        if classes[dominant]["bytes"] <= 0:
            violations.append("expected %s payload, saw none" % dominant)
        elif classes[dominant]["bytes"] < classes[other]["bytes"]:
            violations.append(
                "expected %s-dominant payload, saw %s=%d < %s=%d bytes"
                % (dominant, dominant, classes[dominant]["bytes"],
                   other, classes[other]["bytes"])
            )
    elif dominant == "metadata":
        if classes["metadata"]["count"] <= 0:
            violations.append("expected metadata ops, saw none")
        data_ops = classes["read"]["count"] + classes["write"]["count"]
        if classes["metadata"]["count"] <= data_ops:
            violations.append(
                "expected metadata-dominant op mix, saw metadata=%d <= data=%d"
                % (classes["metadata"]["count"], data_ops)
            )
    if sig.get("payload") is False and profile["total_bytes"] > 0:
        violations.append(
            "expected zero payload, saw %d bytes" % profile["total_bytes"]
        )
    if sig.get("payload") is True and profile["total_bytes"] <= 0:
        violations.append("expected payload bytes, saw none")
    return violations


def _signature_cell(
    scenario: ZooScenario, point: PointResult, store: Optional[str]
) -> Optional[Dict[str, Any]]:
    """The row's signature check, from the archived traced bundle.

    Only possible when the point archived its bundle (``--store``): the
    archive is the ground truth the check reads — the same bytes a later
    replay will compile.
    """
    if store is None or point.store_run_id is None:
        return None
    from repro.store.bank import TraceBank

    bundle = TraceBank(store).load_run_bundle(point.store_run_id)
    app = build_pseudoapp(bundle, layer=EventLayer.SYSCALL)
    profile = schedule_profile(app)
    violations = check_signature(scenario, profile)
    return {
        "expected": scenario.signature_dict(),
        "observed": {
            cls: dict(profile["classes"][cls]) for cls in profile["classes"]
        },
        "violations": violations,
        "ok": not violations,
    }


def run_zoo_matrix(
    scenarios: Optional[Sequence[str]] = None,
    smoke: bool = False,
    seed: int = 0,
    jobs: int = 1,
    cache: Optional[Any] = None,
    progress: Optional[Callable] = None,
    framework: Optional[str] = None,
    store: Optional[str] = None,
    store_codec: str = "v1",
    replay_check: bool = False,
    replay_timing: str = "afap",
) -> Dict[str, Any]:
    """Run the selected scenarios and assemble the zoo report."""
    if replay_check and store is None:
        raise InvalidArgument("replay_check requires a --store archive")
    selected = _select(scenarios)
    specs = build_zoo_specs(
        [sc.name for sc in selected],
        smoke=smoke,
        seed=seed,
        framework=framework,
        store=store,
        store_codec=store_codec,
    )
    t0 = time.perf_counter()
    result = run_sweep(specs, jobs=jobs, cache=cache, progress=progress)

    rows: List[Dict[str, Any]] = []
    replay_bench: List[Dict[str, Any]] = []
    for sc, spec, point in zip(selected, specs, result.points):
        row: Dict[str, Any] = {
            "scenario": sc.name,
            "title": sc.title,
            "workload": sc.workload,
            "framework": spec.framework.name,
            "nprocs": sc.nprocs,
            "smoke": bool(smoke),
            "params": spec.args_dict(),
            "elapsed_untraced": point.untraced.elapsed,
            "elapsed_traced": point.traced.elapsed,
            "overhead_pct": 100.0 * point.elapsed_overhead,
            "bytes_moved": point.untraced.bytes_moved,
            "events_executed": point.events_executed,
            "error": point.error,
            "store_run_id": point.store_run_id,
            "signature": _signature_cell(sc, point, store),
        }
        if replay_check and point.store_run_id is not None:
            from repro.zoo.replaypipe import replay_pipeline

            r0 = time.perf_counter()
            fid = replay_pipeline(
                [point.store_run_id], store=store, timing=replay_timing,
                seed=seed,
            )
            replay_wall = time.perf_counter() - r0
            row["fidelity"] = {
                "exact": fid["exact"],
                "timing": fid["replay"]["timing"],
                "per_class": fid["per_class"],
                "unreplayable": fid["source"]["unreplayable"],
                "skipped": fid["replay"]["profile"].get("skipped", {}),
            }
            replay_bench.append(
                {
                    "scenario": sc.name,
                    "events_executed": fid["replay"]["events_executed"],
                    "wall_seconds": replay_wall,
                }
            )
        rows.append(row)

    report = {
        "schema": ZOO_SCHEMA,
        "smoke": bool(smoke),
        "seed": seed,
        "scenarios": [sc.describe() for sc in selected],
        "rows": json.loads(canonical_json(rows)),
        "summary": {
            "points": len(rows),
            "completed": sum(1 for r in rows if r["error"] is None),
            "archived": sum(1 for r in rows if r["store_run_id"] is not None),
            "signature_ok": sum(
                1 for r in rows if r["signature"] and r["signature"]["ok"]
            ),
            "replay_exact": sum(
                1 for r in rows if r.get("fidelity", {}).get("exact")
            ),
        },
        # Host-clock facts live here, never in the rows: the rows are the
        # byte-identity surface, this section is allowed to differ.
        "execution": {
            "jobs": jobs,
            "wall_seconds": time.perf_counter() - t0,
            "cache_hits": result.report.cache_hits,
            "cache_misses": result.report.cache_misses,
            "replay_bench": replay_bench,
        },
    }
    return json.loads(canonical_json(report))


def bench_points(report: Dict[str, Any]) -> List[Dict[str, Any]]:
    """BENCH_zoo.json points for the baseline gate's history format.

    One point per scenario, carrying the identity keys the gate series
    are keyed on (``figure`` = ``zoo/<scenario>``, ``block_size`` = 0)
    plus the deterministic elapsed/overhead metrics — and, when the
    matrix ran its replay check, the ``zoo_replay_events_per_sec``
    host-clock rate (simulated kernel events the replay dispatched per
    host second; the wall clock is clamped so a sub-resolution replay
    yields a large finite rate, not a division by zero).
    """
    replay_rates = {
        b["scenario"]: b["events_executed"] / max(b["wall_seconds"], 1e-9)
        for b in report.get("execution", {}).get("replay_bench", [])
    }
    points = []
    for row in report["rows"]:
        point = {
            "figure": "zoo/%s" % row["scenario"],
            "block_size": 0,
            "elapsed_untraced": row["elapsed_untraced"],
            "elapsed_traced": row["elapsed_traced"],
            "overhead_pct": row["overhead_pct"],
            "events_executed": row["events_executed"],
            "error": row["error"],
        }
        rate = replay_rates.get(row["scenario"])
        if rate is not None:
            point["zoo_replay_events_per_sec"] = rate
        points.append(point)
    return points


def render_zoo_report(report: Dict[str, Any]) -> str:
    """The matrix as a text table: one row per scenario."""
    lines = [
        "Workload zoo (%s scale): %d scenario(s), %d completed, %d archived"
        % (
            "smoke" if report["smoke"] else "full",
            report["summary"]["points"],
            report["summary"]["completed"],
            report["summary"]["archived"],
        ),
        "%-14s %12s %12s %10s %11s %-9s %-7s %s"
        % ("scenario", "untraced(s)", "traced(s)", "overhead",
           "bytes", "signature", "replay", "run id"),
        "-" * 100,
    ]
    for row in report["rows"]:
        if row["error"] is not None:
            lines.append("%-14s FAILED: %s" % (row["scenario"], row["error"]))
            continue
        sig = row["signature"]
        sig_txt = "-" if sig is None else ("ok" if sig["ok"] else "VIOLATED")
        fid = row.get("fidelity")
        fid_txt = "-" if fid is None else ("exact" if fid["exact"] else "DRIFT")
        lines.append(
            "%-14s %12.6f %12.6f %9.1f%% %11d %-9s %-7s %s"
            % (
                row["scenario"],
                row["elapsed_untraced"],
                row["elapsed_traced"],
                row["overhead_pct"],
                row["bytes_moved"],
                sig_txt,
                fid_txt,
                (row["store_run_id"] or "-")[:12],
            )
        )
    for row in report["rows"]:
        sig = row["signature"]
        if sig and not sig["ok"]:
            for v in sig["violations"]:
                lines.append("  signature %s: %s" % (row["scenario"], v))
    return "\n".join(lines) + "\n"
