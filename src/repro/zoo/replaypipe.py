"""The trace → simulated-cluster replay pipeline.

One entry point, :func:`replay_pipeline`, takes *any* trace source —

* a **TraceBank run id** (or unique prefix) inside an archive created
  with ``--store``: the full multi-rank bundle, with its manifest
  metadata, exactly as the traced run produced it;
* a **library trace file** written by ``repro convert``/``repro trace``
  (binary ``.rtb`` or the text format, sniffed by magic);
* a **raw strace capture** of a real application (``strace -f -T -ttt``
  output, parsed by the hardened :mod:`repro.host.parser` and split into
  per-pid ranks) — the "real trace" half of the zoo's promise;

— compiles it into a pseudo-application
(:func:`repro.replay.pseudoapp.build_pseudoapp`), replays it on a fresh
simulated cluster under a documented timing policy, and returns the
fidelity report comparing the replayed op mix, bytes and timing against
the source.  The report is canonical-JSON data: byte-identical across
reruns of the same source with the same knobs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ReplayError
from repro.harness.testbed import TestbedConfig
from repro.obs.metrics import canonical_json
from repro.replay.fidelity import fidelity_report
from repro.replay.pseudoapp import _LIBCALL_KINDS, _SYNC_LIBCALLS, build_pseudoapp
from repro.replay.replayer import replay
from repro.trace.events import EventLayer
from repro.trace.records import TraceBundle, TraceFile

__all__ = [
    "choose_layer",
    "load_source",
    "remap_paths",
    "render_fidelity_report",
    "replay_pipeline",
    "source_elapsed",
]


def _bundle_from_strace(text: Union[str, bytes], label: str) -> Tuple[TraceBundle, Dict[str, Any]]:
    """A strace capture as a bundle: one trace file (rank) per pid."""
    from repro.host.parser import parse_strace

    parsed = parse_strace(text)
    if not parsed.events:
        raise ReplayError(
            "no replayable syscalls parsed from strace source %r "
            "(%d line(s), warnings: %s)"
            % (label, parsed.n_lines, dict(parsed.warnings) or "none")
        )
    by_pid: Dict[int, List[Any]] = {}
    for e in parsed.events:
        by_pid.setdefault(e.pid, []).append(e)
    bundle = TraceBundle(metadata={"framework": "strace", "source": label})
    for rank, pid in enumerate(sorted(by_pid)):
        bundle.add_file(
            rank,
            TraceFile(events=tuple(by_pid[pid]), pid=pid, rank=rank,
                      framework="strace"),
        )
    return bundle, {
        "kind": "strace",
        "pids": len(by_pid),
        "lines": parsed.n_lines,
        "parse_warnings": dict(sorted(parsed.warnings.items())),
    }


def _bundle_from_files(paths: Sequence[Path]) -> Tuple[TraceBundle, Dict[str, Any]]:
    """Library trace file(s) — binary or text — as a bundle, one per rank."""
    from repro.trace import binary_format, text_format

    bundle = TraceBundle(metadata={"source": str(paths[0])})
    for idx, path in enumerate(paths):
        data = path.read_bytes()
        if data[:4] == binary_format.MAGIC:
            tf = binary_format.decode_trace_file(data)
        else:
            tf = text_format.decode_trace_file(data.decode("utf-8"))
        rank = tf.rank if tf.rank is not None else idx
        bundle.add_file(rank, tf)
        if tf.framework and "framework" not in bundle.metadata:
            bundle.metadata["framework"] = tf.framework
    return bundle, {"kind": "trace-file", "files": len(paths)}


def _looks_like_strace(data: bytes) -> bool:
    """Sniff: does any early line match the strace syscall shape?"""
    from repro.host.parser import _LINE_RE, _RESUMED_RE

    head = data[:8192].decode("utf-8", errors="backslashreplace")
    for line in head.splitlines()[:50]:
        line = line.strip()
        if line and (_LINE_RE.match(line) or _RESUMED_RE.match(line)):
            return True
    return False


def load_source(
    sources: Sequence[Union[str, Path]],
    store: Optional[Union[str, Path]] = None,
) -> Tuple[TraceBundle, Dict[str, Any]]:
    """Resolve trace sources to a bundle plus a provenance record.

    A single non-path source is treated as a TraceBank run-id prefix
    when ``store`` points at an archive; file paths are sniffed (binary
    magic → library binary format; strace-shaped text → the host parser;
    anything else → the library text format).  Multiple paths become one
    bundle with one rank per file.
    """
    if not sources:
        raise ReplayError("no trace source given")
    first = str(sources[0])
    store_root = Path(store) if store is not None else None
    is_store = store_root is not None and (store_root / "STORE.json").is_file()
    if is_store and not Path(first).exists():
        from repro.store.bank import TraceBank

        bank = TraceBank(store, create=False)
        run_id = bank.manifest(first).run_id
        bundle = bank.load_run_bundle(run_id)
        # An archived bundle's metadata IS the manifest meta (workload,
        # framework, args...) — it rides into the report as provenance.
        return bundle, {
            "kind": "store",
            "store": str(store),
            "run_id": run_id,
            "meta": {k: v for k, v in sorted(bundle.metadata.items())},
        }
    paths = [Path(str(s)) for s in sources]
    for p in paths:
        if not p.exists():
            raise ReplayError(
                "trace source %r is neither a readable file nor a run id "
                "in a --store archive" % str(p)
            )
    if len(paths) == 1:
        from repro.trace import binary_format

        data = paths[0].read_bytes()
        if data[:4] != binary_format.MAGIC and _looks_like_strace(data):
            return _bundle_from_strace(data, str(paths[0]))
    return _bundle_from_files(paths)


def choose_layer(bundle: TraceBundle) -> EventLayer:
    """Pick the scripting layer a bundle replays most faithfully from.

    Library-level captures (//TRACE-style MPI-IO interposition) script at
    LIBCALL; anything with syscall events scripts at SYSCALL (the richer,
    fd-resolving path — LANL-Trace and strace sources); VFS-only bundles
    (Tracefs) script at VFS.
    """
    layers = {e.layer for e in bundle.all_events()}
    if EventLayer.SYSCALL in layers:
        return EventLayer.SYSCALL
    if EventLayer.LIBCALL in layers and any(
        e.name in _LIBCALL_KINDS or e.name in _SYNC_LIBCALLS
        for e in bundle.all_events()
        if e.layer is EventLayer.LIBCALL
    ):
        return EventLayer.LIBCALL
    if EventLayer.VFS in layers:
        return EventLayer.VFS
    return EventLayer.SYSCALL


def source_elapsed(bundle: TraceBundle) -> Optional[float]:
    """The source's own end-to-end span, for the §3.1 timing comparison.

    Prefers the traced run's recorded elapsed when the bundle metadata
    carries one; falls back to the event timestamp span.
    """
    for key in ("elapsed", "elapsed_traced"):
        val = bundle.metadata.get(key)
        if isinstance(val, (int, float)) and val > 0:
            return float(val)
    events = bundle.all_events()
    if not events:
        return None
    start = min(e.timestamp for e in events)
    end = max(e.end_timestamp for e in events)
    span = end - start
    return span if span > 0 else None


def remap_paths(app: "Any", root: str) -> "Any":
    """Re-root every scripted path under ``root`` (a simulated mount).

    A real application's trace references host paths (``/etc/hosts``,
    ``/home/...``) the simulated cluster does not mount; re-rooting them
    under e.g. ``/pfs/replay`` makes the schedule executable without
    changing its shape — op counts, sizes and offsets are untouched, so
    fidelity exactness is preserved.
    """
    from dataclasses import replace as _replace

    prefix = "/" + root.strip("/")
    for script in app.scripts.values():
        script.ops = [
            _replace(op, path=prefix + "/" + op.path.lstrip("/"))
            if op.path is not None
            else op
            for op in script.ops
        ]
    app.metadata["remap_root"] = prefix
    return app


def replay_pipeline(
    sources: Sequence[Union[str, Path]],
    store: Optional[Union[str, Path]] = None,
    layer: str = "auto",
    timing: str = "afap",
    seed: int = 0,
    honor_sync: bool = True,
    per_event_overhead: float = 0.0,
    config: Optional[TestbedConfig] = None,
    remap_root: Optional[str] = None,
) -> Dict[str, Any]:
    """source → pseudo-app → simulated replay → fidelity report.

    ``timing`` picks the documented policy (``afap`` by default: replays
    against a possibly-different simulated cluster compare op schedules,
    not wall time; pass ``preserve`` for the paper's end-to-end check).
    ``remap_root`` re-roots scripted paths under a simulated mount;
    strace sources default to ``/pfs/replay`` (host paths are not
    simulated mounts), everything else to no remap.  Returns the
    ``repro/replay/fidelity/v1`` report with the source's provenance
    attached under ``"resolution"``.
    """
    bundle, resolution = load_source(sources, store=store)
    if remap_root is None and resolution.get("kind") == "strace":
        remap_root = "/pfs/replay"
    if layer == "auto":
        script_layer = choose_layer(bundle)
    else:
        try:
            script_layer = EventLayer(layer)
        except ValueError:
            raise ReplayError(
                "unknown scripting layer %r (known: auto, %s)"
                % (layer, ", ".join(l.value for l in EventLayer))
            ) from None
    app = build_pseudoapp(
        bundle, layer=script_layer, per_event_overhead=per_event_overhead
    )
    if remap_root:
        app = remap_paths(app, remap_root)
    result = replay(
        app, config=config, seed=seed, honor_sync=honor_sync, timing=timing
    )
    report = fidelity_report(
        app,
        result,
        source_label=str(resolution.get("run_id") or sources[0]),
        original_elapsed=source_elapsed(bundle),
    )
    report["resolution"] = resolution
    return json.loads(canonical_json(report))


def render_fidelity_report(report: Dict[str, Any]) -> str:
    """The fidelity report as a human-readable text block."""
    src = report["source"]
    rep = report["replay"]
    lines = [
        "Replay fidelity: %s" % (src["label"] or "(unnamed source)"),
        "  source: framework=%s layer=%s nprocs=%d ops=%d bytes=%d"
        % (
            src["framework"] or "?",
            src["layer"],
            src["nprocs"],
            src["profile"]["total_ops"],
            src["profile"]["total_bytes"],
        ),
        "  replay: timing=%s elapsed=%.6fs ops=%d bytes=%d events=%d"
        % (
            rep["timing"],
            rep["elapsed"],
            rep["profile"]["total_ops"],
            rep["profile"]["total_bytes"],
            rep["events_executed"],
        ),
        "  %-10s %14s %14s %14s %14s" % ("class", "src ops", "replay ops", "src bytes", "replay bytes"),
    ]
    for cls in ("read", "write", "metadata"):
        row = report["per_class"][cls]
        lines.append(
            "  %-10s %14d %14d %14d %14d"
            % (cls, row["source_count"], row["replay_count"],
               row["source_bytes"], row["replay_bytes"])
        )
    unrep = src.get("unreplayable") or {}
    if unrep:
        lines.append(
            "  unreplayable events: "
            + ", ".join("%s=%d" % kv for kv in sorted(unrep.items()))
        )
    skipped = rep["profile"].get("skipped") or {}
    if skipped:
        lines.append(
            "  skipped ops: " + ", ".join("%s=%d" % kv for kv in sorted(skipped.items()))
        )
    if "end_to_end" in report:
        e2e = report["end_to_end"]
        lines.append(
            "  end-to-end: original=%.6fs replay=%.6fs error=%.1f%%"
            % (e2e["original_elapsed"], e2e["replay_elapsed"], e2e["error_percent"])
        )
    lines.append("  exact: %s" % ("yes" if report["exact"] else "NO"))
    return "\n".join(lines) + "\n"
