"""The workload zoo: modern I/O scenarios + trace-driven replay.

The paper measures every framework against one synthetic application
(``mpi_io_test``).  The zoo widens the bench to the I/O shapes that
dominate today's clusters, and closes the loop the paper only gestures
at — replaying a *real* trace on a simulated cluster:

* :mod:`repro.zoo.registry` — declarative scenario registry; each
  :class:`~repro.zoo.registry.ZooScenario` lowers to a plain harness
  :class:`~repro.harness.parallel.RunSpec`, so scenarios compose with
  the process-pool sweep, run cache, fault matrices, telemetry,
  ``--store`` archiving and ``obs diagnose`` for free;
* :mod:`repro.zoo.matrix` — run all scenarios, check their declared I/O
  signatures against the archived traces, emit the byte-deterministic
  ``repro/zoo/v1`` report and the ``BENCH_zoo.json`` gate points;
* :mod:`repro.zoo.replaypipe` — real strace capture, library trace file,
  or archived TraceBank run id → pseudo-application → simulated replay →
  fidelity report (op mix, bytes, timing; exact-or-explain).
"""

from repro.zoo.registry import SCENARIOS, ZOO_NPROCS, ZooScenario, get, names, register, zoo_testbed
from repro.zoo.matrix import (
    ZOO_SCHEMA,
    bench_points,
    build_zoo_specs,
    check_signature,
    render_zoo_report,
    run_zoo_matrix,
)
from repro.zoo.replaypipe import (
    choose_layer,
    load_source,
    render_fidelity_report,
    replay_pipeline,
    source_elapsed,
)

__all__ = [
    "SCENARIOS",
    "ZOO_NPROCS",
    "ZOO_SCHEMA",
    "ZooScenario",
    "bench_points",
    "build_zoo_specs",
    "check_signature",
    "choose_layer",
    "get",
    "load_source",
    "names",
    "register",
    "render_fidelity_report",
    "render_zoo_report",
    "replay_pipeline",
    "run_zoo_matrix",
    "source_elapsed",
    "zoo_testbed",
]
