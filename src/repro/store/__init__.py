"""TraceBank: a sharded, content-addressed trace archive with queries.

The simulator's experiments produce many trace bundles (sweeps, chaos
matrices, fault studies); this package archives them durably and makes
them queryable without re-running anything:

* :mod:`repro.store.segments` — per-``(run, rank)`` content-addressed
  storage units encoded with the existing binary trace codec, plus the
  manifest-resident summaries predicate pushdown consults;
* :mod:`repro.store.manifest` — versioned per-run index records with
  content-derived run ids (idempotent ingest, free dedup);
* :mod:`repro.store.index` — the warm manifest cache (an accelerator
  only; results are byte-identical cold or warm);
* :mod:`repro.store.bank` — :class:`TraceBank` itself: ingest, read,
  ``verify``, ``gc``, stats;
* :mod:`repro.store.query` — the parallel query engine (filter +
  aggregate, fanned out via :func:`repro.harness.parallel.parallel_map`,
  byte-identical across job counts);
* :mod:`repro.store.dfg` — directly-follows graphs over archived runs.

Entry points: the ``repro store`` CLI group, ``--store`` on sweep/chaos
commands (auto-ingest), and the store-backed paths in
:mod:`repro.analysis.summary` and ``repro observe``.
"""

from repro.store.bank import (
    DEFAULT_STORE_DIR,
    STORE_SCHEMA,
    IngestResult,
    TraceBank,
    render_store_summary,
)
from repro.store.dfg import build_dfg, render_dfg_dot, render_dfg_text
from repro.store.index import ManifestIndex
from repro.store.manifest import MANIFEST_SCHEMA, RunManifest, compute_run_id
from repro.store.query import (
    AGGREGATES,
    Query,
    run_query,
    scan_events,
    telemetry_view,
)
from repro.store.segments import SegmentMeta, content_address

__all__ = [
    "AGGREGATES",
    "DEFAULT_STORE_DIR",
    "MANIFEST_SCHEMA",
    "STORE_SCHEMA",
    "IngestResult",
    "ManifestIndex",
    "Query",
    "RunManifest",
    "SegmentMeta",
    "TraceBank",
    "build_dfg",
    "compute_run_id",
    "content_address",
    "render_dfg_dot",
    "render_dfg_text",
    "render_store_summary",
    "run_query",
    "scan_events",
    "telemetry_view",
]
