"""The manifest index with its warm on-disk cache.

Every query begins by reading all run manifests; for a large archive that
is the dominant metadata cost, so the index memoizes parsed manifests in
``index.json`` keyed by each manifest file's ``(size, mtime_ns)`` stat
signature.  A warm load re-parses nothing; a manifest that appeared,
changed, or vanished invalidates exactly its own entry.  The cache is
*purely* an accelerator: query results are byte-identical with a cold,
warm, or deleted cache (the determinism contract the acceptance tests
check), and a corrupt cache file is silently discarded and rebuilt.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.store.manifest import RunManifest

__all__ = ["INDEX_SCHEMA", "ManifestIndex"]

#: Versioned cache schema; any other tag is treated as a cold cache.
INDEX_SCHEMA = "repro/store/index/v1"


class ManifestIndex:
    """Loads every manifest under ``manifests/``, cache-first.

    ``reused``/``parsed`` count the last :meth:`load`'s cache traffic —
    a warm load of an unchanged archive reports ``parsed == 0``.
    """

    def __init__(self, root: Path):
        self.root = Path(root)
        self.manifests_dir = self.root / "manifests"
        self.cache_path = self.root / "index.json"
        self.reused = 0
        self.parsed = 0

    def _read_cache(self) -> Dict[str, dict]:
        try:
            obj = json.loads(self.cache_path.read_text("utf-8"))
        except (OSError, ValueError):
            return {}
        if not isinstance(obj, dict) or obj.get("schema") != INDEX_SCHEMA:
            return {}
        entries = obj.get("entries")
        return entries if isinstance(entries, dict) else {}

    def _write_cache(self, entries: Dict[str, dict]) -> None:
        body = json.dumps(
            {"schema": INDEX_SCHEMA, "entries": entries}, sort_keys=True
        )
        self.cache_path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(self.cache_path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(body)
            os.replace(tmp, self.cache_path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def load(self, refresh_cache: bool = True) -> List[RunManifest]:
        """Every manifest, sorted by ``run_id``.

        Unchanged files come from the cache; changed/new files are parsed
        and (when ``refresh_cache``) written back.  Files that fail to
        parse are skipped here — ``verify`` is the path that *reports*
        them; the index must stay usable around one bad manifest.
        """
        self.reused = 0
        self.parsed = 0
        cached = self._read_cache()
        fresh: Dict[str, dict] = {}
        out: List[RunManifest] = []
        if self.manifests_dir.is_dir():
            for path in sorted(self.manifests_dir.glob("*.json")):
                try:
                    st = path.stat()
                except OSError:
                    continue
                sig: Tuple[int, int] = (st.st_size, st.st_mtime_ns)
                entry = cached.get(path.name)
                body: Optional[dict] = None
                if (
                    isinstance(entry, dict)
                    and entry.get("size") == sig[0]
                    and entry.get("mtime_ns") == sig[1]
                    and isinstance(entry.get("manifest"), dict)
                ):
                    body = entry["manifest"]
                    self.reused += 1
                else:
                    try:
                        body = json.loads(path.read_text("utf-8"))
                    except (OSError, ValueError):
                        continue
                    if not isinstance(body, dict):
                        continue
                    self.parsed += 1
                try:
                    out.append(RunManifest.from_json(body))
                except Exception:
                    continue
                fresh[path.name] = {
                    "size": sig[0],
                    "mtime_ns": sig[1],
                    "manifest": body,
                }
        if refresh_cache and (self.parsed or set(fresh) != set(cached)):
            try:
                self._write_cache(fresh)
            except OSError:
                pass  # a read-only archive still queries fine, just cold
        out.sort(key=lambda m: m.run_id)
        return out

    def invalidate(self) -> None:
        """Delete the cache file (next load is cold)."""
        try:
            self.cache_path.unlink()
        except OSError:
            pass
