"""The parallel query engine over a TraceBank archive.

A query is answered in three stages:

1. **Select** — run manifests are filtered by metadata equality
   (``where``) and run-id prefixes, via the warm manifest index;
2. **Prune** — each candidate segment's manifest summary is checked
   against the query's rank/op/layer/time predicates
   (:meth:`~repro.store.segments.SegmentMeta.may_match`): segments that
   cannot contain a matching event are never read — predicate pushdown;
3. **Scan** — surviving shards are decoded and filtered, fanned out over
   worker processes via :func:`repro.harness.parallel.parallel_map`.

Partial results are merged in shard order (sorted by ``(run_id, rank,
sha)``) regardless of worker completion order, and every report is
normalized through canonical JSON — so query output is byte-identical
across ``jobs=1``, ``jobs=N``, and cold/warm manifest caches, the same
determinism contract the sweep harness pins down.

Aggregates: ``events`` (the matching events themselves), ``ops``
(per-function call/time histogram, the Figure-1 summary shape), ``bytes``
(per-rank event/byte counts), and ``bandwidth`` (payload bytes over fixed
time windows).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from fnmatch import fnmatchcase
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import StoreQueryError
from repro.obs.metrics import canonical_json
from repro.obs.tracepoints import STATE
from repro.store.bank import TraceBank
from repro.store.manifest import RunManifest
from repro.store.segments import decode_segment
from repro.trace.columnar import is_columnar, read_columns, read_header
from repro.trace.events import TraceEvent

__all__ = ["AGGREGATES", "Query", "run_query", "scan_events", "telemetry_view"]

#: The supported ``Query.agg`` values.
AGGREGATES: Tuple[str, ...] = ("events", "ops", "bytes", "bandwidth")

QUERY_SCHEMA = "repro/store/query/v1"


@dataclass(frozen=True)
class Query:
    """One declarative archive query (filters + aggregate choice).

    Filters compose conjunctively.  ``ranks``/``names``/``layers`` are
    membership tests; ``path_glob`` is an ``fnmatch`` pattern over the
    event path; ``since``/``until`` bound event *start* timestamps as the
    half-open window ``[since, until)``.  ``where`` filters whole runs by
    manifest metadata equality (dotted keys reach into nested mappings,
    values compare as strings); ``runs`` selects runs by id prefix.
    ``window`` is the ``bandwidth`` bucket width in simulated seconds;
    ``limit`` truncates the ``events`` aggregate after global ordering.
    """

    agg: str = "ops"
    ranks: Optional[Tuple[int, ...]] = None
    names: Optional[Tuple[str, ...]] = None
    layers: Optional[Tuple[str, ...]] = None
    path_glob: Optional[str] = None
    since: Optional[float] = None
    until: Optional[float] = None
    where: Tuple[Tuple[str, str], ...] = ()
    runs: Optional[Tuple[str, ...]] = None
    window: float = 0.05
    limit: Optional[int] = None

    @staticmethod
    def create(
        agg: str = "ops",
        ranks: Optional[Iterable[int]] = None,
        names: Optional[Iterable[str]] = None,
        layers: Optional[Iterable[str]] = None,
        path_glob: Optional[str] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
        where: Optional[Mapping[str, Any]] = None,
        runs: Optional[Iterable[str]] = None,
        window: float = 0.05,
        limit: Optional[int] = None,
    ) -> "Query":
        """Build a query from plain Python collections (dicts, lists)."""
        return Query(
            agg=agg,
            ranks=tuple(sorted(set(int(r) for r in ranks))) if ranks else None,
            names=tuple(sorted(set(str(n) for n in names))) if names else None,
            layers=tuple(sorted(set(str(l) for l in layers))) if layers else None,
            path_glob=path_glob,
            since=since,
            until=until,
            where=tuple(sorted((str(k), str(v)) for k, v in (where or {}).items())),
            runs=tuple(sorted(set(str(r) for r in runs))) if runs else None,
            window=float(window),
            limit=limit,
        )

    def validate(self) -> None:
        """Reject malformed queries with a typed error."""
        if self.agg not in AGGREGATES:
            raise StoreQueryError(
                "unknown aggregate %r (known: %s)" % (self.agg, ", ".join(AGGREGATES))
            )
        if self.window <= 0:
            raise StoreQueryError("bandwidth window must be positive")
        if self.limit is not None and self.limit < 0:
            raise StoreQueryError("limit must be non-negative")
        if (
            self.since is not None
            and self.until is not None
            and self.until <= self.since
        ):
            raise StoreQueryError("empty time window: until <= since")

    def plan(self) -> Dict[str, Any]:
        """The pickle-safe scan plan shipped to worker processes."""
        return {
            "agg": self.agg,
            "ranks": list(self.ranks) if self.ranks is not None else None,
            "names": list(self.names) if self.names is not None else None,
            "layers": list(self.layers) if self.layers is not None else None,
            "path_glob": self.path_glob,
            "since": self.since,
            "until": self.until,
            "window": self.window,
        }

    def echo(self) -> Dict[str, Any]:
        """The query's canonical-JSON echo embedded in every report."""
        return {
            "agg": self.agg,
            "filters": self.plan(),
            "where": {k: v for k, v in self.where},
            "runs": list(self.runs) if self.runs is not None else None,
            "limit": self.limit,
        }


def _meta_lookup(meta: Mapping[str, Any], dotted: str) -> Any:
    node: Any = meta
    for part in dotted.split("."):
        if not isinstance(node, Mapping) or part not in node:
            return None
        node = node[part]
    return node


def _run_selected(m: RunManifest, query: Query) -> bool:
    if query.runs is not None and not any(
        m.run_id.startswith(p) for p in query.runs
    ):
        return False
    for key, want in query.where:
        got = _meta_lookup(m.meta, key)
        if got is None or str(got) != want:
            return False
    return True


def select_shards(
    bank: TraceBank, query: Query
) -> Tuple[List[RunManifest], List[Tuple[str, str, int, str]], Dict[str, int]]:
    """Stages 1+2: pick runs, prune segments; returns deterministic shards.

    Shards are ``(root, run_id, rank, sha)`` tuples sorted by
    ``(run_id, rank, sha)`` — the merge order every aggregate uses.
    """
    manifests = bank.manifests()
    selected = [m for m in manifests if _run_selected(m, query)]
    shards: List[Tuple[str, str, int, str]] = []
    total = pruned = 0
    ranks = set(query.ranks) if query.ranks is not None else None
    names = set(query.names) if query.names is not None else None
    layers = set(query.layers) if query.layers is not None else None
    for m in selected:
        for seg in m.segments:
            total += 1
            if seg.may_match(
                ranks=ranks,
                names=names,
                layers=layers,
                since=query.since,
                until=query.until,
            ):
                shards.append((str(bank.root), m.run_id, seg.rank, seg.sha256))
            else:
                pruned += 1
    shards.sort(key=lambda s: (s[1], s[2], s[3]))
    stats = {
        "runs_total": len(manifests),
        "runs_selected": len(selected),
        "segments_total": total,
        "segments_scanned": len(shards),
        "segments_pruned": pruned,
    }
    return selected, shards, stats


def _event_matches(e: TraceEvent, rank: int, plan: Dict[str, Any]) -> bool:
    if plan["ranks"] is not None and rank not in plan["ranks"]:
        return False
    if plan["names"] is not None and e.name not in plan["names"]:
        return False
    if plan["layers"] is not None and e.layer.value not in plan["layers"]:
        return False
    since, until = plan["since"], plan["until"]
    if since is not None and e.timestamp < since:
        return False
    if until is not None and e.timestamp >= until:
        return False
    glob = plan["path_glob"]
    if glob is not None and (e.path is None or not fnmatchcase(e.path, glob)):
        return False
    return True


def _event_json(e: TraceEvent, run_id: str, rank: int, seq: int) -> Dict[str, Any]:
    return {
        "run": run_id,
        "rank": rank,
        "seq": seq,
        "timestamp": e.timestamp,
        "duration": e.duration,
        "layer": e.layer.value,
        "name": e.name,
        "pid": e.pid,
        "hostname": e.hostname,
        "path": e.path,
        "fd": e.fd,
        "nbytes": e.nbytes,
        "offset": e.offset,
        "result": e.result if isinstance(e.result, (int, str)) else None,
    }


#: Columns each aggregate reads from a columnar segment (beyond filters).
_AGG_COLUMNS: Dict[str, Tuple[str, ...]] = {
    "events": ("timestamp", "duration", "layer", "name", "pid", "hostname",
               "path", "fd", "nbytes", "offset", "result"),
    "ops": ("name", "duration"),
    "bytes": ("nbytes",),
    "bandwidth": ("timestamp", "nbytes"),
}


def _empty_partial(agg: str, rank: int) -> Dict[str, Any]:
    """The zero-match partial for one shard (pruned-by-header case)."""
    if agg == "events":
        return {"matched": 0, "events": []}
    if agg == "ops":
        return {"matched": 0, "ops": {}}
    if agg == "bytes":
        return {"matched": 0, "rank": rank, "events": 0, "bytes": 0}
    return {"matched": 0, "buckets": {}}


def _filter_columns(plan: Dict[str, Any]) -> List[str]:
    """Columns the plan's event-level predicates read."""
    need: List[str] = []
    if plan["names"] is not None:
        need.append("name")
    if plan["layers"] is not None:
        need.append("layer")
    if plan["since"] is not None or plan["until"] is not None:
        need.append("timestamp")
    if plan["path_glob"] is not None:
        need.append("path")
    return need


def _columnar_prune(
    header: Dict[str, Any],
    rank: int,
    plan: Dict[str, Any],
    matched_paths: Optional[frozenset],
) -> bool:
    """Header-only necessary-condition check: True means zero matches.

    This is column-granularity pushdown *below* the manifest's
    :meth:`~repro.store.segments.SegmentMeta.may_match`: the segment
    header's own stats (distinct names, timestamp min/max, distinct
    paths) can rule a segment out after reading one JSON frame, before
    any column is decompressed.
    """
    if plan["ranks"] is not None and rank not in plan["ranks"]:
        return True
    if not header.get("n_events"):
        return True
    names = header.get("names")
    if plan["names"] is not None and names is not None:
        if not plan["names"].intersection(names):
            return True
    ts = (header.get("stats") or {}).get("timestamp")
    if ts:
        if plan["since"] is not None and ts["max"] < plan["since"]:
            return True
        if plan["until"] is not None and ts["min"] >= plan["until"]:
            return True
    if plan["path_glob"] is not None and matched_paths is not None:
        if not matched_paths:
            return True
    return False


def _columnar_selection(
    n: int,
    cols: Dict[str, List[Any]],
    plan: Dict[str, Any],
    matched_paths: Optional[frozenset],
) -> Optional[List[int]]:
    """Indices of events surviving the plan's filters (None = all survive).

    The path glob is evaluated per *distinct* path when the header listed
    them (``matched_paths``), turning a per-event fnmatch into a set
    lookup.
    """
    names = plan["names"]
    layers = plan["layers"]
    since, until = plan["since"], plan["until"]
    glob = plan["path_glob"]
    if (names is None and layers is None and since is None
            and until is None and glob is None):
        return None
    name_col = cols.get("name")
    layer_col = cols.get("layer")
    ts_col = cols.get("timestamp")
    path_col = cols.get("path")
    keep: List[int] = []
    append = keep.append
    for i in range(n):
        if names is not None and name_col[i] not in names:
            continue
        if layers is not None and layer_col[i] not in layers:
            continue
        if since is not None and ts_col[i] < since:
            continue
        if until is not None and ts_col[i] >= until:
            continue
        if glob is not None:
            p = path_col[i]
            if p is None:
                continue
            if matched_paths is not None:
                if p not in matched_paths:
                    continue
            elif not fnmatchcase(p, glob):
                continue
        append(i)
    return keep


def _scan_shard_columnar(
    blob: bytes, run_id: str, rank: int, plan: Dict[str, Any]
) -> Dict[str, Any]:
    """Columnar scan: project only the columns the aggregate touches.

    Produces bit-identical partials to the row path — per-shard float
    sums (``ops`` durations) accumulate in segment order either way.
    """
    agg = plan["agg"]
    header = read_header(blob)
    glob = plan["path_glob"]
    matched_paths: Optional[frozenset] = None
    if glob is not None and header.get("paths") is not None:
        matched_paths = frozenset(
            p for p in header["paths"] if fnmatchcase(p, glob)
        )
    if _columnar_prune(header, rank, plan, matched_paths):
        return _empty_partial(agg, rank)
    n = int(header["n_events"])
    need = set(_AGG_COLUMNS[agg])
    need.update(_filter_columns(plan))
    cols = read_columns(blob, sorted(need))
    sel = _columnar_selection(n, cols, plan, matched_paths)
    idxs: Sequence[int] = range(n) if sel is None else sel
    matched = n if sel is None else len(sel)
    out: Dict[str, Any] = {"matched": matched}
    if agg == "events":
        ts, du = cols["timestamp"], cols["duration"]
        ly, nm = cols["layer"], cols["name"]
        pid, hn = cols["pid"], cols["hostname"]
        pa, fd = cols["path"], cols["fd"]
        nb, off, res = cols["nbytes"], cols["offset"], cols["result"]
        out["events"] = [
            {
                "run": run_id,
                "rank": rank,
                "seq": i,
                "timestamp": ts[i],
                "duration": du[i],
                "layer": ly[i],
                "name": nm[i],
                "pid": pid[i],
                "hostname": hn[i],
                "path": pa[i],
                "fd": fd[i],
                "nbytes": nb[i],
                "offset": off[i],
                "result": res[i],
            }
            for i in idxs
        ]
    elif agg == "ops":
        ops: Dict[str, List[float]] = {}
        nm, du = cols["name"], cols["duration"]
        for i in idxs:
            cell = ops.setdefault(nm[i], [0, 0.0])
            cell[0] += 1
            cell[1] += du[i]
        out["ops"] = ops
    elif agg == "bytes":
        nb = cols["nbytes"]
        total = 0
        for i in idxs:
            v = nb[i]
            if v is not None:
                total += v
        out["rank"] = rank
        out["events"] = matched
        out["bytes"] = total
    else:  # bandwidth
        window = plan["window"]
        ts, nb = cols["timestamp"], cols["nbytes"]
        buckets: Dict[str, int] = {}
        for i in idxs:
            v = nb[i]
            if v is not None:
                key = str(int(ts[i] // window))
                buckets[key] = buckets.get(key, 0) + v
        out["buckets"] = buckets
    return out


def _scan_shard(task: Tuple[str, str, int, str, Dict[str, Any]]) -> Dict[str, Any]:
    """Decode + filter + partially aggregate one shard (worker entry).

    Module-level so it pickles into :func:`~repro.harness.parallel.parallel_map`
    worker processes.  Partial results use only plain JSON types.
    Columnar (v2) segments take the projected-scan fast path; v1 segments
    decode row by row exactly as before.
    """
    root, run_id, rank, sha, plan = task
    bank = TraceBank(root, create=False)
    blob = bank.read_segment_blob(sha)
    plan = dict(plan)
    for key in ("ranks", "names", "layers"):
        if plan[key] is not None:
            plan[key] = set(plan[key])
    if is_columnar(blob):
        return _scan_shard_columnar(blob, run_id, rank, plan)
    tf = decode_segment(blob, expected_sha=sha)
    agg = plan["agg"]
    matched = 0
    out: Dict[str, Any] = {"matched": 0}
    if agg == "events":
        rows: List[Dict[str, Any]] = []
        for seq, e in enumerate(tf.events):
            if _event_matches(e, rank, plan):
                rows.append(_event_json(e, run_id, rank, seq))
        matched = len(rows)
        out["events"] = rows
    elif agg == "ops":
        ops: Dict[str, List[float]] = {}
        for e in tf.events:
            if _event_matches(e, rank, plan):
                matched += 1
                cell = ops.setdefault(e.name, [0, 0.0])
                cell[0] += 1
                cell[1] += e.duration
        out["ops"] = ops
    elif agg == "bytes":
        n_events = 0
        nbytes = 0
        for e in tf.events:
            if _event_matches(e, rank, plan):
                matched += 1
                n_events += 1
                if e.nbytes is not None:
                    nbytes += e.nbytes
        out["rank"] = rank
        out["events"] = n_events
        out["bytes"] = nbytes
    elif agg == "bandwidth":
        window = plan["window"]
        buckets: Dict[str, int] = {}
        for e in tf.events:
            if _event_matches(e, rank, plan):
                matched += 1
                if e.nbytes is not None:
                    idx = int(e.timestamp // window)
                    key = str(idx)
                    buckets[key] = buckets.get(key, 0) + e.nbytes
        out["buckets"] = buckets
    else:  # pragma: no cover - validate() rejects this before scan
        raise StoreQueryError("unknown aggregate %r" % agg)
    out["matched"] = matched
    return out


def _merge_result(query: Query, partials: Sequence[Dict[str, Any]]) -> Tuple[Dict[str, Any], int]:
    matched = sum(p["matched"] for p in partials)
    if query.agg == "events":
        rows = [row for p in partials for row in p["events"]]
        rows.sort(key=lambda r: (r["timestamp"], r["run"], r["rank"], r["seq"]))
        truncated = query.limit is not None and len(rows) > query.limit
        if truncated:
            rows = rows[: query.limit]
        return {"events": rows, "truncated": truncated}, matched
    if query.agg == "ops":
        ops: Dict[str, List[float]] = {}
        for p in partials:
            for name, (calls, total) in sorted(p["ops"].items()):
                cell = ops.setdefault(name, [0, 0.0])
                cell[0] += calls
                cell[1] += total
        return {
            "ops": {
                name: {"calls": int(c), "total_time": t}
                for name, (c, t) in sorted(ops.items())
            }
        }, matched
    if query.agg == "bytes":
        ranks: Dict[str, Dict[str, int]] = {}
        for p in partials:
            cell = ranks.setdefault(str(p["rank"]), {"events": 0, "bytes": 0})
            cell["events"] += p["events"]
            cell["bytes"] += p["bytes"]
        total_bytes = sum(c["bytes"] for c in ranks.values())
        return {"ranks": dict(sorted(ranks.items(), key=lambda kv: int(kv[0]))),
                "total_bytes": total_bytes}, matched
    # bandwidth
    buckets: Dict[int, int] = {}
    for p in partials:
        for key, nbytes in p["buckets"].items():
            idx = int(key)
            buckets[idx] = buckets.get(idx, 0) + nbytes
    w = query.window
    rows = [
        {
            "t0": idx * w,
            "t1": (idx + 1) * w,
            "bytes": nbytes,
            "bandwidth": nbytes / w,
        }
        for idx, nbytes in sorted(buckets.items())
    ]
    return {"window": w, "buckets": rows}, matched


def run_query(
    bank: TraceBank, query: Query, jobs: int = 1
) -> Dict[str, Any]:
    """Answer one query; returns the canonical-JSON report dict.

    ``jobs > 1`` fans the shard scans over worker processes with results
    merged in shard order — output bytes never depend on the job count.
    Emits ``store.scan.*`` telemetry when a collector is active.
    """
    from repro.harness.parallel import parallel_map

    query.validate()
    _selected, shards, scan = select_shards(bank, query)
    plan = query.plan()
    tasks = [(root, run_id, rank, sha, plan) for root, run_id, rank, sha in shards]
    partials = parallel_map(_scan_shard, tasks, jobs=jobs)
    result, matched = _merge_result(query, partials)
    col = STATE.collector
    if col is not None:
        col.store_scan(scan["segments_scanned"], scan["segments_pruned"], matched)
    report = {
        "schema": QUERY_SCHEMA,
        "query": query.echo(),
        "scan": dict(scan, events_matched=matched),
        "result": result,
    }
    return json.loads(canonical_json(report))


def scan_events(
    bank: TraceBank, query: Query, jobs: int = 1
) -> List[Dict[str, Any]]:
    """Convenience: the ``events`` aggregate's globally ordered rows."""
    report = run_query(bank, replace(query, agg="events"), jobs=jobs)
    return report["result"]["events"]


def telemetry_view(bank: TraceBank, run_id: str) -> Dict[str, Any]:
    """Synthesize a ``repro/telemetry/v1`` payload from an archived run.

    Lets ``repro obs diff``/``critpath`` address runs by TraceBank run-id
    prefix even when they were archived without ``--telemetry``: the
    archived :class:`~repro.trace.events.TraceEvent` records are replayed
    into a fresh metrics registry and span recorder exactly the way the
    live ``os_call`` tracepoint would have recorded them (per-layer call
    counters, call-seconds and request-bytes histograms, one span per
    call on a ``(node, rank)`` track).  Only what the trace captured is
    reconstructed — DES/network/disk internals of the original run are
    absent, which is fine for diffing what the *frameworks* saw.

    Purely content-derived, so the payload is byte-identical wherever
    and whenever the view is built.  Raises
    :class:`~repro.errors.StoreError` on unknown/ambiguous prefixes.
    """
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.perfetto import to_chrome_trace
    from repro.obs.spans import SpanRecorder

    m = bank.manifest(run_id)
    rows = list(bank.iter_run_events(m.run_id))
    hostnames = sorted({e.hostname or ("rank%d" % rank) for rank, e in rows})
    node_index = {h: i for i, h in enumerate(hostnames)}

    registry = MetricsRegistry()
    recorder = SpanRecorder()
    end_time = 0.0
    for rank, e in rows:
        host = e.hostname or ("rank%d" % rank)
        pid = node_index[host]
        layer = e.layer.value
        registry.inc("os.calls.%s" % layer)
        registry.inc("os.%s.%s" % (layer, e.name))
        registry.observe("os.call_seconds", e.duration)
        if e.nbytes is not None:
            registry.observe("os.io_request_bytes", e.nbytes)
        recorder.name_track(pid, "node%d %s" % (pid, host), rank,
                            "rank %d" % rank)
        args = {"nbytes": e.nbytes} if e.nbytes is not None else None
        recorder.complete(pid, rank, e.name, layer, e.timestamp, e.duration,
                          args)
        end_time = max(end_time, e.timestamp + e.duration)
    payload = {
        "schema": "repro/telemetry/v1",
        "metrics": registry.snapshot(end_time=end_time),
        "trace": to_chrome_trace(recorder),
        "source": {"kind": "store", "run_id": m.run_id},
    }
    return json.loads(canonical_json(payload))
