"""Content-addressed trace segments: the archive's unit of storage.

A *segment* is one ``(run, rank)`` slice of a trace bundle — a
:class:`~repro.trace.records.TraceFile` — serialized with one of two
codecs and addressed by the SHA-256 of its encoded bytes:

* ``v1`` — the row-major record stream (:mod:`repro.trace.binary_format`);
* ``v2`` — the columnar layout (:mod:`repro.trace.columnar`), which the
  query engine scans by projecting only the columns an aggregate needs.

Both inherit CRC32 framing and optional zlib compression.  Readers never
need to be told which codec a blob uses — :func:`decode_segment` sniffs
the magic, so v1 archives stay readable forever and a single archive can
hold a mix.  Content addressing is what makes the archive dedup for free:
re-ingesting an identical run re-derives the same bytes, the same digest,
and therefore the same on-disk file (per codec: the same events encoded
v1 and v2 are two distinct segments).

Every segment carries a :class:`SegmentMeta` summary in its run manifest —
time range, per-op and per-layer counts, payload bytes — which is what the
query engine's predicate pushdown consults to skip shards without reading
them.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, Tuple

from repro.errors import StoreCorruptionError, StoreError, TraceError
from repro.trace.binary_format import decode_trace_file, encode_trace_file
from repro.trace.columnar import (
    decode_trace_file_columnar,
    encode_trace_file_columnar,
    is_columnar,
)
from repro.trace.records import TraceFile

__all__ = [
    "CODECS",
    "SegmentMeta",
    "content_address",
    "encode_segment",
    "decode_segment",
    "segment_codec",
    "summarize_segment",
]

#: Codec names accepted by :func:`encode_segment` (and the CLI ``--codec``).
CODECS = ("v1", "v2")


def content_address(blob: bytes) -> str:
    """The segment's identity: SHA-256 hex digest of its encoded bytes."""
    return hashlib.sha256(blob).hexdigest()


def encode_segment(
    tf: TraceFile,
    compressed: bool = True,
    checksum: bool = True,
    codec: str = "v1",
) -> Tuple[bytes, str]:
    """Serialize one per-rank trace file; returns ``(blob, sha256)``.

    ``codec`` picks the wire layout: ``"v1"`` row-major records, ``"v2"``
    columnar.  Either encoding is deterministic for fixed codec flags
    (fixed zlib level, canonical field order), so identical events always
    produce identical bytes — the property content addressing depends on.
    """
    if codec == "v1":
        blob = encode_trace_file(tf, compressed=compressed, checksum=checksum)
    elif codec == "v2":
        blob = encode_trace_file_columnar(
            tf, compressed=compressed, checksum=checksum
        )
    else:
        raise StoreError("unknown segment codec %r (expected one of %s)"
                         % (codec, ", ".join(CODECS)))
    return blob, content_address(blob)


def segment_codec(blob: bytes) -> str:
    """Which codec wrote ``blob`` — ``"v2"`` by magic sniff, else ``"v1"``."""
    return "v2" if is_columnar(blob) else "v1"


def decode_segment(blob: bytes, expected_sha: str = "") -> TraceFile:
    """Decode a segment blob back into a :class:`TraceFile`.

    The codec is sniffed from the blob's magic, so mixed-codec archives
    and pre-columnar (v1) archives decode transparently.  When
    ``expected_sha`` is given the blob's digest is verified first, and
    decode failures are reported as archive corruption
    (:class:`~repro.errors.StoreCorruptionError`) rather than plain trace
    format errors — the caller is reading the archive, not a user file.
    """
    if expected_sha:
        got = content_address(blob)
        if got != expected_sha:
            raise StoreCorruptionError(
                "segment content hash mismatch: manifest says %s, bytes are %s"
                % (expected_sha[:12], got[:12])
            )
    try:
        if is_columnar(blob):
            return decode_trace_file_columnar(blob)
        return decode_trace_file(blob)
    except TraceError as exc:
        if expected_sha:
            raise StoreCorruptionError(
                "segment %s fails to decode: %s" % (expected_sha[:12], exc)
            ) from exc
        raise


@dataclass(frozen=True)
class SegmentMeta:
    """Manifest-resident summary of one segment (the pushdown index entry).

    ``t_min``/``t_max`` span event start times through end times
    (``timestamp`` .. ``end_timestamp``); ``ops`` and ``layers`` are sorted
    ``(name, count)`` pairs so the dataclass hashes and renders canonically.
    """

    rank: int
    sha256: str
    n_events: int
    t_min: float
    t_max: float
    total_duration: float
    payload_bytes: int
    encoded_bytes: int
    ops: Tuple[Tuple[str, int], ...] = ()
    layers: Tuple[Tuple[str, int], ...] = ()

    def to_json(self) -> Dict[str, Any]:
        """Plain-JSON manifest rendering (sorted mappings, no tuples)."""
        return {
            "rank": self.rank,
            "sha256": self.sha256,
            "n_events": self.n_events,
            "t_min": self.t_min,
            "t_max": self.t_max,
            "total_duration": self.total_duration,
            "payload_bytes": self.payload_bytes,
            "encoded_bytes": self.encoded_bytes,
            "ops": {name: count for name, count in self.ops},
            "layers": {name: count for name, count in self.layers},
        }

    @staticmethod
    def from_json(obj: Dict[str, Any]) -> "SegmentMeta":
        """Invert :meth:`to_json` (manifest load path)."""
        return SegmentMeta(
            rank=int(obj["rank"]),
            sha256=str(obj["sha256"]),
            n_events=int(obj["n_events"]),
            t_min=float(obj["t_min"]),
            t_max=float(obj["t_max"]),
            total_duration=float(obj["total_duration"]),
            payload_bytes=int(obj["payload_bytes"]),
            encoded_bytes=int(obj["encoded_bytes"]),
            ops=tuple(sorted((str(k), int(v)) for k, v in obj.get("ops", {}).items())),
            layers=tuple(
                sorted((str(k), int(v)) for k, v in obj.get("layers", {}).items())
            ),
        )

    # -- pushdown -----------------------------------------------------------

    def may_match(
        self,
        ranks=None,
        names=None,
        layers=None,
        since=None,
        until=None,
    ) -> bool:
        """Cheap necessary-condition check: can any event here match?

        ``False`` means the query engine may skip (prune) this segment
        without decoding it; ``True`` only promises the segment is worth
        scanning.  Time bounds compare against event *start* times, which
        is also what the scan-side window filter uses.
        """
        if ranks is not None and self.rank not in ranks:
            return False
        if self.n_events == 0:
            return False
        if since is not None and self.t_max < since:
            return False
        if until is not None and self.t_min >= until:
            return False
        if names is not None and not any(op in names for op, _ in self.ops):
            return False
        if layers is not None and not any(ly in layers for ly, _ in self.layers):
            return False
        return True


def summarize_segment(tf: TraceFile, rank: int, sha256: str, encoded_bytes: int) -> SegmentMeta:
    """Compute a :class:`SegmentMeta` over one trace file's events."""
    ops: Dict[str, int] = {}
    layers: Dict[str, int] = {}
    t_min = 0.0
    t_max = 0.0
    total_duration = 0.0
    payload = 0
    for i, e in enumerate(tf.events):
        ops[e.name] = ops.get(e.name, 0) + 1
        layer = e.layer.value
        layers[layer] = layers.get(layer, 0) + 1
        total_duration += e.duration
        if e.nbytes is not None:
            payload += e.nbytes
        if i == 0:
            t_min = e.timestamp
            t_max = e.end_timestamp
        else:
            if e.timestamp < t_min:
                t_min = e.timestamp
            if e.end_timestamp > t_max:
                t_max = e.end_timestamp
    return SegmentMeta(
        rank=rank,
        sha256=sha256,
        n_events=len(tf.events),
        t_min=t_min,
        t_max=t_max,
        total_duration=total_duration,
        payload_bytes=payload,
        encoded_bytes=encoded_bytes,
        ops=tuple(sorted(ops.items())),
        layers=tuple(sorted(layers.items())),
    )
