"""TraceBank: the sharded, content-addressed on-disk trace archive.

Layout (all files rewritable atomically, safe for concurrent ingest from
sweep worker processes)::

    <root>/
        STORE.json                    # {"schema": "repro/store/v1", ...}
        segments/<sha[:2]>/<sha>.seg  # content-addressed encoded TraceFiles
        manifests/<run_id>.json       # one versioned manifest per run
        index.json                    # warm manifest cache (rebuildable)

Segments shard by the first digest byte (256 fan-out) exactly like the
run cache, so directories stay small at archive scale.  Ingest is
idempotent: a segment whose file already exists is *deduped* (counted,
not rewritten), and a run's manifest path is derived from its content so
re-ingesting a sweep adds nothing.  ``verify`` re-hashes and re-decodes
every referenced segment against its manifest summary; ``gc`` removes
segment files no manifest references (the only way data leaves the
archive — dropping a run means deleting its manifest, then ``gc``).
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple, Union

from repro.errors import StoreCorruptionError, StoreError, StoreNotFound
from repro.obs.tracepoints import STATE
from repro.store.index import ManifestIndex
from repro.store.manifest import (
    MANIFEST_SCHEMA,
    RunManifest,
    compute_run_id,
    json_safe_meta,
)
from repro.store.segments import (
    SegmentMeta,
    content_address,
    decode_segment,
    encode_segment,
    summarize_segment,
)
from repro.trace.events import TraceEvent
from repro.trace.records import TraceBundle, TraceFile

__all__ = [
    "STORE_SCHEMA",
    "DEFAULT_STORE_DIR",
    "IngestResult",
    "TraceBank",
    "render_store_summary",
]

#: Versioned store marker schema.
STORE_SCHEMA = "repro/store/v1"

#: Default archive directory, relative to the working directory (the CLI's
#: ``--store`` with no value lands here).
DEFAULT_STORE_DIR = ".repro-store"


@dataclass(frozen=True)
class IngestResult:
    """Outcome of one ``ingest_bundle`` call.

    ``new_segments + deduped_segments == segments``; a second ingest of
    the same run reports ``new_segments == 0`` and the same ``run_id``.
    """

    run_id: str
    segments: int
    new_segments: int
    deduped_segments: int
    events: int
    manifest_new: bool


def _atomic_write_bytes(path: Path, blob: bytes) -> None:
    """Atomically (and durably) land ``blob`` at ``path``.

    The temp file is fsynced before ``os.replace`` and the directory
    after, so callers that acknowledge the write (WAL entries, manifest
    commits) survive an OS crash or power loss, not just a process
    crash.  Platforms that refuse directory fsync degrade gracefully.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    try:
        dfd = os.open(str(path.parent), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dfd)
    except OSError:
        pass
    finally:
        os.close(dfd)


class TraceBank:
    """One archive rooted at a directory (see module docstring).

    ``create=True`` (the default) initializes an empty archive on first
    touch; ``create=False`` raises :class:`~repro.errors.StoreNotFound`
    for a directory that is not already an archive — the read-only
    commands (``ls``/``query``/``verify``/``gc``) use that mode so a typo
    never silently materializes an empty store.
    """

    def __init__(self, root: Union[str, Path] = DEFAULT_STORE_DIR, create: bool = True):
        self.root = Path(root)
        self.segments_dir = self.root / "segments"
        self.manifests_dir = self.root / "manifests"
        self.index = ManifestIndex(self.root)
        #: True for tenant namespaces whose ``segments/`` lives in a parent
        #: service store (``segments_root`` in STORE.json); such banks own
        #: their manifests but share segment files with every sibling.
        self.shared_segments = False
        self.tenant: Optional[str] = None
        marker = self.root / "STORE.json"
        if marker.is_file():
            try:
                obj = json.loads(marker.read_text("utf-8"))
            except ValueError:
                raise StoreCorruptionError(
                    "%s exists but is not JSON" % marker
                ) from None
            if not isinstance(obj, dict) or obj.get("schema") != STORE_SCHEMA:
                raise StoreError(
                    "%s is not a %s archive" % (self.root, STORE_SCHEMA)
                )
            seg_root = obj.get("segments_root")
            if seg_root:
                self.segments_dir = (self.root / str(seg_root)).resolve()
                self.shared_segments = True
            if obj.get("tenant") is not None:
                self.tenant = str(obj["tenant"])
        elif create:
            self.root.mkdir(parents=True, exist_ok=True)
            self.segments_dir.mkdir(exist_ok=True)
            self.manifests_dir.mkdir(exist_ok=True)
            _atomic_write_bytes(
                marker,
                (json.dumps({"schema": STORE_SCHEMA, "version": 1}) + "\n").encode(),
            )
        else:
            raise StoreNotFound(
                "%s is not a TraceBank archive (no STORE.json); run "
                "'repro store ingest' or a sweep with --store first" % self.root
            )

    # -- paths ---------------------------------------------------------------

    def segment_path(self, sha: str) -> Path:
        """On-disk location of one segment blob."""
        return self.segments_dir / sha[:2] / (sha + ".seg")

    def manifest_path(self, run_id: str) -> Path:
        """On-disk location of one run manifest."""
        return self.manifests_dir / (run_id + ".json")

    # -- ingest --------------------------------------------------------------

    def ingest_bundle(
        self,
        bundle: TraceBundle,
        meta: Optional[Mapping[str, Any]] = None,
        compressed: bool = True,
        checksum: bool = True,
        codec: str = "v1",
    ) -> IngestResult:
        """Archive one trace bundle as one run; idempotent.

        Each source file becomes one segment (keyed by its bundle rank);
        ``meta`` is merged over the bundle's own metadata and becomes the
        manifest's queryable run description.  ``codec`` picks the segment
        wire format (``"v1"`` row-major, ``"v2"`` columnar); readers sniff
        per blob, so codecs can mix freely within one archive.  Returns
        the dedup-aware :class:`IngestResult`; emits ``store.ingest.*``
        telemetry when a collector is active.
        """
        merged_meta: Dict[str, Any] = dict(bundle.metadata)
        merged_meta.update(dict(meta or {}))
        codec_info: Dict[str, Any] = {
            "compressed": bool(compressed),
            "checksum": bool(checksum),
        }
        # v1 manifests keep their pre-columnar shape (and run ids); the
        # "format" key only appears for v2 runs.
        if codec != "v1":
            codec_info["format"] = codec
        segs: List[SegmentMeta] = []
        new = dedup = events = 0
        for rank in sorted(bundle.files):
            tf = bundle.files[rank]
            blob, sha = encode_segment(
                tf, compressed=compressed, checksum=checksum, codec=codec
            )
            seg = summarize_segment(tf, int(rank), sha, len(blob))
            path = self.segment_path(sha)
            if path.is_file():
                dedup += 1
            else:
                _atomic_write_bytes(path, blob)
                new += 1
            segs.append(seg)
            events += seg.n_events
        segs.sort(key=lambda s: (s.rank, s.sha256))
        run_id = compute_run_id(merged_meta, segs, codec_info)
        manifest = RunManifest(
            run_id=run_id,
            meta=json_safe_meta(merged_meta),
            codec=codec_info,
            segments=tuple(segs),
            n_events=events,
            n_barriers=len(bundle.barrier_stamps),
        )
        mpath = self.manifest_path(run_id)
        manifest_new = not mpath.is_file()
        if manifest_new:
            _atomic_write_bytes(mpath, manifest.dumps().encode("utf-8"))
        col = STATE.collector
        if col is not None:
            col.store_ingest(len(segs), new, dedup, events)
        return IngestResult(
            run_id=run_id,
            segments=len(segs),
            new_segments=new,
            deduped_segments=dedup,
            events=events,
            manifest_new=manifest_new,
        )

    def ingest_trace_file(
        self,
        tf: TraceFile,
        meta: Optional[Mapping[str, Any]] = None,
        rank: Optional[int] = None,
        compressed: bool = True,
        checksum: bool = True,
        codec: str = "v1",
    ) -> IngestResult:
        """Archive one standalone trace file as a single-segment run."""
        key = rank if rank is not None else (tf.rank if tf.rank is not None else 0)
        bundle = TraceBundle(files={int(key): tf})
        if tf.framework:
            bundle.metadata.setdefault("framework", tf.framework)
        return self.ingest_bundle(
            bundle, meta=meta, compressed=compressed, checksum=checksum, codec=codec
        )

    # -- reads ---------------------------------------------------------------

    def manifests(self) -> List[RunManifest]:
        """Every run manifest, sorted by ``run_id`` (warm-cache path)."""
        return self.index.load()

    def run_ids(self) -> List[str]:
        """All archived run ids, sorted."""
        return [m.run_id for m in self.manifests()]

    def manifest(self, run_id: str) -> RunManifest:
        """One run's manifest; ``run_id`` may be a unique prefix."""
        matches = [m for m in self.manifests() if m.run_id.startswith(run_id)]
        if not matches:
            raise StoreError("no archived run matches %r" % run_id)
        if len(matches) > 1:
            raise StoreError(
                "run id prefix %r is ambiguous (%d matches)" % (run_id, len(matches))
            )
        return matches[0]

    def read_segment(self, sha: str) -> TraceFile:
        """Load and verify one segment by content address."""
        return decode_segment(self.read_segment_blob(sha), expected_sha=sha)

    def read_segment_blob(self, sha: str) -> bytes:
        """Raw encoded bytes of one segment (codec-sniffing callers).

        The content address is verified; decoding — full or columnar
        projection — is the caller's choice.  This is the query engine's
        entry to the columnar fast path: it sniffs the magic and projects
        columns instead of materializing every event.
        """
        path = self.segment_path(sha)
        try:
            blob = path.read_bytes()
        except OSError:
            raise StoreCorruptionError(
                "segment %s referenced but missing on disk" % sha[:12]
            ) from None
        got = content_address(blob)
        if got != sha:
            raise StoreCorruptionError(
                "segment content hash mismatch: manifest says %s, bytes are %s"
                % (sha[:12], got[:12])
            )
        return blob

    def iter_run_events(self, run_id: str) -> Iterator[Tuple[int, TraceEvent]]:
        """Yield ``(rank, event)`` for one run, rank-major, capture order."""
        for seg in self.manifest(run_id).segments:
            tf = self.read_segment(seg.sha256)
            for e in tf.events:
                yield seg.rank, e

    def load_run_bundle(self, run_id: str) -> TraceBundle:
        """Reassemble one run as a :class:`TraceBundle` (analysis entry)."""
        m = self.manifest(run_id)
        files: Dict[int, TraceFile] = {}
        for seg in m.segments:
            files[seg.rank] = self.read_segment(seg.sha256)
        return TraceBundle(files=files, metadata=dict(m.meta))

    def disk_segments(self) -> List[str]:
        """Every segment digest present on disk (referenced or not).

        Only ``*.seg`` files count: the ``*.tmp`` droppings of an
        in-flight (or crashed) atomic write are invisible here, so
        ``verify``/``gc``/``stats`` stay safe to run while a concurrent
        ingest is mid-write.  Stale tmp files are reclaimed by
        :meth:`gc` once they outlive ``tmp_ttl_seconds``.
        """
        if not self.segments_dir.is_dir():
            return []
        return sorted(p.stem for p in self.segments_dir.glob("*/*.seg"))

    def tmp_files(self) -> List[Path]:
        """In-flight/stale ``*.tmp`` atomic-write droppings, sorted.

        Covers the two directories this bank writes atomically into:
        ``segments/`` shards and ``manifests/``.  A live entry here is a
        concurrent ingest mid-``os.replace``; one that persists is the
        residue of a crashed writer.
        """
        out: List[Path] = []
        if self.segments_dir.is_dir():
            out.extend(self.segments_dir.glob("*/*.tmp"))
        if self.manifests_dir.is_dir():
            out.extend(self.manifests_dir.glob("*.tmp"))
        return sorted(out)

    def _tenant_manifest_paths(self) -> List[Path]:
        """Manifest files of tenant namespaces nested under this root.

        A service store keeps per-tenant manifests in
        ``tenants/<name>/manifests/`` while every tenant shares this
        root's ``segments/``; those manifests pin segments exactly like
        the root's own, so ``verify``'s orphan report and ``gc``'s root
        set must include them.
        """
        tenants_dir = self.root / "tenants"
        if self.shared_segments or not tenants_dir.is_dir():
            return []
        return sorted(tenants_dir.glob("*/manifests/*.json"))

    def stats(self) -> Dict[str, Any]:
        """Archive-wide summary: runs, segments, dedup ratio, bytes."""
        manifests = self.manifests()
        referenced: Dict[str, int] = {}
        frameworks: Dict[str, int] = {}
        events = 0
        for m in manifests:
            events += m.n_events
            fw = str(m.meta.get("framework", "?"))
            frameworks[fw] = frameworks.get(fw, 0) + 1
            for seg in m.segments:
                referenced[seg.sha256] = referenced.get(seg.sha256, 0) + 1
        # A tenant namespace shares its segments directory with every
        # sibling tenant: a raw disk listing would count (and report as
        # "orphans") segments belonging to other tenants.  Scope the view
        # to this bank's own referenced set in that case.
        if self.shared_segments:
            on_disk = sorted(
                sha for sha in referenced if self.segment_path(sha).is_file()
            )
        else:
            on_disk = self.disk_segments()
        disk_bytes = 0
        for sha in on_disk:
            try:
                disk_bytes += self.segment_path(sha).stat().st_size
            except OSError:
                pass
        logical = sum(
            seg.encoded_bytes for m in manifests for seg in m.segments
        )
        return {
            "schema": "repro/store/stats/v1",
            "runs": len(manifests),
            "events": events,
            "segments_referenced": sum(referenced.values()),
            "segments_unique": len(referenced),
            "segments_on_disk": len(on_disk),
            "orphan_segments": len(set(on_disk) - set(referenced)),
            "logical_bytes": logical,
            "stored_bytes": disk_bytes,
            "dedup_ratio": (logical / disk_bytes) if disk_bytes else 1.0,
            "runs_by_framework": dict(sorted(frameworks.items())),
        }

    # -- maintenance ---------------------------------------------------------

    def verify(self, jobs: int = 1) -> Dict[str, Any]:
        """Full-archive integrity check; returns a canonical-JSON report.

        Re-reads every manifest from disk (bypassing the warm cache),
        re-hashes and re-decodes every referenced segment, and recomputes
        each segment's summary against the manifest's copy.  ``jobs > 1``
        fans segment checks over worker processes; the report is
        byte-identical for any job count.  ``ok`` is True iff no errors.

        Safe to run while a concurrent ingest is mid-atomic-write: the
        writer's ``*.tmp`` files are never opened or reported as errors
        (their count lands in ``in_flight_tmp``), and segments referenced
        by tenant namespaces under ``tenants/`` never show up as orphans.
        A tenant bank itself (shared ``segments/``) skips the orphan scan
        entirely — it cannot distinguish a sibling's segment from a true
        orphan; the service root's verify owns that question.
        """
        from repro.harness.parallel import parallel_map

        errors: List[Dict[str, Any]] = []
        tasks: List[Tuple[str, str, int, str]] = []
        referenced: set = set()
        n_manifests = 0
        if self.manifests_dir.is_dir():
            for path in sorted(self.manifests_dir.glob("*.json")):
                n_manifests += 1
                try:
                    m = RunManifest.loads(path.read_text("utf-8"))
                except (OSError, StoreCorruptionError) as exc:
                    errors.append(
                        {"run_id": path.stem, "rank": None, "sha256": None,
                         "error": "manifest unreadable: %s" % exc}
                    )
                    continue
                if m.run_id != path.stem:
                    errors.append(
                        {"run_id": path.stem, "rank": None, "sha256": None,
                         "error": "manifest run_id %s does not match its "
                                  "filename" % m.run_id[:12]}
                    )
                for seg in m.segments:
                    referenced.add(seg.sha256)
                    tasks.append(
                        (str(self.root), m.run_id, seg.rank, seg.sha256)
                    )
        for err in parallel_map(_verify_segment_task, tasks, jobs=jobs):
            if err is not None:
                errors.append(err)
        errors.sort(key=lambda e: (str(e["run_id"]), str(e["sha256"]), e["error"]))
        if self.shared_segments:
            orphans: List[str] = []
        else:
            pinned = set(referenced)
            for path in self._tenant_manifest_paths():
                try:
                    pinned.update(
                        RunManifest.loads(path.read_text("utf-8")).segment_shas()
                    )
                except (OSError, StoreCorruptionError):
                    continue  # the tenant's own verify reports it
            orphans = sorted(set(self.disk_segments()) - pinned)
        return {
            "schema": "repro/store/verify/v1",
            "runs": n_manifests,
            "segments_checked": len(tasks),
            "ok": not errors,
            "errors": errors,
            "orphan_segments": orphans,
            "in_flight_tmp": len(self.tmp_files()),
        }

    def gc(self, dry_run: bool = False, tmp_ttl_seconds: float = 3600.0) -> Dict[str, Any]:
        """Remove segment files no manifest references.

        Manifests are the root set (read directly from disk, not the
        cache): this bank's own plus every tenant namespace's under
        ``tenants/*/manifests/`` — tenant runs pin shared segments.
        Anything under ``segments/`` not reachable from one is deleted —
        or merely listed with ``dry_run``.  Never touches manifests
        themselves: to drop a run, delete its manifest file and then
        ``gc``.

        In-flight ``*.tmp`` atomic-write files are left alone unless
        older than ``tmp_ttl_seconds`` (crashed-writer residue; reclaimed
        into ``removed_tmp_files``).  The same grace protects *fresh*
        unreferenced ``.seg`` files: a concurrent ingest lands segments
        before its manifest, so a segment younger than
        ``tmp_ttl_seconds`` may be live even though no manifest names it
        yet — it is kept (counted as ``kept_fresh_segments``) and
        reclaimed by a later gc if its manifest never arrives.  Together
        these make gc safe to run concurrently with a live ingest; pass
        ``tmp_ttl_seconds=0.0`` to reclaim everything immediately when
        no writer can be alive.  A tenant bank (shared ``segments/``) refuses
        to gc at all: it cannot tell a sibling tenant's live segment from
        garbage; gc the service root instead.
        """
        if self.shared_segments:
            raise StoreError(
                "refusing to gc tenant namespace %r: its segments/ is shared "
                "with sibling tenants; gc the service store root instead"
                % str(self.root)
            )
        referenced: set = set()
        roots: List[Path] = []
        if self.manifests_dir.is_dir():
            roots.extend(sorted(self.manifests_dir.glob("*.json")))
        roots.extend(self._tenant_manifest_paths())
        for path in roots:
            try:
                m = RunManifest.loads(path.read_text("utf-8"))
            except (OSError, StoreCorruptionError):
                continue  # verify reports it; gc must not widen damage
            referenced.update(m.segment_shas())
        removed: List[str] = []
        freed = 0
        kept_fresh = 0
        now = time.time()
        for sha in self.disk_segments():
            if sha in referenced:
                continue
            path = self.segment_path(sha)
            try:
                st = path.stat()
            except OSError:
                continue  # vanished mid-scan (another gc, or a drop)
            if now - st.st_mtime < tmp_ttl_seconds:
                # Freshly landed: a live ingest writes segments before
                # its manifest, so this may be referenced momentarily.
                kept_fresh += 1
                continue
            if not dry_run:
                try:
                    path.unlink()
                except OSError:
                    continue
            removed.append(sha)
            freed += st.st_size
        removed_tmp: List[str] = []
        for tmp in self.tmp_files():
            try:
                age = now - tmp.stat().st_mtime
            except OSError:
                continue  # completed (os.replace) or cleaned up mid-scan
            if age < tmp_ttl_seconds:
                continue  # plausibly a live writer; never race it
            if not dry_run:
                try:
                    tmp.unlink()
                except OSError:
                    continue
            removed_tmp.append(str(tmp.relative_to(self.root)))
        return {
            "schema": "repro/store/gc/v1",
            "dry_run": bool(dry_run),
            "removed_segments": removed,
            "removed_tmp_files": removed_tmp,
            "bytes_freed": freed,
            "kept_segments": len(referenced),
            "kept_fresh_segments": kept_fresh,
        }


def _verify_segment_task(task: Tuple[str, str, int, str]) -> Optional[Dict[str, Any]]:
    """Check one referenced segment (parallel-map worker entry).

    Returns ``None`` when the segment is healthy, else an error record.
    Lives at module level so it pickles into worker processes.
    """
    root, run_id, rank, sha = task
    bank = TraceBank(root, create=False)

    def err(msg: str) -> Dict[str, Any]:
        return {"run_id": run_id, "rank": rank, "sha256": sha, "error": msg}

    path = bank.segment_path(sha)
    try:
        blob = path.read_bytes()
    except OSError:
        return err("segment file missing")
    if content_address(blob) != sha:
        return err("content hash mismatch")
    try:
        tf = decode_segment(blob)
    except Exception as exc:  # decode must never crash verify
        return err("undecodable: %s" % exc)
    recomputed = summarize_segment(tf, rank, sha, len(blob))
    m = RunManifest.loads(bank.manifest_path(run_id).read_text("utf-8"))
    stored = next(
        (s for s in m.segments if s.sha256 == sha and s.rank == rank), None
    )
    if stored is None:
        return err("segment not in manifest (index drift)")
    if recomputed != stored:
        return err("summary drift: manifest summary does not match events")
    return None


def render_store_summary(stats: Dict[str, Any]) -> str:
    """Human rendering of :meth:`TraceBank.stats` for ``observe``/``ls``."""
    lines = [
        "TraceBank archive: %d run(s), %d event(s)" % (stats["runs"], stats["events"]),
        "segments: %d referenced (%d unique), %d on disk, %d orphan(s)"
        % (
            stats["segments_referenced"],
            stats["segments_unique"],
            stats["segments_on_disk"],
            stats["orphan_segments"],
        ),
        "bytes: %d logical / %d stored (dedup ratio %.2fx)"
        % (stats["logical_bytes"], stats["stored_bytes"], stats["dedup_ratio"]),
    ]
    if stats["runs_by_framework"]:
        lines.append(
            "runs by framework: "
            + ", ".join(
                "%s=%d" % (fw, n) for fw, n in stats["runs_by_framework"].items()
            )
        )
    return "\n".join(lines) + "\n"
