"""Run manifests: the archive's versioned per-run index records.

One manifest describes one ingested run: its free-form metadata (framework,
access pattern, block size, nprocs, fault schedule...), the codec its
segments were encoded with, and one :class:`~repro.store.segments.SegmentMeta`
per ``(run, rank)`` segment.  The manifest *is* the index — queries read
manifests (through the warm cache in :mod:`repro.store.index`) and only
touch segment files that survive predicate pushdown.

``run_id`` is itself content-derived: a SHA-256 over the canonical JSON of
the metadata plus the ordered ``(rank, sha256)`` segment list.  Ingesting
the same run twice therefore lands on the same manifest path and the same
segment set — the idempotence/dedup contract the acceptance tests pin down.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import StoreCorruptionError
from repro.obs.metrics import canonical_json
from repro.store.segments import SegmentMeta

__all__ = ["MANIFEST_SCHEMA", "RunManifest", "json_safe_meta", "compute_run_id"]

#: Versioned manifest schema tag; readers reject anything else.
MANIFEST_SCHEMA = "repro/store/manifest/v1"


def json_safe_meta(meta: Optional[Mapping[str, Any]]) -> Dict[str, Any]:
    """Reduce free-form run metadata to plain, canonically ordered JSON.

    Enums keep their value, mappings get string keys and sorted order,
    sets become sorted lists, and anything else non-primitive falls back
    to ``str()`` — metadata must never make a manifest unserializable or
    its ``run_id`` order-dependent.
    """

    def conv(obj: Any) -> Any:
        if isinstance(obj, enum.Enum):
            return conv(obj.value)
        if isinstance(obj, Mapping):
            return {str(k): conv(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
        if isinstance(obj, (frozenset, set)):
            return sorted(str(v) for v in obj)
        if isinstance(obj, (list, tuple)):
            return [conv(v) for v in obj]
        if isinstance(obj, (str, int, float, bool)) or obj is None:
            return obj
        return str(obj)

    return conv(dict(meta or {}))


def compute_run_id(
    meta: Mapping[str, Any], segments: List[SegmentMeta], codec: Mapping[str, Any]
) -> str:
    """Content-derived run identity (SHA-256 hex).

    Depends only on the canonicalized metadata, the codec, and the ordered
    ``(rank, sha256)`` segment list — not on ingest time, host, or store
    location — so the same run archives to the same ``run_id`` everywhere.
    """
    material = {
        "schema": MANIFEST_SCHEMA,
        "meta": json_safe_meta(meta),
        "codec": dict(codec),
        "segments": [{"rank": s.rank, "sha256": s.sha256} for s in segments],
    }
    return hashlib.sha256(canonical_json(material).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class RunManifest:
    """One run's index record (see module docstring).

    ``segments`` are ordered by ``(rank, sha256)``; ``n_events`` and
    ``n_barriers`` are whole-run totals the ``ls``/stats paths report
    without opening any segment.
    """

    run_id: str
    meta: Dict[str, Any] = field(default_factory=dict)
    codec: Dict[str, Any] = field(default_factory=dict)
    segments: Tuple[SegmentMeta, ...] = ()
    n_events: int = 0
    n_barriers: int = 0

    def to_json(self) -> Dict[str, Any]:
        """The manifest file's JSON body (canonical field content)."""
        return {
            "schema": MANIFEST_SCHEMA,
            "run_id": self.run_id,
            "meta": json_safe_meta(self.meta),
            "codec": dict(self.codec),
            "segments": [s.to_json() for s in self.segments],
            "n_events": self.n_events,
            "n_barriers": self.n_barriers,
        }

    def dumps(self) -> str:
        """Canonical JSON text of :meth:`to_json` (byte-stable)."""
        return canonical_json(self.to_json()) + "\n"

    @staticmethod
    def from_json(obj: Dict[str, Any]) -> "RunManifest":
        """Parse a manifest body, validating schema and structure."""
        try:
            if obj["schema"] != MANIFEST_SCHEMA:
                raise StoreCorruptionError(
                    "unsupported manifest schema %r" % (obj["schema"],)
                )
            segments = tuple(SegmentMeta.from_json(s) for s in obj["segments"])
            return RunManifest(
                run_id=str(obj["run_id"]),
                meta=dict(obj.get("meta", {})),
                codec=dict(obj.get("codec", {})),
                segments=segments,
                n_events=int(obj["n_events"]),
                n_barriers=int(obj.get("n_barriers", 0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise StoreCorruptionError("malformed manifest: %s" % exc) from None

    @staticmethod
    def loads(text: str) -> "RunManifest":
        """Parse a manifest file's text."""
        try:
            obj = json.loads(text)
        except ValueError as exc:
            raise StoreCorruptionError("manifest is not JSON: %s" % exc) from None
        if not isinstance(obj, dict):
            raise StoreCorruptionError("manifest is not a JSON object")
        return RunManifest.from_json(obj)

    def segment_shas(self) -> List[str]:
        """Every segment digest referenced by this run (with duplicates)."""
        return [s.sha256 for s in self.segments]
