"""Directly-follows graphs over archived traces.

The taxonomy's causality axis asks what a tracer preserves about *order*:
which operation tends to follow which.  This module answers that question
over the archive — for each ``(run, rank)`` segment the filtered event
sequence (capture order) contributes an edge ``a -> b`` for every adjacent
pair, and per-shard partial graphs merge into one weighted
directly-follows graph.  Edges never cross segment boundaries: a rank's
last op does not "precede" another rank's first.

Shard selection, predicate pushdown, filtering, and the determinism
contract (shard-order merge, canonical JSON, byte-identical across job
counts) are all shared with :mod:`repro.store.query`.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Tuple

from fnmatch import fnmatchcase

from repro.obs.metrics import canonical_json
from repro.obs.tracepoints import STATE
from repro.store.bank import TraceBank
from repro.store.query import (
    Query,
    _columnar_prune,
    _columnar_selection,
    _event_matches,
    _filter_columns,
    select_shards,
)
from repro.store.segments import decode_segment
from repro.trace.columnar import is_columnar, read_columns, read_header

__all__ = ["DFG_SCHEMA", "build_dfg", "render_dfg_text", "render_dfg_dot"]

#: Versioned DFG report schema.
DFG_SCHEMA = "repro/store/dfg/v1"


def _dfg_columnar_seq(
    blob: bytes, rank: int, plan: Dict[str, Any]
) -> List[Tuple[str, float, float]]:
    """The filtered ``(name, timestamp, duration)`` sequence of one
    columnar shard, capture order.

    The graph needs the ``name`` column and the two time columns that
    weight its edges (plus whatever the filters read); everything else
    in the segment is skipped by frame length.
    """
    header = read_header(blob)
    glob = plan["path_glob"]
    matched_paths = None
    if glob is not None and header.get("paths") is not None:
        matched_paths = frozenset(
            p for p in header["paths"] if fnmatchcase(p, glob)
        )
    if _columnar_prune(header, rank, plan, matched_paths):
        return []
    n = int(header["n_events"])
    need = {"name", "timestamp", "duration"}
    need.update(_filter_columns(plan))
    cols = read_columns(blob, sorted(need))
    sel = _columnar_selection(n, cols, plan, matched_paths)
    names, stamps, durs = cols["name"], cols["timestamp"], cols["duration"]
    if sel is None:
        sel = range(n)
    return [(names[i], stamps[i], durs[i]) for i in sel]


def _dfg_shard(task: Tuple[str, str, int, str, Dict[str, Any]]) -> Dict[str, Any]:
    """One shard's partial graph (parallel-map worker entry).

    Module level so it pickles into worker processes; returns only plain
    JSON types.
    """
    root, run_id, rank, sha, plan = task
    bank = TraceBank(root, create=False)
    blob = bank.read_segment_blob(sha)
    plan = dict(plan)
    for key in ("ranks", "names", "layers"):
        if plan[key] is not None:
            plan[key] = set(plan[key])
    if is_columnar(blob):
        seq = _dfg_columnar_seq(blob, rank, plan)
    else:
        tf = decode_segment(blob, expected_sha=sha)
        seq = [
            (e.name, e.timestamp, e.duration)
            for e in tf.events
            if _event_matches(e, rank, plan)
        ]
    nodes: Dict[str, int] = {}
    edges: Dict[str, Dict[str, int]] = {}
    times: Dict[str, Dict[str, List[float]]] = {}
    for name, _ts, _dur in seq:
        nodes[name] = nodes.get(name, 0) + 1
    for (a, a_ts, a_dur), (b, b_ts, _b_dur) in zip(seq, seq[1:]):
        row = edges.setdefault(a, {})
        row[b] = row.get(b, 0) + 1
        # Inter-event gap: idle time between a's completion and b's
        # start.  Negative gaps (overlapping captures) are kept raw —
        # they are themselves a signal.
        gap = (b_ts or 0.0) - ((a_ts or 0.0) + (a_dur or 0.0))
        cell = times.setdefault(a, {}).setdefault(b, [0.0, gap, gap])
        cell[0] += gap
        cell[1] = min(cell[1], gap)
        cell[2] = max(cell[2], gap)
    out: Dict[str, Any] = {
        "matched": len(seq),
        "nodes": nodes,
        "edges": edges,
        "edge_times": times,
        "starts": {},
        "ends": {},
    }
    if seq:
        out["starts"] = {seq[0][0]: 1}
        out["ends"] = {seq[-1][0]: 1}
    return out


def build_dfg(bank: TraceBank, query: Query, jobs: int = 1) -> Dict[str, Any]:
    """Build the weighted directly-follows graph matching ``query``.

    The aggregate choice in ``query.agg`` is ignored — only its filters
    and run selection apply.  Returns a canonical-JSON report with node
    counts, edge weights, start/end op tallies (one start and one end
    per non-empty shard sequence), and per-edge time attribution under
    ``graph["edge_times"]`` (count / sum / mean / min / max of the
    inter-event gap per directly-follows edge — the idle seconds between
    the first op's completion and the next op's start, summed in shard
    order); byte-identical for any ``jobs``.
    """
    from repro.harness.parallel import parallel_map

    query.validate()
    _selected, shards, scan = select_shards(bank, query)
    plan = query.plan()
    tasks = [(root, run_id, rank, sha, plan) for root, run_id, rank, sha in shards]
    partials = parallel_map(_dfg_shard, tasks, jobs=jobs)
    nodes: Dict[str, int] = {}
    edges: Dict[str, Dict[str, int]] = {}
    times: Dict[str, Dict[str, List[float]]] = {}
    starts: Dict[str, int] = {}
    ends: Dict[str, int] = {}
    matched = 0
    for p in partials:
        matched += p["matched"]
        for name, n in sorted(p["nodes"].items()):
            nodes[name] = nodes.get(name, 0) + n
        for a, row in sorted(p["edges"].items()):
            dst = edges.setdefault(a, {})
            for b, n in sorted(row.items()):
                dst[b] = dst.get(b, 0) + n
        for a, row in sorted(p["edge_times"].items()):
            dst_t = times.setdefault(a, {})
            for b, (gap_sum, gap_min, gap_max) in sorted(row.items()):
                cell = dst_t.setdefault(b, [0.0, gap_min, gap_max])
                cell[0] += gap_sum
                cell[1] = min(cell[1], gap_min)
                cell[2] = max(cell[2], gap_max)
        for name, n in sorted(p["starts"].items()):
            starts[name] = starts.get(name, 0) + n
        for name, n in sorted(p["ends"].items()):
            ends[name] = ends.get(name, 0) + n
    edge_times: Dict[str, Dict[str, Dict[str, float]]] = {}
    for a, row in sorted(times.items()):
        for b, (gap_sum, gap_min, gap_max) in sorted(row.items()):
            count = edges[a][b]
            edge_times.setdefault(a, {})[b] = {
                "count": count,
                "sum": gap_sum,
                "mean": gap_sum / count,
                "min": gap_min,
                "max": gap_max,
            }
    col = STATE.collector
    if col is not None:
        col.store_scan(scan["segments_scanned"], scan["segments_pruned"], matched)
    report = {
        "schema": DFG_SCHEMA,
        "query": query.echo(),
        "scan": dict(scan, events_matched=matched),
        "graph": {
            "nodes": dict(sorted(nodes.items())),
            "edges": {a: dict(sorted(row.items())) for a, row in sorted(edges.items())},
            "edge_times": edge_times,
            "starts": dict(sorted(starts.items())),
            "ends": dict(sorted(ends.items())),
            "n_nodes": len(nodes),
            "n_edges": sum(len(row) for row in edges.values()),
        },
    }
    return json.loads(canonical_json(report))


def render_dfg_text(report: Dict[str, Any]) -> str:
    """Human rendering of a DFG report: edges sorted by weight then name."""
    graph = report["graph"]
    lines = [
        "directly-follows graph: %d op(s), %d edge(s), %d event(s) scanned"
        % (graph["n_nodes"], graph["n_edges"], report["scan"]["events_matched"]),
    ]
    flat: List[Tuple[int, str, str]] = []
    for a, row in graph["edges"].items():
        for b, n in row.items():
            flat.append((n, a, b))
    flat.sort(key=lambda t: (-t[0], t[1], t[2]))
    edge_times = graph.get("edge_times", {})
    for n, a, b in flat:
        line = "  %-24s -> %-24s x%d" % (a, b, n)
        cell = edge_times.get(a, {}).get(b)
        if cell is not None:
            line += "  (mean gap %.6f s)" % cell["mean"]
        lines.append(line)
    if graph["starts"]:
        lines.append(
            "starts: " + ", ".join("%s x%d" % kv for kv in graph["starts"].items())
        )
    if graph["ends"]:
        lines.append(
            "ends:   " + ", ".join("%s x%d" % kv for kv in graph["ends"].items())
        )
    return "\n".join(lines) + "\n"


def render_dfg_dot(report: Dict[str, Any]) -> str:
    """Graphviz DOT rendering of a DFG report (edge labels are weights)."""
    graph = report["graph"]
    lines = ["digraph dfg {", "  rankdir=LR;"]
    for name, n in graph["nodes"].items():
        lines.append('  "%s" [label="%s\\n%d"];' % (name, name, n))
    for a, row in graph["edges"].items():
        for b, n in row.items():
            lines.append('  "%s" -> "%s" [label="%d"];' % (a, b, n))
    lines.append("}")
    return "\n".join(lines) + "\n"
