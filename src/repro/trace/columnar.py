"""Columnar binary trace codec (store codec v2).

Where the v1 codec (:mod:`repro.trace.binary_format`) serializes one
record after another — so reading *any* field means decoding *every*
field of every event — this codec shreds a :class:`~repro.trace.records.
TraceFile` into per-field **columns**, each compressed and CRC-framed
independently:

* a query that touches two fields decompresses two frames and hops over
  the rest by length prefix (:func:`repro.trace.checksum.frame_span`) —
  no CRC pass, no inflate, no object construction for unused columns;
* strings (op names, hostnames, users, paths, rendered results, args
  JSON) are interned into one shared dictionary and stored as u32 ids —
  traces repeat a handful of operation names millions of times, and the
  repeats collapse to small integers before zlib ever sees them;
* integer columns are delta-encoded (first value, then differences)
  ahead of zlib; floats are stored as raw IEEE-754 little-endian
  doubles, never delta'd, so decode is bit-exact;
* the header carries per-column min/max plus the distinct op-name and
  path sets, giving readers column-granularity predicate pushdown on
  top of the manifest-granularity pruning the store already does.

Layout::

    magic "RTCF" | version u16 | frame(header-json) | frame(dictionary)
                 | frame(column)*   (fixed order, listed in the header)

where each column frame body is ``compress(enc-tag u8 | packed-bytes)``.
Nullable fields (rank, path, fd, nbytes, offset, result) ride as dense
arrays with a per-event ``flags`` bitmap column marking which slots are
real — exactly the v1 flag bits, transposed.
"""

from __future__ import annotations

import json
import struct
from itertools import accumulate
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import TraceFormatError, TraceTruncatedError
from repro.trace.checksum import frame, frame_span, unframe
from repro.trace.compressio import compress, decompress
from repro.trace.events import EventLayer, TraceEvent
from repro.trace.records import TraceFile

__all__ = [
    "MAGIC",
    "VERSION",
    "COLUMNS",
    "encode_trace_file_columnar",
    "decode_trace_file_columnar",
    "is_columnar",
    "read_header",
    "read_columns",
]

MAGIC = b"RTCF"
VERSION = 2

# v1-compatible per-event presence bits (the flags column), plus one new
# bit preserving whether a present result was an int or a string — v1
# re-parses the rendered text and cannot tell "5" from 5.
_F_RANK = 1 << 0
_F_FD = 1 << 1
_F_NBYTES = 1 << 2
_F_OFFSET = 1 << 3
_F_PATH = 1 << 4
_F_RESULT = 1 << 5
_F_RESULT_INT = 1 << 6

_LAYER_CODE = {layer: i for i, layer in enumerate(EventLayer)}
_CODE_LAYER = {i: layer for layer, i in _LAYER_CODE.items()}
_CODE_LAYER_VALUE = {i: layer.value for layer, i in _LAYER_CODE.items()}

#: Physical column file order.  ``enc`` picks the packer: ``u8`` raw
#: bytes, ``f8`` raw doubles, ``id`` dictionary ids, ``i64`` delta ints.
COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("flags", "u8"),
    ("timestamp", "f8"),
    ("duration", "f8"),
    ("layer", "u8"),
    ("name", "id"),
    ("pid", "i64"),
    ("rank", "i64"),
    ("hostname", "id"),
    ("user", "id"),
    ("path", "id"),
    ("fd", "i64"),
    ("nbytes", "i64"),
    ("offset", "i64"),
    ("result", "id"),
    ("args", "id"),
)

_COLUMN_INDEX = {name: i for i, (name, _enc) in enumerate(COLUMNS)}

#: Columns a logical field needs beyond itself (presence bits, strings).
_NEEDS_FLAGS = frozenset(["rank", "path", "fd", "nbytes", "offset", "result"])
_NEEDS_DICT = frozenset(["name", "hostname", "user", "path", "result", "args"])

# Raw/delta tag inside an integer column body (before compression).
_ENC_RAW = 0
_ENC_DELTA = 1

_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")


class _Interner:
    """First-occurrence string dictionary: str -> dense u32 id."""

    __slots__ = ("ids", "strings")

    def __init__(self) -> None:
        self.ids: Dict[str, int] = {}
        self.strings: List[str] = []

    def put(self, text: str) -> int:
        got = self.ids.get(text)
        if got is not None:
            return got
        new_id = len(self.strings)
        self.ids[text] = new_id
        self.strings.append(text)
        return new_id


def _pack_dictionary(strings: Sequence[str]) -> bytes:
    out = [_U32.pack(len(strings))]
    for text in strings:
        raw = text.encode("utf-8")
        if len(raw) > 0xFFFF:
            raise TraceFormatError("string too long for dictionary entry")
        out.append(_U16.pack(len(raw)))
        out.append(raw)
    return b"".join(out)


def _unpack_dictionary(data: bytes) -> List[str]:
    if len(data) < 4:
        raise TraceTruncatedError("dictionary count truncated")
    (count,) = _U32.unpack_from(data, 0)
    pos = 4
    strings: List[str] = []
    for _ in range(count):
        if pos + 2 > len(data):
            raise TraceTruncatedError("dictionary entry length truncated")
        (n,) = _U16.unpack_from(data, pos)
        pos += 2
        if pos + n > len(data):
            raise TraceTruncatedError("dictionary entry body truncated")
        try:
            strings.append(data[pos : pos + n].decode("utf-8"))
        except UnicodeDecodeError:
            raise TraceFormatError("corrupt UTF-8 in dictionary entry") from None
        pos += n
    if pos != len(data):
        raise TraceFormatError("trailing bytes after dictionary")
    return strings


def _pack_ints(values: Sequence[int]) -> bytes:
    """Delta-pack an integer column (falls back to raw on i64 overflow)."""
    n = len(values)
    if n == 0:
        return bytes([_ENC_DELTA])
    deltas = [values[0]]
    prev = values[0]
    for v in values[1:]:
        deltas.append(v - prev)
        prev = v
    try:
        return bytes([_ENC_DELTA]) + struct.pack("<%dq" % n, *deltas)
    except struct.error:
        # A delta overflowed i64 (adversarial offsets); raw still fits
        # because every stored value is i64 by format invariant.
        return bytes([_ENC_RAW]) + struct.pack("<%dq" % n, *values)


def _unpack_ints(data: bytes, n: int) -> List[int]:
    if not data:
        raise TraceTruncatedError("integer column truncated")
    tag = data[0]
    if len(data) != 1 + 8 * n:
        raise TraceFormatError(
            "integer column length mismatch: %d bytes for %d values"
            % (len(data) - 1, n)
        )
    values = struct.unpack_from("<%dq" % n, data, 1)
    if tag == _ENC_DELTA:
        return list(accumulate(values))
    if tag == _ENC_RAW:
        return list(values)
    raise TraceFormatError("unknown integer column encoding 0x%02x" % tag)


def _pack_floats(values: Sequence[float]) -> bytes:
    return struct.pack("<%dd" % len(values), *values)


def _unpack_floats(data: bytes, n: int) -> List[float]:
    if len(data) != 8 * n:
        raise TraceFormatError(
            "float column length mismatch: %d bytes for %d values" % (len(data), n)
        )
    return list(struct.unpack("<%dd" % n, data))


def _unpack_u8(data: bytes, n: int) -> List[int]:
    if len(data) != n:
        raise TraceFormatError(
            "byte column length mismatch: %d bytes for %d values" % (len(data), n)
        )
    return list(data)


def _numeric_stats(values: Sequence, present: Optional[Sequence[int]] = None) -> Optional[Dict[str, Any]]:
    """Min/max over present slots (None when the column is all-null)."""
    if present is None:
        kept = values
    else:
        kept = [v for v, p in zip(values, present) if p]
    if not kept:
        return None
    return {"min": min(kept), "max": max(kept)}


def encode_trace_file_columnar(
    tf: TraceFile, compressed: bool = True, checksum: bool = True
) -> bytes:
    """Serialize a trace file columnar-first (see module docstring)."""
    events = tf.events
    n = len(events)
    interner = _Interner()

    flags: List[int] = []
    ts: List[float] = []
    dur: List[float] = []
    layer: List[int] = []
    name_ids: List[int] = []
    pids: List[int] = []
    ranks: List[int] = []
    host_ids: List[int] = []
    user_ids: List[int] = []
    path_ids: List[int] = []
    fds: List[int] = []
    nbytes_col: List[int] = []
    offsets: List[int] = []
    result_ids: List[int] = []
    args_ids: List[int] = []

    put = interner.put
    for e in events:
        f = 0
        if e.rank is not None:
            f |= _F_RANK
        if e.fd is not None:
            f |= _F_FD
        if e.nbytes is not None:
            f |= _F_NBYTES
        if e.offset is not None:
            f |= _F_OFFSET
        if e.path is not None:
            f |= _F_PATH
        if e.result is not None:
            f |= _F_RESULT
            if isinstance(e.result, int) and not isinstance(e.result, bool):
                f |= _F_RESULT_INT
        flags.append(f)
        ts.append(e.timestamp)
        dur.append(e.duration)
        layer.append(_LAYER_CODE[e.layer])
        name_ids.append(put(e.name))
        pids.append(e.pid)
        ranks.append(e.rank if e.rank is not None else 0)
        host_ids.append(put(e.hostname))
        user_ids.append(put(e.user))
        path_ids.append(put(e.path) if e.path is not None else 0)
        fds.append(e.fd if e.fd is not None else 0)
        nbytes_col.append(e.nbytes if e.nbytes is not None else 0)
        offsets.append(e.offset if e.offset is not None else 0)
        result_ids.append(put(str(e.result)) if e.result is not None else 0)
        args_ids.append(put(json.dumps(list(e.args), separators=(",", ":"))))

    series: Dict[str, Sequence] = {
        "flags": flags,
        "timestamp": ts,
        "duration": dur,
        "layer": layer,
        "name": name_ids,
        "pid": pids,
        "rank": ranks,
        "hostname": host_ids,
        "user": user_ids,
        "path": path_ids,
        "fd": fds,
        "nbytes": nbytes_col,
        "offset": offsets,
        "result": result_ids,
        "args": args_ids,
    }

    # Per-column pushdown stats: numeric min/max over *present* values,
    # plus the distinct op-name set (and path set, when small) so scans
    # can drop a whole segment from the header alone.
    rank_present = [f & _F_RANK for f in flags]
    stats: Dict[str, Optional[Dict[str, Any]]] = {
        "timestamp": _numeric_stats(ts),
        "duration": _numeric_stats(dur),
        "pid": _numeric_stats(pids),
        "rank": _numeric_stats(ranks, rank_present),
        "fd": _numeric_stats(fds, [f & _F_FD for f in flags]),
        "nbytes": _numeric_stats(nbytes_col, [f & _F_NBYTES for f in flags]),
        "offset": _numeric_stats(offsets, [f & _F_OFFSET for f in flags]),
    }
    distinct_names = sorted({e.name for e in events})
    distinct_paths = sorted({e.path for e in events if e.path is not None})

    header = {
        "hostname": tf.hostname,
        "pid": tf.pid,
        "rank": tf.rank,
        "framework": tf.framework,
        "n_events": n,
        "columns": [name for name, _enc in COLUMNS],
        "stats": stats,
        "names": distinct_names if len(distinct_names) <= 512 else None,
        "paths": distinct_paths if len(distinct_paths) <= 512 else None,
    }
    header_raw = json.dumps(header, separators=(",", ":"), sort_keys=True).encode("utf-8")

    out = [MAGIC, _U16.pack(VERSION), frame(header_raw, with_checksum=checksum)]
    out.append(
        frame(
            compress(_pack_dictionary(interner.strings), enabled=compressed),
            with_checksum=checksum,
        )
    )
    for col_name, enc in COLUMNS:
        values = series[col_name]
        if enc == "u8":
            body = bytes(values)
        elif enc == "f8":
            body = _pack_floats(values)
        else:  # "id" and "i64" are both integer columns
            body = _pack_ints(values)
        out.append(frame(compress(body, enabled=compressed), with_checksum=checksum))
    return b"".join(out)


def is_columnar(data: bytes) -> bool:
    """True when ``data`` carries the columnar magic."""
    return data[: len(MAGIC)] == MAGIC


def _read_preamble(data: bytes) -> Tuple[Dict[str, Any], int]:
    """Validate magic/version, return (header, offset-of-dictionary-frame)."""
    if not is_columnar(data):
        raise TraceFormatError("not a columnar trace (bad magic)")
    pos = len(MAGIC)
    if pos + 2 > len(data):
        raise TraceTruncatedError("version truncated")
    (version,) = _U16.unpack_from(data, pos)
    if version != VERSION:
        raise TraceFormatError("unsupported columnar trace version %d" % version)
    pos += 2
    header_raw, pos = unframe(data, pos)
    try:
        header = json.loads(header_raw.decode("utf-8"))
    except ValueError:
        raise TraceFormatError("corrupt header JSON") from None
    if not isinstance(header, dict):
        raise TraceFormatError("header is not a JSON object")
    if header.get("columns") != [name for name, _enc in COLUMNS]:
        raise TraceFormatError("unexpected column layout in header")
    return header, pos


def read_header(data: bytes) -> Dict[str, Any]:
    """The segment header (counts, file identity, per-column stats)."""
    header, _pos = _read_preamble(data)
    return header


def _decode_column(payload: bytes, enc: str, n: int):
    body = decompress(payload)
    if enc == "u8":
        return _unpack_u8(body, n)
    if enc == "f8":
        return _unpack_floats(body, n)
    return _unpack_ints(body, n)


def read_columns(data: bytes, fields: Sequence[str]) -> Dict[str, List[Any]]:
    """Project ``fields`` out of a columnar segment.

    Returns logical per-event lists (``None`` filled in for absent
    nullable slots, strings resolved through the dictionary, ``layer``
    rendered as its string value, ``args`` as its canonical JSON
    rendering).  Only the frames the projection needs
    are CRC-checked and decompressed; everything else is skipped by
    length prefix.
    """
    header, pos = _read_preamble(data)
    n = int(header.get("n_events", 0))
    want = set(fields)
    unknown = want.difference(_COLUMN_INDEX)
    if unknown:
        raise TraceFormatError("unknown columns requested: %s" % sorted(unknown))
    physical = set(want)
    if want & _NEEDS_FLAGS:
        physical.add("flags")
    need_dict = bool(want & _NEEDS_DICT)

    if need_dict:
        dict_payload, pos = unframe(data, pos)
        dictionary = _unpack_dictionary(decompress(dict_payload))
    else:
        dictionary = []
        pos = frame_span(data, pos)

    raw: Dict[str, List[Any]] = {}
    for col_name, enc in COLUMNS:
        if col_name in physical:
            payload, pos = unframe(data, pos)
            raw[col_name] = _decode_column(payload, enc, n)
        else:
            pos = frame_span(data, pos)
    if pos != len(data):
        raise TraceFormatError("trailing bytes after last column")

    flags = raw.get("flags")

    def strings(ids: List[int]) -> List[str]:
        try:
            return [dictionary[i] for i in ids]
        except IndexError:
            raise TraceFormatError("dictionary id out of range") from None

    out: Dict[str, List[Any]] = {}
    for field in fields:
        if field in out:
            continue
        col = raw[field]
        if field == "layer":
            try:
                out[field] = [_CODE_LAYER_VALUE[c] for c in col]
            except KeyError:
                raise TraceFormatError("unknown layer code in column") from None
        elif field in ("name", "hostname", "user"):
            out[field] = strings(col)
        elif field == "path":
            texts = strings(col)
            out[field] = [
                t if f & _F_PATH else None for t, f in zip(texts, flags)
            ]
        elif field == "result":
            texts = strings(col)
            vals: List[Any] = []
            for t, f in zip(texts, flags):
                if not f & _F_RESULT:
                    vals.append(None)
                elif f & _F_RESULT_INT:
                    vals.append(int(t))
                else:
                    vals.append(t)
            out[field] = vals
        elif field == "args":
            out[field] = strings(col)
        elif field == "rank":
            out[field] = [v if f & _F_RANK else None for v, f in zip(col, flags)]
        elif field == "fd":
            out[field] = [v if f & _F_FD else None for v, f in zip(col, flags)]
        elif field == "nbytes":
            out[field] = [v if f & _F_NBYTES else None for v, f in zip(col, flags)]
        elif field == "offset":
            out[field] = [v if f & _F_OFFSET else None for v, f in zip(col, flags)]
        else:  # flags, timestamp, duration, pid — raw columns
            out[field] = col
    return out


def decode_trace_file_columnar(data: bytes) -> TraceFile:
    """Invert :func:`encode_trace_file_columnar`, verifying checksums."""
    header, pos = _read_preamble(data)
    n = int(header.get("n_events", 0))
    dict_payload, pos = unframe(data, pos)
    dictionary = _unpack_dictionary(decompress(dict_payload))

    cols: Dict[str, List[Any]] = {}
    for col_name, enc in COLUMNS:
        payload, pos = unframe(data, pos)
        cols[col_name] = _decode_column(payload, enc, n)
    if pos != len(data):
        raise TraceFormatError("trailing bytes after last column")

    def text(i: int) -> str:
        try:
            return dictionary[i]
        except IndexError:
            raise TraceFormatError("dictionary id out of range") from None

    events: List[TraceEvent] = []
    for i in range(n):
        f = cols["flags"][i]
        try:
            layer = _CODE_LAYER[cols["layer"][i]]
        except KeyError:
            raise TraceFormatError(
                "unknown layer code %d" % cols["layer"][i]
            ) from None
        result: Any = None
        if f & _F_RESULT:
            rendered = text(cols["result"][i])
            result = int(rendered) if f & _F_RESULT_INT else rendered
        try:
            args = tuple(json.loads(text(cols["args"][i])))
        except (ValueError, TypeError):
            raise TraceFormatError("corrupt args JSON in column") from None
        try:
            events.append(
                TraceEvent(
                    timestamp=cols["timestamp"][i],
                    duration=cols["duration"][i],
                    layer=layer,
                    name=text(cols["name"][i]),
                    args=args,
                    result=result,
                    pid=cols["pid"][i],
                    rank=cols["rank"][i] if f & _F_RANK else None,
                    hostname=text(cols["hostname"][i]),
                    user=text(cols["user"][i]),
                    path=text(cols["path"][i]) if f & _F_PATH else None,
                    fd=cols["fd"][i] if f & _F_FD else None,
                    nbytes=cols["nbytes"][i] if f & _F_NBYTES else None,
                    offset=cols["offset"][i] if f & _F_OFFSET else None,
                )
            )
        except (ValueError, TypeError):
            raise TraceFormatError("invalid event fields in column data") from None
    expected = header.get("n_events")
    if expected is not None and expected != len(events):
        raise TraceFormatError(
            "header said %s events, decoded %d" % (expected, len(events))
        )
    return TraceFile(
        events,
        hostname=header.get("hostname", ""),
        pid=header.get("pid", 0),
        rank=header.get("rank"),
        framework=header.get("framework", ""),
    )
