"""Optional zlib compression of binary trace payloads.

Tracefs offers "optional ... compression ... of output" (§4.2).  A
one-byte tag keeps compressed and raw payloads self-describing, so a
reader needs no out-of-band flag.
"""

from __future__ import annotations

import zlib

from repro.errors import TraceFormatError

__all__ = ["compress", "decompress", "TAG_RAW", "TAG_ZLIB"]

TAG_RAW = 0x00
TAG_ZLIB = 0x01


def compress(payload: bytes, enabled: bool = True, level: int = 6) -> bytes:
    """Tag-and-maybe-compress.  Falls back to raw if compression grows it."""
    if enabled:
        packed = zlib.compress(payload, level)
        if len(packed) < len(payload):
            return bytes([TAG_ZLIB]) + packed
    return bytes([TAG_RAW]) + payload


def decompress(data: bytes) -> bytes:
    """Invert :func:`compress`."""
    if not data:
        raise TraceFormatError("empty compressed payload")
    tag, body = data[0], data[1:]
    if tag == TAG_RAW:
        return body
    if tag == TAG_ZLIB:
        try:
            return zlib.decompress(body)
        except zlib.error as exc:
            raise TraceFormatError("corrupt zlib payload: %s" % exc) from None
    raise TraceFormatError("unknown compression tag 0x%02x" % tag)
