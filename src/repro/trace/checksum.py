"""CRC32 framing for binary traces.

Tracefs offers "optional checksumming ... of output" (§4.2).  A frame is
``length (u32) | crc32 (u32) | payload``; readers verify before parsing,
so bit rot or truncation is detected rather than silently mis-decoded.
"""

from __future__ import annotations

import struct
import zlib
from typing import Tuple

from repro.errors import TraceChecksumError, TraceTruncatedError

__all__ = ["frame", "unframe", "frame_span", "crc32"]

_HEADER = struct.Struct("<II")


def crc32(data: bytes) -> int:
    """Stable CRC32 (unsigned)."""
    return zlib.crc32(data) & 0xFFFFFFFF


def frame(payload: bytes, with_checksum: bool = True) -> bytes:
    """Wrap a payload in a length+crc header (crc 0 disables verification)."""
    digest = crc32(payload) if with_checksum else 0
    return _HEADER.pack(len(payload), digest) + payload


def unframe(data: bytes, offset: int = 0) -> Tuple[bytes, int]:
    """Read one frame at ``offset``; returns ``(payload, next_offset)``.

    Raises :class:`TraceTruncatedError` on short data and
    :class:`TraceChecksumError` on digest mismatch.
    """
    if offset + _HEADER.size > len(data):
        raise TraceTruncatedError(
            "frame header truncated at offset %d" % offset
        )
    length, digest = _HEADER.unpack_from(data, offset)
    start = offset + _HEADER.size
    end = start + length
    if end > len(data):
        raise TraceTruncatedError(
            "frame payload truncated: need %d bytes at %d, have %d"
            % (length, start, len(data) - start)
        )
    payload = data[start:end]
    if digest != 0 and crc32(payload) != digest:
        raise TraceChecksumError("frame at offset %d failed CRC32" % offset)
    return payload, end


def frame_span(data: bytes, offset: int = 0) -> int:
    """Offset just past the frame at ``offset`` — without touching its body.

    The columnar reader uses this to hop over columns a projection does
    not need: only the 8-byte header is read, so skipped columns cost
    neither a CRC pass nor a decompression.  Raises
    :class:`TraceTruncatedError` if the frame does not fit.
    """
    if offset + _HEADER.size > len(data):
        raise TraceTruncatedError("frame header truncated at offset %d" % offset)
    (length, _digest) = _HEADER.unpack_from(data, offset)
    end = offset + _HEADER.size + length
    if end > len(data):
        raise TraceTruncatedError(
            "frame payload truncated: need %d bytes at %d, have %d"
            % (length, offset + _HEADER.size, len(data) - offset - _HEADER.size)
        )
    return end
