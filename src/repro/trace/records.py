"""Trace containers: per-node trace files and whole-run bundles.

LANL-Trace writes one raw trace file per process plus cluster-wide
aggregate timing (Figure 1); Tracefs writes one stream per mount; //TRACE
one per rank.  :class:`TraceFile` is the per-source container;
:class:`TraceBundle` groups every source of one traced run together with
the barrier timing stamps needed for skew/drift correction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional

from repro.trace.events import EventLayer, TraceEvent

__all__ = ["TraceFile", "TraceBundle", "BarrierStamp"]


@dataclass(frozen=True)
class BarrierStamp:
    """One line of LANL-Trace's aggregate timing output.

    The paper's Figure 1 shows the format::

        7: host13.lanl.gov (10378) Entered barrier at 1159808385.170918
        7: host13.lanl.gov (10378) Exited barrier at 1159808385.173167

    A stamp records a rank's *local* clock reading on entering and exiting
    one global barrier; because all ranks exit a barrier at (nearly) the
    same true time, pairs of stamps from different ranks expose their
    relative skew, and stamps from two different barriers expose drift.
    """

    barrier_label: str
    rank: int
    hostname: str
    pid: int
    entered_at: float
    exited_at: float

    def __post_init__(self) -> None:
        if self.exited_at < self.entered_at:
            raise ValueError("barrier exit before entry")


class TraceFile:
    """Events captured from one source (one process / one mount).

    Iterable and indexable; events are kept in capture order (which is
    local-timestamp order for a single source).
    """

    def __init__(
        self,
        events: Iterable[TraceEvent] = (),
        hostname: str = "",
        pid: int = 0,
        rank: Optional[int] = None,
        framework: str = "",
    ):
        self.events: List[TraceEvent] = list(events)
        self.hostname = hostname
        self.pid = pid
        self.rank = rank
        self.framework = framework

    def append(self, event: TraceEvent) -> None:
        """Record one more event (capture order)."""
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __getitem__(self, i: int) -> TraceEvent:
        return self.events[i]

    # -- queries ----------------------------------------------------------

    def filter(self, predicate: Callable[[TraceEvent], bool]) -> "TraceFile":
        """A new TraceFile with only events matching ``predicate``."""
        out = TraceFile(
            (e for e in self.events if predicate(e)),
            hostname=self.hostname,
            pid=self.pid,
            rank=self.rank,
            framework=self.framework,
        )
        return out

    def by_layer(self, layer: EventLayer) -> "TraceFile":
        """Only the events captured at ``layer``."""
        return self.filter(lambda e: e.layer is layer)

    def names(self) -> List[str]:
        """Event names in capture order."""
        return [e.name for e in self.events]

    def total_bytes(self) -> int:
        """Sum of payload bytes over I/O events."""
        return sum(e.nbytes for e in self.events if e.nbytes is not None)

    def span(self) -> float:
        """Local-time distance from first event start to last event end."""
        if not self.events:
            return 0.0
        start = min(e.timestamp for e in self.events)
        end = max(e.end_timestamp for e in self.events)
        return end - start

    def map(self, fn: Callable[[TraceEvent], TraceEvent]) -> "TraceFile":
        """A new TraceFile with ``fn`` applied to every event."""
        return TraceFile(
            (fn(e) for e in self.events),
            hostname=self.hostname,
            pid=self.pid,
            rank=self.rank,
            framework=self.framework,
        )


class TraceBundle:
    """Everything one traced run produced.

    Attributes
    ----------
    files:
        Per-source trace files keyed by rank (or source index).
    barrier_stamps:
        LANL-Trace-style timing-job stamps for skew/drift accounting
        (empty for frameworks that do not support it — a taxonomy
        distinguishing feature).
    metadata:
        Free-form run description: workload name, parameters, framework,
        cluster size...
    """

    def __init__(
        self,
        files: Optional[Dict[int, TraceFile]] = None,
        barrier_stamps: Iterable[BarrierStamp] = (),
        metadata: Optional[Dict[str, object]] = None,
    ):
        self.files: Dict[int, TraceFile] = dict(files or {})
        self.barrier_stamps: List[BarrierStamp] = list(barrier_stamps)
        self.metadata: Dict[str, object] = dict(metadata or {})

    def add_file(self, key: int, tf: TraceFile) -> None:
        """Attach one source's trace under ``key`` (usually the rank)."""
        self.files[key] = tf

    @property
    def n_sources(self) -> int:
        return len(self.files)

    def all_events(self) -> List[TraceEvent]:
        """All events from all sources, in (source, capture) order."""
        out: List[TraceEvent] = []
        for key in sorted(self.files):
            out.extend(self.files[key].events)
        return out

    def total_events(self) -> int:
        """Events across every source."""
        return sum(len(tf) for tf in self.files.values())

    def map_events(self, fn: Callable[[TraceEvent], TraceEvent]) -> "TraceBundle":
        """A new bundle with ``fn`` applied to every event (metadata shared)."""
        return TraceBundle(
            files={k: tf.map(fn) for k, tf in self.files.items()},
            barrier_stamps=self.barrier_stamps,
            metadata=dict(self.metadata),
        )
