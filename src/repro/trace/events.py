"""The trace event model.

A single flat :class:`TraceEvent` record covers every event type the
taxonomy enumerates (§3.1 "Event types"): system calls, library calls
(MPI/MPI-IO functions), and file-system (VFS) operations.  One shared model
— rather than per-framework formats — is deliberately the paper's
future-work "single trace-data API": every framework in
:mod:`repro.frameworks` emits these, and every codec, anonymizer, analysis
tool, and replayer consumes them.

Timestamps are **node-local** (from :class:`repro.cluster.clock.Clock`),
exactly as a real tracer records them; converting to a global timeline
requires the skew/drift machinery in :mod:`repro.analysis.skew`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Any, Optional, Tuple

__all__ = ["EventLayer", "TraceEvent"]


class EventLayer(str, enum.Enum):
    """Where in the stack an event was captured.

    Mirrors the taxonomy's event-type distinctions:

    * ``SYSCALL`` — system I/O calls (strace level; LANL-Trace with strace,
      //TRACE's interposed I/O system calls);
    * ``LIBCALL`` — linked library calls (ltrace level; MPI/MPI-IO
      functions);
    * ``VFS`` — file-system operations (the level Tracefs captures, which
      sees events lower levels miss, e.g. memory-mapped I/O and NFS calls);
    * ``NET`` — messages between nodes (the taxonomy's third event type).
    """

    SYSCALL = "syscall"
    LIBCALL = "libcall"
    VFS = "vfs"
    NET = "net"


@dataclass(frozen=True)
class TraceEvent:
    """One traced event.

    Attributes
    ----------
    timestamp:
        Node-local time at call entry (seconds, Unix-epoch-like).
    duration:
        Elapsed local time of the call — strace's ``<0.000034>`` suffix.
    layer:
        Capture layer, see :class:`EventLayer`.
    name:
        Function name in the style of the paper's Figure 1: ``SYS_open``,
        ``SYS_write``, ``MPI_File_open``, ``vfs_write``...
    args:
        Printable argument tuple (strings, ints).  For replay and
        anonymization, I/O-relevant arguments are *also* duplicated into
        the typed fields below; ``args`` preserves presentation order.
    result:
        Return value (int or string form); None while/if unfinished.
    pid / rank / hostname / user:
        Identity of the caller.  ``user`` is sensitive and a target of
        anonymization; ``rank`` is None for non-MPI processes.
    path / fd / nbytes / offset:
        Typed I/O fields for events that have them (None otherwise).
    """

    timestamp: float
    duration: float
    layer: EventLayer
    name: str
    args: Tuple[Any, ...] = ()
    result: Optional[Any] = None
    pid: int = 0
    rank: Optional[int] = None
    hostname: str = ""
    user: str = ""
    path: Optional[str] = None
    fd: Optional[int] = None
    nbytes: Optional[int] = None
    offset: Optional[int] = None

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError("event duration must be non-negative")
        if not isinstance(self.layer, EventLayer):
            object.__setattr__(self, "layer", EventLayer(self.layer))
        if not isinstance(self.args, tuple):
            object.__setattr__(self, "args", tuple(self.args))

    # -- convenience ----------------------------------------------------------

    @property
    def end_timestamp(self) -> float:
        """Local time at call return."""
        return self.timestamp + self.duration

    @property
    def is_io(self) -> bool:
        """True for events that move payload bytes (read/write style)."""
        return self.nbytes is not None

    def with_fields(self, **changes: Any) -> "TraceEvent":
        """Return a copy with ``changes`` applied (events are immutable)."""
        return replace(self, **changes)

    def brief(self) -> str:
        """One-line human summary (not the canonical text format)."""
        argstr = ", ".join(repr(a) for a in self.args)
        res = "" if self.result is None else " = %s" % (self.result,)
        return "%s(%s)%s <%0.6f>" % (self.name, argstr, res, self.duration)
