"""Human-readable trace codec in the LANL-Trace raw style (Figure 1).

One event per line::

    1159808385.170918 SYS_open("/etc/hosts", O_RDONLY, 0644) = 3 <0.000034>

Two dialects:

* ``annotated=True`` (default) appends a machine-readable tail
  (``\t# layer=syscall pid=10378 ...``) so decoding recovers the full
  :class:`~repro.trace.events.TraceEvent` — the codec round-trips;
* ``annotated=False`` renders exactly the paper's presentation (used by
  the Figure 1 outputs); decoding it recovers the visible fields only.

File-level metadata (hostname, pid, rank, framework) travels in ``##``
header lines.
"""

from __future__ import annotations

import json
import re
from typing import Any, List, Optional, Tuple

from repro.errors import TraceFormatError
from repro.trace.events import EventLayer, TraceEvent
from repro.trace.records import TraceFile

__all__ = ["encode_event", "decode_event", "encode_trace_file", "decode_trace_file"]

_EVENT_RE = re.compile(
    r"^(?P<ts>\d+\.\d+)\s+"
    r"(?P<name>[A-Za-z_][A-Za-z0-9_]*)"
    r"\((?P<args>.*)\)\s*"
    r"(?:=\s*(?P<result>[^<#]*?))?\s*"
    r"(?:<(?P<dur>\d+\.\d+)>|<unfinished \.\.\.>)"
    r"(?:\s*\t?#\s*(?P<annot>.*))?$"
)


def _encode_arg(arg: Any) -> str:
    if isinstance(arg, str):
        return json.dumps(arg)
    return str(arg)


def _split_args(argstr: str) -> List[str]:
    """Split on commas that are not inside double quotes.

    Tracks backslash escapes properly: in ``"\\\\"`` the closing quote is
    preceded by a backslash that is itself escaped, so simple look-behind
    misclassifies it.
    """
    parts: List[str] = []
    buf: List[str] = []
    in_quote = False
    escaped = False
    for c in argstr:
        if in_quote:
            buf.append(c)
            if escaped:
                escaped = False
            elif c == "\\":
                escaped = True
            elif c == '"':
                in_quote = False
        elif c == '"':
            in_quote = True
            buf.append(c)
        elif c == ",":
            parts.append("".join(buf).strip())
            buf = []
        else:
            buf.append(c)
    tail = "".join(buf).strip()
    if tail:
        parts.append(tail)
    return parts


def _decode_arg(text: str) -> Any:
    if text.startswith('"'):
        try:
            return json.loads(text)
        except ValueError:
            raise TraceFormatError("bad string argument: %r" % text) from None
    try:
        return int(text)
    except ValueError:
        return text


def encode_event(event: TraceEvent, annotated: bool = True) -> str:
    """Render one event as a raw-trace line."""
    args = ", ".join(_encode_arg(a) for a in event.args)
    if event.result is None:
        tail = "<unfinished ...>"
    else:
        tail = "= %s <%0.6f>" % (event.result, event.duration)
    line = "%0.6f %s(%s) %s" % (event.timestamp, event.name, args, tail)
    if annotated:
        annot = {
            "layer": event.layer.value,
            # The visible line omits duration for unfinished events; carry
            # it here so the annotated dialect round-trips exactly.
            "duration": event.duration,
            "pid": event.pid,
            "rank": event.rank,
            "hostname": event.hostname,
            "user": event.user,
            "path": event.path,
            "fd": event.fd,
            "nbytes": event.nbytes,
            "offset": event.offset,
        }
        line += "\t# " + json.dumps(annot, separators=(",", ":"))
    return line


def decode_event(line: str) -> TraceEvent:
    """Parse one raw-trace line back into a :class:`TraceEvent`."""
    m = _EVENT_RE.match(line.rstrip("\n"))
    if not m:
        raise TraceFormatError("unparseable trace line: %r" % line)
    args = tuple(_decode_arg(a) for a in _split_args(m.group("args")))
    result_text = m.group("result")
    result: Optional[Any]
    if result_text is None or result_text == "":
        result = None
    else:
        result_text = result_text.strip()
        try:
            result = int(result_text)
        except ValueError:
            result = result_text
    duration = float(m.group("dur")) if m.group("dur") else 0.0

    fields = dict(
        timestamp=float(m.group("ts")),
        duration=duration,
        layer=EventLayer.SYSCALL,
        name=m.group("name"),
        args=args,
        result=result,
    )
    annot_text = m.group("annot")
    if annot_text:
        try:
            annot = json.loads(annot_text)
            if not isinstance(annot, dict):
                raise ValueError("annotation is not an object")
            fields.update(
                layer=EventLayer(annot.get("layer", "syscall")),
                duration=annot.get("duration", duration),
                pid=annot.get("pid", 0),
                rank=annot.get("rank"),
                hostname=annot.get("hostname", ""),
                user=annot.get("user", ""),
                path=annot.get("path"),
                fd=annot.get("fd"),
                nbytes=annot.get("nbytes"),
                offset=annot.get("offset"),
            )
        except ValueError:
            raise TraceFormatError("bad annotation on line: %r" % line) from None
    try:
        return TraceEvent(**fields)
    except (ValueError, TypeError):
        raise TraceFormatError("invalid event fields on line: %r" % line) from None


def encode_trace_file(tf: TraceFile, annotated: bool = True) -> str:
    """Render a whole per-source trace (with ``##`` metadata headers)."""
    header = [
        "## repro-trace text v1",
        "## hostname=%s pid=%d rank=%s framework=%s"
        % (tf.hostname, tf.pid, tf.rank if tf.rank is not None else "-", tf.framework),
    ]
    lines = [encode_event(e, annotated=annotated) for e in tf.events]
    return "\n".join(header + lines) + "\n"


_HEADER_RE = re.compile(
    r"^## hostname=(?P<host>\S*) pid=(?P<pid>\d+) rank=(?P<rank>\S+) framework=(?P<fw>\S*)$"
)


def decode_trace_file(text: str) -> TraceFile:
    """Parse a text trace back into a :class:`TraceFile`."""
    hostname, pid, rank, framework = "", 0, None, ""
    events = []
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("##"):
            m = _HEADER_RE.match(line)
            if m:
                hostname = m.group("host")
                pid = int(m.group("pid"))
                rank = None if m.group("rank") == "-" else int(m.group("rank"))
                framework = m.group("fw")
            continue
        if line.startswith("#"):
            continue
        events.append(decode_event(line))
    return TraceFile(events, hostname=hostname, pid=pid, rank=rank, framework=framework)
