"""Trace data model, codecs, anonymization, and merging.

This package is the "single trace-data API" sketched in the paper's future
work (§6): one event model shared by all three frameworks, with codecs for
the formats the taxonomy distinguishes (human-readable vs. binary, §3.1
"Trace data format"), anonymization engines (§3.1 "Anonymization"), and a
merge tool that aggregates heterogeneous per-node traces onto one timeline.
"""

from repro.trace.events import EventLayer, TraceEvent
from repro.trace.records import TraceFile, TraceBundle, BarrierStamp

__all__ = [
    "EventLayer",
    "TraceEvent",
    "TraceFile",
    "TraceBundle",
    "BarrierStamp",
]
