"""Binary trace codec (the Tracefs-style format).

Tracefs generates "traces in binary format in order to save space and
facilitate automated parsing", with "optional checksumming, compression,
... or buffering (to improve performance) of output" (§2.2, §4.2).  This
codec has all four properties:

* **binary** — fixed struct header + length-prefixed strings per record;
* **checksummed** — every block travels in a CRC32 frame
  (:mod:`repro.trace.checksum`);
* **compressed** — optional zlib per block (:mod:`repro.trace.compressio`);
* **buffered** — records are grouped into blocks of ``block_records``
  events; larger blocks amortize framing/compression, the same trade the
  kernel module makes.

Layout::

    magic "RTBF" | version u16 | frame(header-json) | frame(block)*

where each block is ``compress(count u32 | record*)``.
"""

from __future__ import annotations

import json
import struct
from typing import List, Optional, Tuple

from repro.errors import TraceFormatError, TraceTruncatedError
from repro.trace.checksum import frame, unframe
from repro.trace.compressio import compress, decompress
from repro.trace.events import EventLayer, TraceEvent
from repro.trace.records import TraceFile

__all__ = ["encode_trace_file", "decode_trace_file", "encode_event_record", "decode_event_record"]

MAGIC = b"RTBF"
VERSION = 1

_FIXED = struct.Struct("<ddBIqqqB")
# timestamp f8 | duration f8 | layer u8 | pid u32 | fd q | nbytes q | offset q | flags u8
_F_RANK = 1 << 0
_F_FD = 1 << 1
_F_NBYTES = 1 << 2
_F_OFFSET = 1 << 3
_F_PATH = 1 << 4
_F_RESULT = 1 << 5

_LAYER_CODE = {layer: i for i, layer in enumerate(EventLayer)}
_CODE_LAYER = {i: layer for layer, i in _LAYER_CODE.items()}


def _pack_str(text: str) -> bytes:
    raw = text.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise TraceFormatError("string too long for binary record")
    return struct.pack("<H", len(raw)) + raw


def _unpack_str(data: bytes, offset: int) -> Tuple[str, int]:
    if offset + 2 > len(data):
        raise TraceTruncatedError("string length truncated")
    (n,) = struct.unpack_from("<H", data, offset)
    start = offset + 2
    if start + n > len(data):
        raise TraceTruncatedError("string body truncated")
    try:
        text = data[start : start + n].decode("utf-8")
    except UnicodeDecodeError:
        # Reachable with checksumming disabled: a flipped bit inside a
        # string body must surface as a format error, not a decode crash.
        raise TraceFormatError("corrupt UTF-8 in string field") from None
    return text, start + n


def encode_event_record(event: TraceEvent) -> bytes:
    """Serialize one event."""
    flags = 0
    rank = event.rank if event.rank is not None else 0
    if event.rank is not None:
        flags |= _F_RANK
    fd = event.fd if event.fd is not None else 0
    if event.fd is not None:
        flags |= _F_FD
    nbytes = event.nbytes if event.nbytes is not None else 0
    if event.nbytes is not None:
        flags |= _F_NBYTES
    off = event.offset if event.offset is not None else 0
    if event.offset is not None:
        flags |= _F_OFFSET
    if event.path is not None:
        flags |= _F_PATH
    if event.result is not None:
        flags |= _F_RESULT
    fixed = _FIXED.pack(
        event.timestamp,
        event.duration,
        _LAYER_CODE[event.layer],
        event.pid,
        fd,
        nbytes,
        off,
        flags,
    )
    # rank rides as i32 after the fixed part (kept out of _FIXED to keep
    # the optional-flag handling uniform).
    parts = [
        fixed,
        struct.pack("<i", rank),
        _pack_str(event.name),
        _pack_str(event.hostname),
        _pack_str(event.user),
        _pack_str(event.path or ""),
        _pack_str("" if event.result is None else str(event.result)),
        _pack_str(json.dumps(list(event.args), separators=(",", ":"))),
    ]
    return b"".join(parts)


def decode_event_record(data: bytes, offset: int = 0) -> Tuple[TraceEvent, int]:
    """Deserialize one event at ``offset``; returns ``(event, next_offset)``."""
    if offset + _FIXED.size > len(data):
        raise TraceTruncatedError("record fixed part truncated")
    ts, dur, layer_code, pid, fd, nbytes, off_, flags = _FIXED.unpack_from(data, offset)
    pos = offset + _FIXED.size
    if pos + 4 > len(data):
        raise TraceTruncatedError("record rank truncated")
    (rank,) = struct.unpack_from("<i", data, pos)
    pos += 4
    name, pos = _unpack_str(data, pos)
    hostname, pos = _unpack_str(data, pos)
    user, pos = _unpack_str(data, pos)
    path, pos = _unpack_str(data, pos)
    result_text, pos = _unpack_str(data, pos)
    args_json, pos = _unpack_str(data, pos)
    try:
        layer = _CODE_LAYER[layer_code]
    except KeyError:
        raise TraceFormatError("unknown layer code %d" % layer_code) from None
    try:
        args = tuple(json.loads(args_json))
    except (ValueError, TypeError):
        # TypeError covers corrupt-but-valid JSON scalars (e.g. "5"):
        # tuple(5) is not an args list, it is a damaged record.
        raise TraceFormatError("corrupt args JSON in record") from None
    result: Optional[object] = None
    if flags & _F_RESULT:
        try:
            result = int(result_text)
        except ValueError:
            result = result_text
    try:
        event = TraceEvent(
            timestamp=ts,
            duration=dur,
            layer=layer,
            name=name,
            args=args,
            result=result,
            pid=pid,
            rank=rank if flags & _F_RANK else None,
            hostname=hostname,
            user=user,
            path=path if flags & _F_PATH else None,
            fd=fd if flags & _F_FD else None,
            nbytes=nbytes if flags & _F_NBYTES else None,
            offset=off_ if flags & _F_OFFSET else None,
        )
    except (ValueError, TypeError):
        # Reachable only for unchecksummed data: corrupted numeric fields
        # (e.g. negative durations) surface as format errors, not crashes.
        raise TraceFormatError("invalid event fields in record") from None
    return event, pos


def encode_trace_file(
    tf: TraceFile,
    compressed: bool = True,
    checksum: bool = True,
    block_records: int = 128,
) -> bytes:
    """Serialize a whole trace file (see module docstring for layout)."""
    if block_records < 1:
        raise TraceFormatError("block_records must be >= 1")
    header = json.dumps(
        {
            "hostname": tf.hostname,
            "pid": tf.pid,
            "rank": tf.rank,
            "framework": tf.framework,
            "n_events": len(tf),
        },
        separators=(",", ":"),
    ).encode("utf-8")
    out = [MAGIC, struct.pack("<H", VERSION), frame(header, with_checksum=checksum)]
    for i in range(0, len(tf.events), block_records):
        chunk = tf.events[i : i + block_records]
        body = struct.pack("<I", len(chunk)) + b"".join(
            encode_event_record(e) for e in chunk
        )
        out.append(frame(compress(body, enabled=compressed), with_checksum=checksum))
    return b"".join(out)


def decode_trace_file(data: bytes) -> TraceFile:
    """Invert :func:`encode_trace_file`, verifying checksums."""
    if data[: len(MAGIC)] != MAGIC:
        raise TraceFormatError("not a binary trace (bad magic)")
    pos = len(MAGIC)
    if pos + 2 > len(data):
        raise TraceTruncatedError("version truncated")
    (version,) = struct.unpack_from("<H", data, pos)
    if version != VERSION:
        raise TraceFormatError("unsupported binary trace version %d" % version)
    pos += 2
    header_raw, pos = unframe(data, pos)
    try:
        header = json.loads(header_raw.decode("utf-8"))
    except ValueError:
        raise TraceFormatError("corrupt header JSON") from None
    if not isinstance(header, dict):
        # json.loads happily returns lists/scalars; header.get on one
        # would crash below with an AttributeError instead of a typed error.
        raise TraceFormatError("header is not a JSON object")
    events: List[TraceEvent] = []
    while pos < len(data):
        payload, pos = unframe(data, pos)
        body = decompress(payload)
        if len(body) < 4:
            raise TraceTruncatedError("block count truncated")
        (count,) = struct.unpack_from("<I", body, 0)
        rpos = 4
        for _ in range(count):
            event, rpos = decode_event_record(body, rpos)
            events.append(event)
        if rpos != len(body):
            raise TraceFormatError("trailing bytes inside block")
    expected = header.get("n_events")
    if expected is not None and expected != len(events):
        raise TraceFormatError(
            "header said %s events, decoded %d" % (expected, len(events))
        )
    return TraceFile(
        events,
        hostname=header.get("hostname", ""),
        pid=header.get("pid", 0),
        rank=header.get("rank"),
        framework=header.get("framework", ""),
    )
