"""XTEA block cipher + CBC mode, pure Python.

Tracefs "allows for secret key encryption using Cipher Block Chaining
(CBC) of trace data with a fine grain user-level selection mechanism for
deciding which fields (e.g. UID, GID) to encrypt/anonymize" (§4.2).  We
reproduce that architecture with XTEA-CBC: a real (if dated) block cipher
that is practical to implement correctly in pure Python.

**Reproduction-only**: this implementation exists to reproduce Tracefs's
anonymization *architecture* and its taxonomy classification; it is not a
vetted cryptographic implementation and must not protect real secrets.
The paper itself makes the matching point: encrypted (rather than
randomized) trace fields carry "a non-zero probability of trace encryption
being subverted", which is why Tracefs scores 4 and not 5 on the
anonymization scale.
"""

from __future__ import annotations

import struct
from typing import Iterable

from repro.errors import AnonymizationError

__all__ = ["xtea_encrypt_block", "xtea_decrypt_block", "cbc_encrypt", "cbc_decrypt"]

_MASK = 0xFFFFFFFF
_DELTA = 0x9E3779B9
_ROUNDS = 32
BLOCK_SIZE = 8
KEY_SIZE = 16


def _check_key(key: bytes) -> tuple:
    if len(key) != KEY_SIZE:
        raise AnonymizationError("XTEA key must be %d bytes" % KEY_SIZE)
    return struct.unpack(">4L", key)


def xtea_encrypt_block(key: bytes, block: bytes) -> bytes:
    """Encrypt one 8-byte block."""
    if len(block) != BLOCK_SIZE:
        raise AnonymizationError("XTEA block must be %d bytes" % BLOCK_SIZE)
    k = _check_key(key)
    v0, v1 = struct.unpack(">2L", block)
    s = 0
    for _ in range(_ROUNDS):
        v0 = (v0 + ((((v1 << 4) ^ (v1 >> 5)) + v1) ^ (s + k[s & 3]))) & _MASK
        s = (s + _DELTA) & _MASK
        v1 = (v1 + ((((v0 << 4) ^ (v0 >> 5)) + v0) ^ (s + k[(s >> 11) & 3]))) & _MASK
    return struct.pack(">2L", v0, v1)


def xtea_decrypt_block(key: bytes, block: bytes) -> bytes:
    """Decrypt one 8-byte block."""
    if len(block) != BLOCK_SIZE:
        raise AnonymizationError("XTEA block must be %d bytes" % BLOCK_SIZE)
    k = _check_key(key)
    v0, v1 = struct.unpack(">2L", block)
    s = (_DELTA * _ROUNDS) & _MASK
    for _ in range(_ROUNDS):
        v1 = (v1 - ((((v0 << 4) ^ (v0 >> 5)) + v0) ^ (s + k[(s >> 11) & 3]))) & _MASK
        s = (s - _DELTA) & _MASK
        v0 = (v0 - ((((v1 << 4) ^ (v1 >> 5)) + v1) ^ (s + k[s & 3]))) & _MASK
    return struct.pack(">2L", v0, v1)


def _pad(data: bytes) -> bytes:
    """PKCS#7 to the 8-byte block size."""
    n = BLOCK_SIZE - (len(data) % BLOCK_SIZE)
    return data + bytes([n]) * n


def _unpad(data: bytes) -> bytes:
    if not data or len(data) % BLOCK_SIZE:
        raise AnonymizationError("ciphertext length not a multiple of block size")
    n = data[-1]
    if not (1 <= n <= BLOCK_SIZE) or data[-n:] != bytes([n]) * n:
        raise AnonymizationError("bad padding (wrong key or corrupt data?)")
    return data[:-n]


def cbc_encrypt(key: bytes, iv: bytes, plaintext: bytes) -> bytes:
    """CBC-encrypt arbitrary bytes (PKCS#7 padded)."""
    if len(iv) != BLOCK_SIZE:
        raise AnonymizationError("IV must be %d bytes" % BLOCK_SIZE)
    data = _pad(plaintext)
    out = bytearray()
    prev = iv
    for i in range(0, len(data), BLOCK_SIZE):
        block = bytes(a ^ b for a, b in zip(data[i : i + BLOCK_SIZE], prev))
        prev = xtea_encrypt_block(key, block)
        out += prev
    return bytes(out)


def cbc_decrypt(key: bytes, iv: bytes, ciphertext: bytes) -> bytes:
    """Invert :func:`cbc_encrypt`."""
    if len(iv) != BLOCK_SIZE:
        raise AnonymizationError("IV must be %d bytes" % BLOCK_SIZE)
    if len(ciphertext) % BLOCK_SIZE:
        raise AnonymizationError("ciphertext length not a multiple of block size")
    out = bytearray()
    prev = iv
    for i in range(0, len(ciphertext), BLOCK_SIZE):
        block = ciphertext[i : i + BLOCK_SIZE]
        plain = xtea_decrypt_block(key, block)
        out += bytes(a ^ b for a, b in zip(plain, prev))
        prev = block
    return _unpad(bytes(out))
