"""Heterogeneous trace aggregation — the paper's future-work framework.

§6: "We intend to build a common framework for diverse trace aggregation.
With such a framework, we would be able to present a single trace-data API
to developers."  Since every framework in this library already emits
:class:`~repro.trace.events.TraceEvent`, aggregation is a merge: combine
bundles from *different* frameworks (syscall traces + VFS traces + MPI
traces of the same run, or of different runs) into one bundle keyed by
source, with collision-free source ids and concatenated metadata.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.trace.records import TraceBundle, TraceFile

__all__ = ["merge_bundles", "interleave"]


def merge_bundles(bundles: Iterable[Tuple[str, TraceBundle]]) -> TraceBundle:
    """Merge named bundles into one.

    ``bundles`` is an iterable of ``(label, bundle)``.  Source keys are
    renumbered to avoid collisions; each merged file's ``framework`` tag
    is prefixed with its label, and barrier stamps are concatenated (they
    carry their own rank/label context).
    """
    merged = TraceBundle()
    next_key = 0
    sources: Dict[str, List[int]] = {}
    for label, bundle in bundles:
        keys = []
        for key in sorted(bundle.files):
            tf = bundle.files[key]
            tagged = TraceFile(
                tf.events,
                hostname=tf.hostname,
                pid=tf.pid,
                rank=tf.rank,
                framework="%s/%s" % (label, tf.framework) if tf.framework else label,
            )
            merged.add_file(next_key, tagged)
            keys.append(next_key)
            next_key += 1
        merged.barrier_stamps.extend(bundle.barrier_stamps)
        sources[label] = keys
        # Sorted so merged metadata never depends on a source dict's
        # insertion history — merging equal bundles yields equal bundles.
        for mk, mv in sorted(bundle.metadata.items(), key=lambda kv: str(kv[0])):
            merged.metadata.setdefault("%s.%s" % (label, mk), mv)
    merged.metadata["merged_sources"] = sources
    return merged


def interleave(bundle: TraceBundle) -> List:
    """All events of a bundle in (uncorrected) local-timestamp order.

    The order is a *total* one: ties on equal timestamps break by source
    name (the file's framework tag), then source key, then the event's
    capture sequence within its file — never by dict iteration history —
    so two structurally equal bundles always interleave identically.
    For skew-corrected ordering use
    :func:`repro.analysis.timeline.global_timeline`.
    """
    decorated = []
    for key in sorted(bundle.files):
        tf = bundle.files[key]
        for seq, e in enumerate(tf.events):
            decorated.append((e.timestamp, tf.framework or "", key, seq, e))
    decorated.sort(key=lambda d: d[:4])
    return [d[4] for d in decorated]
