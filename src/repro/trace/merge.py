"""Heterogeneous trace aggregation — the paper's future-work framework.

§6: "We intend to build a common framework for diverse trace aggregation.
With such a framework, we would be able to present a single trace-data API
to developers."  Since every framework in this library already emits
:class:`~repro.trace.events.TraceEvent`, aggregation is a merge: combine
bundles from *different* frameworks (syscall traces + VFS traces + MPI
traces of the same run, or of different runs) into one bundle keyed by
source, with collision-free source ids and concatenated metadata.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.trace.records import TraceBundle, TraceFile

__all__ = ["merge_bundles", "interleave"]


def merge_bundles(bundles: Iterable[Tuple[str, TraceBundle]]) -> TraceBundle:
    """Merge named bundles into one.

    ``bundles`` is an iterable of ``(label, bundle)``.  Source keys are
    renumbered to avoid collisions; each merged file's ``framework`` tag
    is prefixed with its label, and barrier stamps are concatenated (they
    carry their own rank/label context).
    """
    merged = TraceBundle()
    next_key = 0
    sources: Dict[str, List[int]] = {}
    for label, bundle in bundles:
        keys = []
        for key in sorted(bundle.files):
            tf = bundle.files[key]
            tagged = TraceFile(
                tf.events,
                hostname=tf.hostname,
                pid=tf.pid,
                rank=tf.rank,
                framework="%s/%s" % (label, tf.framework) if tf.framework else label,
            )
            merged.add_file(next_key, tagged)
            keys.append(next_key)
            next_key += 1
        merged.barrier_stamps.extend(bundle.barrier_stamps)
        sources[label] = keys
        for mk, mv in bundle.metadata.items():
            merged.metadata.setdefault("%s.%s" % (label, mk), mv)
    merged.metadata["merged_sources"] = sources
    return merged


def interleave(bundle: TraceBundle) -> List:
    """All events of a bundle in (uncorrected) local-timestamp order.

    For skew-corrected ordering use
    :func:`repro.analysis.timeline.global_timeline`.
    """
    events = bundle.all_events()
    return sorted(events, key=lambda e: (e.timestamp, e.rank or 0))
