"""Trace anonymization engines (§3.1 "Anonymization").

The paper distinguishes two sophistication levels, both implemented here:

* **Simple** — "replacing all potentially sensitive text within the trace
  data such as user name, UID, or file content, with randomly generated
  bytes."  :class:`RandomizingAnonymizer` does exactly that: a one-way,
  consistent (same input → same pseudonym within a run) randomization.
  This is *true* anonymization — nothing recoverable remains.
* **Advanced** — "a means of specifying which parts of the trace need to
  be anonymized."  :class:`FieldSelectiveAnonymizer` takes a field set and
  an engine per the Tracefs design: selected fields are either randomized
  or CBC-encrypted (recoverable with the key — the property that caps
  Tracefs at level 4, since "there is a non-zero probability of trace
  encryption being subverted").

Both operate on :class:`~repro.trace.events.TraceEvent` streams and
whole bundles, preserving everything they are not asked to scrub.
"""

from __future__ import annotations

import base64
import hashlib
import os
from typing import Callable, Dict, FrozenSet, Iterable, Optional

from repro.errors import AnonymizationError
from repro.trace.crypto import BLOCK_SIZE, cbc_encrypt
from repro.trace.events import TraceEvent
from repro.trace.records import TraceBundle, TraceFile

__all__ = [
    "ANONYMIZABLE_FIELDS",
    "RandomizingAnonymizer",
    "FieldSelectiveAnonymizer",
    "anonymize_bundle",
]

#: Event fields that may carry sensitive content.
ANONYMIZABLE_FIELDS: FrozenSet[str] = frozenset({"user", "path", "hostname", "args"})


class RandomizingAnonymizer:
    """Simple anonymization: sensitive text → random pseudonyms.

    Pseudonyms are consistent within one anonymizer instance (the same
    path maps to the same random token every time), so trace structure —
    "which operations touched the same file" — survives while identities
    do not.  The mapping is generated from OS randomness and *not stored*;
    there is nothing to subvert later.
    """

    def __init__(self, fields: Iterable[str] = ANONYMIZABLE_FIELDS, token_bytes: int = 9):
        self.fields = frozenset(fields)
        unknown = self.fields - ANONYMIZABLE_FIELDS
        if unknown:
            raise AnonymizationError("unknown fields: %s" % ", ".join(sorted(unknown)))
        self._mapping: Dict[str, str] = {}
        self._token_bytes = token_bytes

    def _pseudonym(self, text: str) -> str:
        token = self._mapping.get(text)
        if token is None:
            token = base64.urlsafe_b64encode(os.urandom(self._token_bytes)).decode("ascii")
            self._mapping[text] = token
        return token

    def _scrub_path(self, path: str) -> str:
        # Keep the mount prefix (structure), randomize the rest.
        parts = path.split("/")
        scrubbed = parts[:2] + [self._pseudonym(p) for p in parts[2:] if p]
        return "/".join(scrubbed) if len(parts) > 2 else path

    def anonymize_event(self, event: TraceEvent) -> TraceEvent:
        """Return a copy with the selected fields pseudonymized."""
        changes: Dict[str, object] = {}
        if "user" in self.fields and event.user:
            changes["user"] = self._pseudonym(event.user)
        if "hostname" in self.fields and event.hostname:
            changes["hostname"] = self._pseudonym(event.hostname)
        if "path" in self.fields and event.path:
            changes["path"] = self._scrub_path(event.path)
        if "args" in self.fields and event.args:
            changes["args"] = tuple(
                self._scrub_path(a) if isinstance(a, str) and a.startswith("/") else a
                for a in event.args
            )
        return event.with_fields(**changes) if changes else event

    __call__ = anonymize_event


class FieldSelectiveAnonymizer:
    """Advanced anonymization: user-selected fields, Tracefs-style.

    ``mode="encrypt"`` CBC-encrypts selected field values under a secret
    key (recoverable — Tracefs's design); ``mode="randomize"`` delegates
    to :class:`RandomizingAnonymizer` semantics (irrecoverable).
    """

    def __init__(
        self,
        fields: Iterable[str],
        mode: str = "encrypt",
        key: Optional[bytes] = None,
    ):
        self.fields = frozenset(fields)
        unknown = self.fields - ANONYMIZABLE_FIELDS
        if unknown:
            raise AnonymizationError("unknown fields: %s" % ", ".join(sorted(unknown)))
        if mode not in ("encrypt", "randomize"):
            raise AnonymizationError("mode must be 'encrypt' or 'randomize'")
        self.mode = mode
        if mode == "encrypt":
            if key is None:
                raise AnonymizationError("encrypt mode requires a 16-byte key")
            if len(key) != 16:
                raise AnonymizationError("key must be 16 bytes")
            self.key = key
        else:
            self.key = None
            self._randomizer = RandomizingAnonymizer(self.fields)

    def _encrypt_text(self, text: str) -> str:
        # Deterministic IV from the plaintext keeps equal values equal in
        # the anonymized trace (joinability preserved, like Tracefs).
        iv = hashlib.sha256(text.encode("utf-8")).digest()[:BLOCK_SIZE]
        blob = iv + cbc_encrypt(self.key, iv, text.encode("utf-8"))
        return "enc:" + base64.urlsafe_b64encode(blob).decode("ascii")

    def anonymize_event(self, event: TraceEvent) -> TraceEvent:
        """Return a copy with the selected fields encrypted/randomized."""
        if self.mode == "randomize":
            return self._randomizer.anonymize_event(event)
        changes: Dict[str, object] = {}
        if "user" in self.fields and event.user:
            changes["user"] = self._encrypt_text(event.user)
        if "hostname" in self.fields and event.hostname:
            changes["hostname"] = self._encrypt_text(event.hostname)
        if "path" in self.fields and event.path:
            changes["path"] = self._encrypt_text(event.path)
        if "args" in self.fields and event.args:
            changes["args"] = tuple(
                self._encrypt_text(a) if isinstance(a, str) and a.startswith("/") else a
                for a in event.args
            )
        return event.with_fields(**changes) if changes else event

    __call__ = anonymize_event


def anonymize_bundle(
    bundle: TraceBundle, anonymizer: Callable[[TraceEvent], TraceEvent]
) -> TraceBundle:
    """Apply an anonymizer to every event of a bundle (metadata preserved)."""
    return bundle.map_events(anonymizer)
