"""Value domains for taxonomy features (the bracketed ranges of Table 1).

Table 1 gives each feature a domain like ``[Yes or No]``,
``[1 (V. Easy) thru 5 (V. Difficult)]``, ``[None or 1 (Simple) thru
5 (V. Advanced)]``, ``[Binary or Human readable]`` or "Describe experiment
results".  Each domain is a small typed value here, so classifications are
validated data rather than strings — while still rendering exactly like
the paper's cells.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Optional

from repro.errors import FeatureValueError

__all__ = [
    "YesNo",
    "Likert",
    "AnonymizationLevel",
    "GranularityControl",
    "EventKind",
    "EventTypes",
    "TraceFormat",
    "OverheadReport",
    "FidelityReport",
    "NotApplicable",
    "NA",
]


class NotApplicable:
    """The ``N/A`` cell: the feature does not apply to this framework.

    e.g. "trace replay fidelity" for a framework without replay, or "time
    skew and drift" for one with no parallel mechanism at all (Tracefs's
    Table 2 cell).  Singleton: use :data:`NA`.
    """

    _instance: Optional["NotApplicable"] = None

    def __new__(cls) -> "NotApplicable":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def render(self) -> str:
        """The table cell text."""
        return "N/A"

    def __repr__(self) -> str:
        return "NA"


NA = NotApplicable()


class YesNo(enum.Enum):
    """The ``[Yes or No]`` domain."""

    YES = True
    NO = False

    def render(self) -> str:
        """The table cell text."""
        return "Yes" if self.value else "No"

    def __bool__(self) -> bool:
        return self.value


_LIKERT_HINTS = {1: "V. Easy/Passive/Simple", 5: "V. Difficult/Intrusive/Advanced"}


@dataclass(frozen=True)
class Likert:
    """A 1..5 scale cell, rendered with its anchor label: ``2 (Easy)``."""

    score: int
    label: str = ""

    def __post_init__(self) -> None:
        if not (1 <= self.score <= 5):
            raise FeatureValueError("Likert score must be in 1..5, got %r" % self.score)

    def render(self) -> str:
        """The table cell text, e.g. ``2 (Easy)``."""
        if self.label:
            return "%d (%s)" % (self.score, self.label)
        return str(self.score)

    def __le__(self, other: "Likert") -> bool:
        return self.score <= other.score

    def __lt__(self, other: "Likert") -> bool:
        return self.score < other.score


@dataclass(frozen=True)
class AnonymizationLevel:
    """``[None or 1 (Simple) thru 5 (V. Advanced)]``.

    ``level=0`` means not supported ("None"/"No" in Table 2).
    """

    level: int
    note: str = ""

    def __post_init__(self) -> None:
        if not (0 <= self.level <= 5):
            raise FeatureValueError(
                "anonymization level must be 0 (none) .. 5, got %r" % self.level
            )

    @property
    def supported(self) -> bool:
        return self.level > 0

    def render(self) -> str:
        """The table cell text, e.g. ``5 (V. Advanced)`` or ``No``."""
        if self.level == 0:
            return "No"
        labels = {1: "Simple", 2: "Basic", 3: "Moderate", 4: "Advanced", 5: "V. Advanced"}
        return "%d (%s)" % (self.level, labels[self.level])


@dataclass(frozen=True)
class GranularityControl:
    """Control of trace granularity: unsupported, or a 1..5 sophistication.

    Table 2 uses ``1 (Simple)`` for LANL-Trace's strace-vs-ltrace choice,
    ``5 (V. Advanced)`` for Tracefs's declarative specs, and ``No`` for
    //TRACE ("All I/O system calls are captured").
    """

    level: int
    note: str = ""

    def __post_init__(self) -> None:
        if not (0 <= self.level <= 5):
            raise FeatureValueError(
                "granularity level must be 0 (none) .. 5, got %r" % self.level
            )

    @property
    def supported(self) -> bool:
        return self.level > 0

    def render(self) -> str:
        """The table cell text, e.g. ``1 (Simple)`` or ``No``."""
        if self.level == 0:
            return "No"
        labels = {1: "Simple", 2: "Basic", 3: "Moderate", 4: "Advanced", 5: "V. Advanced"}
        return "%d (%s)" % (self.level, labels[self.level])


class EventKind(enum.Enum):
    """Kinds of events a framework can capture (§3.1 "Event types")."""

    SYSTEM_CALLS = "Systems calls"
    LIBRARY_CALLS = "library calls"
    FS_OPERATIONS = "File system operations"
    IO_SYSTEM_CALLS = "I/O System calls"
    NETWORK_MESSAGES = "Network messages"


@dataclass(frozen=True)
class EventTypes:
    """The set of event kinds captured, rendered like Table 2's cells."""

    kinds: FrozenSet[EventKind]

    def __init__(self, kinds: Iterable[EventKind]):
        object.__setattr__(self, "kinds", frozenset(kinds))
        if not self.kinds:
            raise FeatureValueError("a tracing framework must capture something")

    def render(self) -> str:
        """The table cell text (kinds in a stable presentation order)."""
        order = list(EventKind)
        return ", ".join(k.value for k in sorted(self.kinds, key=order.index))

    def __contains__(self, kind: EventKind) -> bool:
        return kind in self.kinds


class TraceFormat(enum.Enum):
    """``[Binary or Human readable]``."""

    BINARY = "Binary"
    HUMAN_READABLE = "Human readable"

    def render(self) -> str:
        """The table cell text."""
        return self.value


@dataclass(frozen=True)
class OverheadReport:
    """An overhead cell: "Describe experiment results".

    Structured as a percentage range plus a qualifying note, so Table 2
    cells like ``24% - 222%`` and ``<=12.4%`` are data, not prose.
    """

    min_percent: Optional[float] = None
    max_percent: Optional[float] = None
    note: str = ""

    def __post_init__(self) -> None:
        if (
            self.min_percent is not None
            and self.max_percent is not None
            and self.min_percent > self.max_percent
        ):
            raise FeatureValueError("overhead min above max")

    def render(self) -> str:
        """The table cell text, e.g. ``24% - 222%`` or ``<=12.4%``."""
        if self.min_percent is None and self.max_percent is None:
            return self.note or "N/A"
        if self.min_percent is None:
            core = "<=%.1f%%" % self.max_percent
        elif self.max_percent is None:
            core = ">=%.1f%%" % self.min_percent
        elif self.min_percent == self.max_percent:
            core = "%.1f%%" % self.min_percent
        else:
            core = "%.0f%% - %.0f%%" % (self.min_percent, self.max_percent)
        return core + ((" (%s)" % self.note) if self.note else "")


@dataclass(frozen=True)
class FidelityReport:
    """A replay-fidelity cell: error percentage plus note.

    Table 2's //TRACE cell is "As low as 6%".
    """

    error_percent: float
    note: str = ""

    def __post_init__(self) -> None:
        if self.error_percent < 0:
            raise FeatureValueError("fidelity error cannot be negative")

    def render(self) -> str:
        """The table cell text, e.g. ``As low as 6%``."""
        core = "As low as %.0f%%" % self.error_percent
        return core + ((" (%s)" % self.note) if self.note else "")
