"""Validated framework classifications.

A :class:`FrameworkClassification` is one column of Table 2: a framework
name plus a value for every one of the thirteen features, validated
against each feature's domain at construction — an incomplete or
ill-typed classification is a bug, caught immediately.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Mapping, Tuple

from repro.core.features import FEATURES, Feature, validate_value
from repro.errors import MissingFeatureError

__all__ = ["FrameworkClassification"]


class FrameworkClassification:
    """One framework's complete taxonomy classification."""

    def __init__(self, framework_name: str, values: Mapping[Feature, Any]):
        if not framework_name:
            raise MissingFeatureError("classification needs a framework name")
        missing = [f for f in FEATURES if f not in values]
        if missing:
            raise MissingFeatureError(
                "classification of %r missing: %s"
                % (framework_name, ", ".join(f.display_name for f in missing))
            )
        extra = [f for f in values if f not in FEATURES]
        if extra:
            raise MissingFeatureError(
                "classification of %r has unknown features: %r" % (framework_name, extra)
            )
        for feature, value in values.items():
            validate_value(feature, value)
        self.framework_name = framework_name
        self._values: Dict[Feature, Any] = {f: values[f] for f in FEATURES}

    def __getitem__(self, feature: Feature) -> Any:
        return self._values[feature]

    def __iter__(self) -> Iterator[Tuple[Feature, Any]]:
        return iter(self._values.items())

    def __len__(self) -> int:
        return len(self._values)

    def cell(self, feature: Feature) -> str:
        """The Table-2 cell text for one feature."""
        return self._values[feature].render()

    def with_value(self, feature: Feature, value: Any) -> "FrameworkClassification":
        """A copy with one feature replaced (classifications are immutable)."""
        values = dict(self._values)
        values[feature] = value
        return FrameworkClassification(self.framework_name, values)

    def as_dict(self) -> Dict[str, str]:
        """Rendered mapping (display name -> cell), for export."""
        return {f.display_name: self.cell(f) for f in FEATURES}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<FrameworkClassification %s>" % self.framework_name
