"""The thirteen taxonomy features (Table 1), with their value domains.

Each feature carries the paper's display name, the section-3.1 description
it was defined with, and a domain validator mapping to the typed values of
:mod:`repro.core.values`.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Dict, Tuple, Type, Union

from repro.core.values import (
    NA,
    AnonymizationLevel,
    EventTypes,
    FidelityReport,
    GranularityControl,
    Likert,
    NotApplicable,
    OverheadReport,
    TraceFormat,
    YesNo,
)
from repro.errors import FeatureValueError

__all__ = ["Feature", "FEATURES", "feature_domain", "validate_value"]


class Feature(enum.Enum):
    """Table 1's rows, in presentation order."""

    PARALLEL_FS_COMPATIBILITY = "Parallel file system compatibility"
    EASE_OF_INSTALLATION = "Ease of installation and use"
    ANONYMIZATION = "Anonymization"
    EVENT_TYPES = "Events types"
    GRANULARITY_CONTROL = "Control of trace granularity"
    REPLAYABLE_GENERATION = "Replayable trace generation"
    REPLAY_FIDELITY = "Trace replay fidelity"
    REVEALS_DEPENDENCIES = "Reveals dependencies"
    INTRUSIVENESS = "Intrusive vs. Passive"
    ANALYSIS_TOOLS = "Analysis tools"
    TRACE_FORMAT = "Trace data format"
    SKEW_DRIFT_ACCOUNTING = "Accounts for time skew and drift"
    ELAPSED_TIME_OVERHEAD = "Elapsed time overhead"

    @property
    def display_name(self) -> str:
        return self.value


#: Table 1 order.
FEATURES: Tuple[Feature, ...] = tuple(Feature)

#: Feature -> acceptable value types.  NotApplicable is allowed where the
#: paper itself uses N/A cells (fidelity, skew/drift, overhead).
_DOMAINS: Dict[Feature, Tuple[Type, ...]] = {
    Feature.PARALLEL_FS_COMPATIBILITY: (YesNo,),
    Feature.EASE_OF_INSTALLATION: (Likert,),
    Feature.ANONYMIZATION: (AnonymizationLevel,),
    Feature.EVENT_TYPES: (EventTypes,),
    Feature.GRANULARITY_CONTROL: (GranularityControl,),
    Feature.REPLAYABLE_GENERATION: (YesNo,),
    Feature.REPLAY_FIDELITY: (FidelityReport, NotApplicable),
    Feature.REVEALS_DEPENDENCIES: (YesNo,),
    Feature.INTRUSIVENESS: (Likert,),
    Feature.ANALYSIS_TOOLS: (YesNo,),
    Feature.TRACE_FORMAT: (TraceFormat,),
    Feature.SKEW_DRIFT_ACCOUNTING: (YesNo, NotApplicable),
    Feature.ELAPSED_TIME_OVERHEAD: (OverheadReport, NotApplicable),
}

#: §3.1's definitions, for documentation/rendering tooling.
FEATURE_DESCRIPTIONS: Dict[Feature, str] = {
    Feature.PARALLEL_FS_COMPATIBILITY: (
        "Did the framework work on a parallel file system 'out of the box' "
        "(with little or no modification for parallelization)?"
    ),
    Feature.EASE_OF_INSTALLATION: (
        "Installation/collection/use complexity, including interpreter and "
        "permission requirements (e.g. root access impedes ease of use)."
    ),
    Feature.ANONYMIZATION: (
        "Support for anonymizing personal or sensitive data in traces, from "
        "simple replacement with random bytes to selective field control."
    ),
    Feature.EVENT_TYPES: (
        "Which events are traced: I/O function calls (e.g. MPI), messages "
        "between nodes, or events between layers of a protocol stack."
    ),
    Feature.GRANULARITY_CONTROL: (
        "Can the user collect only as much information as required, since "
        "overhead is typically a function of granularity?"
    ),
    Feature.REPLAYABLE_GENERATION: (
        "Can the framework generate a pseudo-application reproducing the "
        "I/O signature of the original application?"
    ),
    Feature.REPLAY_FIDELITY: (
        "How closely does the pseudo-application's I/O match the original "
        "(verified by re-tracing or end-to-end run time comparison)?"
    ),
    Feature.REVEALS_DEPENDENCIES: (
        "Does the framework expose event dependencies and causality?"
    ),
    Feature.INTRUSIVENESS: (
        "Does tracing require instrumentation of application source code?"
    ),
    Feature.ANALYSIS_TOOLS: (
        "Does the framework include tools for manipulating and analyzing "
        "collected trace data?"
    ),
    Feature.TRACE_FORMAT: (
        "Binary (compact, machine-parseable) or human readable trace data."
    ),
    Feature.SKEW_DRIFT_ACCOUNTING: (
        "Does the framework provide mechanisms to account for distributed "
        "clock skew (offset at an instant) and drift (change of skew)?"
    ),
    Feature.ELAPSED_TIME_OVERHEAD: (
        "(traced elapsed time - untraced elapsed time) / untraced elapsed "
        "time, measured with a synthetic application benchmark."
    ),
}


def feature_domain(feature: Feature) -> Tuple[Type, ...]:
    """Acceptable value types for ``feature``."""
    return _DOMAINS[feature]


def validate_value(feature: Feature, value: Any) -> None:
    """Raise :class:`FeatureValueError` unless ``value`` fits the domain."""
    domain = _DOMAINS[feature]
    if not isinstance(value, domain):
        raise FeatureValueError(
            "feature %r takes %s, got %r"
            % (
                feature.display_name,
                " | ".join(t.__name__ for t in domain),
                type(value).__name__,
            )
        )
