"""Requirements → recommendation: the taxonomy's user-facing purpose.

"The taxonomy has value to potential users of I/O Tracing Frameworks in
formalizing their tracing requirements" (§5).  A :class:`Requirements`
object is that formalization; :func:`recommend` scores classifications
against it, reproducing the Conclusion's reasoning:

* a user needing anonymization or analysis tools is steered away from
  LANL-Trace;
* a user needing accurate replayable traces is steered to //TRACE;
* a user on a parallel file system is warned off Tracefs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, List, Optional

from repro.core.classification import FrameworkClassification
from repro.core.features import Feature
from repro.core.values import (
    EventKind,
    FidelityReport,
    NotApplicable,
    OverheadReport,
    TraceFormat,
    YesNo,
)

__all__ = ["Requirements", "Recommendation", "recommend"]


@dataclass(frozen=True)
class Requirements:
    """A user's formalized tracing requirements.

    Every field is optional; ``None``/``False``/empty means "no
    constraint".  Hard requirements disqualify; the soft preferences
    (install difficulty, overhead) order the qualifiers.
    """

    need_parallel_fs: bool = False
    min_anonymization: int = 0
    need_replayable: bool = False
    max_replay_error_percent: Optional[float] = None
    need_dependencies: bool = False
    need_analysis_tools: bool = False
    need_skew_drift_accounting: bool = False
    min_granularity_control: int = 0
    required_event_kinds: FrozenSet[EventKind] = frozenset()
    trace_format: Optional[TraceFormat] = None
    max_install_difficulty: Optional[int] = None
    max_intrusiveness: Optional[int] = None
    max_elapsed_overhead_percent: Optional[float] = None

    def __post_init__(self) -> None:
        if not (0 <= self.min_anonymization <= 5):
            raise ValueError("min_anonymization must be 0..5")
        if not (0 <= self.min_granularity_control <= 5):
            raise ValueError("min_granularity_control must be 0..5")
        object.__setattr__(
            self, "required_event_kinds", frozenset(self.required_event_kinds)
        )


@dataclass(frozen=True)
class Recommendation:
    """One framework's fit against a requirements spec."""

    framework_name: str
    qualifies: bool
    violations: List[str] = field(default_factory=list)
    score: float = 0.0

    def render(self) -> str:
        """One-block verdict with violation bullets."""
        verdict = "RECOMMENDED" if self.qualifies else "unsuitable"
        out = "%-12s %s (score %.1f)" % (self.framework_name, verdict, self.score)
        for v in self.violations:
            out += "\n    - %s" % v
        return out


def _check(req: Requirements, c: FrameworkClassification) -> List[str]:
    """All hard-requirement violations of ``c``."""
    v: List[str] = []
    if req.need_parallel_fs and not c[Feature.PARALLEL_FS_COMPATIBILITY]:
        v.append("not compatible with a parallel file system out of the box")
    anon = c[Feature.ANONYMIZATION]
    if req.min_anonymization > 0 and anon.level < req.min_anonymization:
        v.append(
            "anonymization %s below required level %d"
            % (anon.render(), req.min_anonymization)
        )
    if req.need_replayable and not c[Feature.REPLAYABLE_GENERATION]:
        v.append("does not generate replayable traces")
    if req.max_replay_error_percent is not None:
        fid = c[Feature.REPLAY_FIDELITY]
        if isinstance(fid, NotApplicable):
            v.append("replay fidelity not demonstrated")
        elif fid.error_percent > req.max_replay_error_percent:
            v.append(
                "replay error %.0f%% above the %.0f%% bound"
                % (fid.error_percent, req.max_replay_error_percent)
            )
    if req.need_dependencies and not c[Feature.REVEALS_DEPENDENCIES]:
        v.append("does not reveal inter-node dependencies")
    if req.need_analysis_tools and not c[Feature.ANALYSIS_TOOLS]:
        v.append("includes no trace analysis tools")
    if req.need_skew_drift_accounting:
        sd = c[Feature.SKEW_DRIFT_ACCOUNTING]
        if isinstance(sd, NotApplicable) or not sd:
            v.append("does not account for clock skew and drift")
    gran = c[Feature.GRANULARITY_CONTROL]
    if req.min_granularity_control > 0 and gran.level < req.min_granularity_control:
        v.append(
            "granularity control %s below required level %d"
            % (gran.render(), req.min_granularity_control)
        )
    missing_kinds = req.required_event_kinds - c[Feature.EVENT_TYPES].kinds
    if missing_kinds:
        v.append(
            "cannot capture: %s" % ", ".join(sorted(k.value for k in missing_kinds))
        )
    if req.trace_format is not None and c[Feature.TRACE_FORMAT] is not req.trace_format:
        v.append("trace format is %s" % c[Feature.TRACE_FORMAT].render())
    if (
        req.max_install_difficulty is not None
        and c[Feature.EASE_OF_INSTALLATION].score > req.max_install_difficulty
    ):
        v.append(
            "installation difficulty %s exceeds %d"
            % (c[Feature.EASE_OF_INSTALLATION].render(), req.max_install_difficulty)
        )
    if (
        req.max_intrusiveness is not None
        and c[Feature.INTRUSIVENESS].score > req.max_intrusiveness
    ):
        v.append("too intrusive: %s" % c[Feature.INTRUSIVENESS].render())
    if req.max_elapsed_overhead_percent is not None:
        ovh = c[Feature.ELAPSED_TIME_OVERHEAD]
        if isinstance(ovh, NotApplicable):
            v.append("elapsed time overhead not characterized")
        elif (
            ovh.max_percent is not None
            and ovh.max_percent > req.max_elapsed_overhead_percent
        ):
            v.append(
                "worst-case overhead %s exceeds %.0f%%"
                % (ovh.render(), req.max_elapsed_overhead_percent)
            )
    return v


def _soft_score(c: FrameworkClassification) -> float:
    """Preference among qualifiers: easier install, lower worst overhead."""
    score = 10.0 - 2.0 * c[Feature.EASE_OF_INSTALLATION].score
    ovh = c[Feature.ELAPSED_TIME_OVERHEAD]
    if isinstance(ovh, OverheadReport) and ovh.max_percent is not None:
        score -= min(5.0, ovh.max_percent / 50.0)
    return score


def recommend(
    requirements: Requirements,
    classifications: Iterable[FrameworkClassification],
) -> List[Recommendation]:
    """Rank frameworks against a requirements spec.

    Qualifiers come first (best score first), then disqualified frameworks
    with their violation lists — so the output doubles as an explanation.
    """
    recs: List[Recommendation] = []
    for c in classifications:
        violations = _check(requirements, c)
        recs.append(
            Recommendation(
                framework_name=c.framework_name,
                qualifies=not violations,
                violations=violations,
                score=_soft_score(c),
            )
        )
    recs.sort(key=lambda r: (not r.qualifies, -r.score, r.framework_name))
    return recs
