"""The I/O Tracing Framework taxonomy (the paper's contribution, §3).

The taxonomy has two elements:

* **feature classification** (§3.1) — thirteen features determined by
  inspection of a framework, each with a typed value domain
  (:mod:`repro.core.features`, :mod:`repro.core.values`), assembled into a
  validated :class:`~repro.core.classification.FrameworkClassification`;
* **overhead measurement** (§3.1) — empirical elapsed-time / bandwidth
  overhead via a synthetic benchmark (:mod:`repro.core.overhead`, driving
  :mod:`repro.harness`).

Presentation and use:

* :mod:`repro.core.summary_table` renders Table 1 (the template) and
  Table 2 (the case-study comparison);
* :mod:`repro.core.compare` diffs classifications;
* :mod:`repro.core.requirements` turns user tracing requirements into a
  ranked framework recommendation (the Conclusion's use-case);
* :mod:`repro.core.casestudy` holds the paper's Table 2 values for
  LANL-Trace, Tracefs and //TRACE.
"""

from repro.core.features import FEATURES, Feature, feature_domain
from repro.core.values import (
    NA,
    AnonymizationLevel,
    EventKind,
    FidelityReport,
    GranularityControl,
    Likert,
    NotApplicable,
    OverheadReport,
    TraceFormat,
    YesNo,
)
from repro.core.classification import FrameworkClassification
from repro.core.summary_table import render_summary_table, render_markdown, render_csv
from repro.core.compare import compare_classifications, ClassificationDiff
from repro.core.requirements import Requirements, Recommendation, recommend

__all__ = [
    "FEATURES",
    "Feature",
    "feature_domain",
    "NA",
    "NotApplicable",
    "AnonymizationLevel",
    "EventKind",
    "FidelityReport",
    "GranularityControl",
    "Likert",
    "OverheadReport",
    "TraceFormat",
    "YesNo",
    "FrameworkClassification",
    "render_summary_table",
    "render_markdown",
    "render_csv",
    "compare_classifications",
    "ClassificationDiff",
    "Requirements",
    "Recommendation",
    "recommend",
]
