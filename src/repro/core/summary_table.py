"""Summary-table rendering (§3.2).

"After applying the taxonomy to an I/O Tracing Framework, a simple
reference table can be built summarizing the results for quick feature
comparison."  One classification renders like Table 1; several render
side-by-side like Table 2.  Text, Markdown and CSV output.
"""

from __future__ import annotations

import csv
import io
from typing import Iterable, List, Sequence

from repro.core.classification import FrameworkClassification
from repro.core.features import FEATURES

__all__ = ["render_summary_table", "render_markdown", "render_csv"]


def _columns(
    classifications: Sequence[FrameworkClassification],
) -> List[List[str]]:
    """Header row + one row per feature, as lists of cells."""
    header = ["Feature"] + [c.framework_name for c in classifications]
    rows = [header]
    for feature in FEATURES:
        rows.append([feature.display_name] + [c.cell(feature) for c in classifications])
    return rows


def render_summary_table(
    classifications: FrameworkClassification | Iterable[FrameworkClassification],
) -> str:
    """Fixed-width text table (Table 1 for one framework, Table 2 for many)."""
    if isinstance(classifications, FrameworkClassification):
        classifications = [classifications]
    cols = list(classifications)
    if not cols:
        raise ValueError("nothing to render")
    rows = _columns(cols)
    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]

    def fmt(row: List[str]) -> str:
        return "  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip()

    sep = "=" * (sum(widths) + 2 * (len(widths) - 1))
    out = [fmt(rows[0]), sep]
    out.extend(fmt(r) for r in rows[1:])
    return "\n".join(out) + "\n"


def render_markdown(
    classifications: FrameworkClassification | Iterable[FrameworkClassification],
) -> str:
    """GitHub-flavoured Markdown table."""
    if isinstance(classifications, FrameworkClassification):
        classifications = [classifications]
    cols = list(classifications)
    if not cols:
        raise ValueError("nothing to render")
    rows = _columns(cols)
    out = ["| " + " | ".join(rows[0]) + " |"]
    out.append("|" + "|".join(["---"] * len(rows[0])) + "|")
    for row in rows[1:]:
        out.append("| " + " | ".join(row) + " |")
    return "\n".join(out) + "\n"


def render_csv(
    classifications: FrameworkClassification | Iterable[FrameworkClassification],
) -> str:
    """CSV export (one row per feature)."""
    if isinstance(classifications, FrameworkClassification):
        classifications = [classifications]
    cols = list(classifications)
    if not cols:
        raise ValueError("nothing to render")
    buf = io.StringIO()
    writer = csv.writer(buf)
    for row in _columns(cols):
        writer.writerow(row)
    return buf.getvalue()
