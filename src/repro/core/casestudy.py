"""The paper's case study: canonical Table 2 classifications (§4).

These are the published classifications of the three frameworks, encoded
as validated data.  ``paper_table2()`` reproduces the table as printed;
the per-framework builders accept an ``overhead`` override so benchmarks
can substitute *measured* overhead rows (the reproduction's
paper-vs-measured comparison lives in EXPERIMENTS.md).

Known paper inconsistency, preserved deliberately: §4.1.1's prose credits
LANL-Trace with simple timing-aggregation analysis output, but Table 2
prints "No" under Analysis tools for all three frameworks.  We encode the
table's value and note the prose here.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.classification import FrameworkClassification
from repro.core.features import Feature
from repro.core.values import (
    NA,
    AnonymizationLevel,
    EventKind,
    EventTypes,
    FidelityReport,
    GranularityControl,
    Likert,
    OverheadReport,
    TraceFormat,
    YesNo,
)

__all__ = [
    "lanl_trace_classification",
    "tracefs_classification",
    "ptrace_classification",
    "paper_table2",
]


def lanl_trace_classification(
    overhead: Optional[OverheadReport] = None,
) -> FrameworkClassification:
    """Table 2, column 1 (§4.1.1)."""
    return FrameworkClassification(
        "LANL-Trace",
        {
            Feature.PARALLEL_FS_COMPATIBILITY: YesNo.YES,
            Feature.EASE_OF_INSTALLATION: Likert(2, "Easy"),
            Feature.ANONYMIZATION: AnonymizationLevel(0),
            Feature.EVENT_TYPES: EventTypes(
                {EventKind.SYSTEM_CALLS, EventKind.LIBRARY_CALLS}
            ),
            Feature.GRANULARITY_CONTROL: GranularityControl(
                1, "choice of strace (syscalls only) vs ltrace (+library calls)"
            ),
            Feature.REPLAYABLE_GENERATION: YesNo.NO,
            Feature.REPLAY_FIDELITY: NA,
            Feature.REVEALS_DEPENDENCIES: YesNo.NO,
            Feature.INTRUSIVENESS: Likert(1, "Passive"),
            Feature.ANALYSIS_TOOLS: YesNo.NO,
            Feature.TRACE_FORMAT: TraceFormat.HUMAN_READABLE,
            Feature.SKEW_DRIFT_ACCOUNTING: YesNo.YES,
            Feature.ELAPSED_TIME_OVERHEAD: overhead
            or OverheadReport(
                min_percent=24.0,
                max_percent=222.0,
                note="high variance due to different I/O access patterns",
            ),
        },
    )


def tracefs_classification(
    overhead: Optional[OverheadReport] = None,
) -> FrameworkClassification:
    """Table 2, column 2 (§4.2)."""
    return FrameworkClassification(
        "Tracefs",
        {
            Feature.PARALLEL_FS_COMPATIBILITY: YesNo.NO,
            Feature.EASE_OF_INSTALLATION: Likert(4, "Difficult"),
            Feature.ANONYMIZATION: AnonymizationLevel(
                4, "CBC encryption with field-level selection; not true randomization"
            ),
            Feature.EVENT_TYPES: EventTypes({EventKind.FS_OPERATIONS}),
            Feature.GRANULARITY_CONTROL: GranularityControl(
                5, "declarative spec of file system operations to trace"
            ),
            Feature.REPLAYABLE_GENERATION: YesNo.NO,
            Feature.REPLAY_FIDELITY: NA,
            Feature.REVEALS_DEPENDENCIES: YesNo.NO,
            Feature.INTRUSIVENESS: Likert(1, "Passive"),
            Feature.ANALYSIS_TOOLS: YesNo.NO,
            Feature.TRACE_FORMAT: TraceFormat.BINARY,
            Feature.SKEW_DRIFT_ACCOUNTING: NA,
            Feature.ELAPSED_TIME_OVERHEAD: overhead
            or OverheadReport(
                max_percent=12.4,
                note="authors' maximum for an I/O intensive benchmark",
            ),
        },
    )


def ptrace_classification(
    overhead: Optional[OverheadReport] = None,
) -> FrameworkClassification:
    """Table 2, column 3 (§4.3).  //TRACE."""
    return FrameworkClassification(
        "//TRACE",
        {
            Feature.PARALLEL_FS_COMPATIBILITY: YesNo.YES,
            Feature.EASE_OF_INSTALLATION: Likert(2, "Easy"),
            Feature.ANONYMIZATION: AnonymizationLevel(0),
            Feature.EVENT_TYPES: EventTypes({EventKind.IO_SYSTEM_CALLS}),
            Feature.GRANULARITY_CONTROL: GranularityControl(0),
            Feature.REPLAYABLE_GENERATION: YesNo.YES,
            Feature.REPLAY_FIDELITY: FidelityReport(
                6.0, "maximum across test applications; adjustable by sampling"
            ),
            Feature.REVEALS_DEPENDENCIES: YesNo.YES,
            Feature.INTRUSIVENESS: Likert(1, "Passive"),
            Feature.ANALYSIS_TOOLS: YesNo.NO,
            Feature.TRACE_FORMAT: TraceFormat.HUMAN_READABLE,
            Feature.SKEW_DRIFT_ACCOUNTING: YesNo.NO,
            Feature.ELAPSED_TIME_OVERHEAD: overhead
            or OverheadReport(
                min_percent=0.0,
                max_percent=205.0,
                note="adjustable by design via throttling sample rate",
            ),
        },
    )


def paper_table2() -> Dict[str, FrameworkClassification]:
    """All three published classifications, keyed by framework name."""
    return {
        c.framework_name: c
        for c in (
            lanl_trace_classification(),
            tracefs_classification(),
            ptrace_classification(),
        )
    }
