"""The taxonomy's quantitative element: overhead measurement (§3.1).

The feature classification is "done by inspection"; overhead is "based
upon empirical measurements of the performance and end-to-end timing
overheads using a synthetic application benchmark".  This module is the
bridge between the two: it runs the measurement protocol from
:mod:`repro.harness.experiment` and condenses the results into the
:class:`~repro.core.values.OverheadReport` cell a classification carries.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.core.values import OverheadReport
from repro.harness.experiment import OverheadMeasurement, sweep_block_sizes
from repro.harness.testbed import TestbedConfig
from repro.units import MiB
from repro.workloads import AccessPattern, mpi_io_test

__all__ = ["elapsed_time_overhead", "measure_overhead_report"]


def elapsed_time_overhead(untraced_elapsed: float, traced_elapsed: float) -> float:
    """The paper's formula, as a fraction.

    (elapsed time of traced application - elapsed time of untraced
    application) / elapsed time of untraced application.
    """
    if untraced_elapsed <= 0:
        raise ValueError("untraced elapsed time must be positive")
    return (traced_elapsed - untraced_elapsed) / untraced_elapsed


def measure_overhead_report(
    framework_factory: Callable,
    block_sizes: Iterable[int],
    patterns: Iterable[AccessPattern] = tuple(AccessPattern),
    total_bytes_per_rank: int = 16 * MiB,
    config: Optional[TestbedConfig] = None,
    nprocs: int = 8,
    seed: int = 0,
    note: str = "",
) -> OverheadReport:
    """Measure a framework's elapsed-time-overhead cell empirically.

    Sweeps the synthetic benchmark over patterns × block sizes and
    condenses to the min/max range the paper reports (e.g. LANL-Trace's
    "24% - 222%").
    """
    overheads: List[float] = []
    for pattern in patterns:
        measurements = sweep_block_sizes(
            framework_factory,
            mpi_io_test,
            {"pattern": pattern, "path": "/pfs/mpi_io_test.out"},
            block_sizes,
            total_bytes_per_rank,
            config=config,
            nprocs=nprocs,
            seed=seed,
        )
        overheads.extend(m.elapsed_overhead for m in measurements)
    return OverheadReport(
        min_percent=round(100.0 * min(overheads), 1),
        max_percent=round(100.0 * max(overheads), 1),
        note=note or "measured on the synthetic benchmark",
    )
