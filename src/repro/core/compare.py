"""Side-by-side comparison of classifications.

The taxonomy's purpose is "comparison of various I/O Tracing Frameworks"
(§1); this module computes where two classifications agree and differ, in
rendered-cell terms (the level at which Table 2 is read).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.classification import FrameworkClassification
from repro.core.features import FEATURES, Feature

__all__ = ["ClassificationDiff", "compare_classifications"]


@dataclass(frozen=True)
class ClassificationDiff:
    """Result of comparing two classifications."""

    left_name: str
    right_name: str
    same: Tuple[Feature, ...]
    different: Dict[Feature, Tuple[str, str]]

    @property
    def n_differences(self) -> int:
        return len(self.different)

    def render(self) -> str:
        """Human-readable diff listing."""
        lines = [
            "%s vs %s: %d/%d features differ"
            % (self.left_name, self.right_name, self.n_differences, len(FEATURES))
        ]
        for feature, (a, b) in self.different.items():
            lines.append("  %-35s %s  |  %s" % (feature.display_name + ":", a, b))
        return "\n".join(lines) + "\n"


def compare_classifications(
    left: FrameworkClassification, right: FrameworkClassification
) -> ClassificationDiff:
    """Cell-level diff of two classifications."""
    same: List[Feature] = []
    different: Dict[Feature, Tuple[str, str]] = {}
    for feature in FEATURES:
        a, b = left.cell(feature), right.cell(feature)
        if a == b:
            same.append(feature)
        else:
            different[feature] = (a, b)
    return ClassificationDiff(
        left_name=left.framework_name,
        right_name=right.framework_name,
        same=tuple(same),
        different=different,
    )
