"""Content-addressed on-disk cache of sweep-point results.

The simulator is deterministic by construction: a :class:`RunSpec` fully
determines its :class:`~repro.harness.parallel.PointResult`, so the pair
(spec hash → result) can be stored once and replayed forever.  The key is
a SHA-256 over a canonical JSON rendering of the spec — testbed config,
framework name + params, workload name + args, nprocs, seed — **plus the
package version**, so any release that might change the performance model
invalidates every old entry automatically.

Each entry also records the run's ``events_executed`` fingerprints and a
checksum of its own payload.  Both are re-verified on every hit: a
mismatch (hand-edited file, partial write, or a model that drifted without
a version bump) silently discards the entry and re-runs the point rather
than serving stale numbers.  ``--no-cache`` at the CLI is the escape hatch
for bypassing the cache entirely.

Entries are tiny JSON files under ``.repro-cache/<k[:2]>/<key>.json`` (a
git-ignorable directory), written atomically so concurrent sweeps sharing
a cache directory never observe torn entries.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

import repro
from repro.harness.parallel import PointResult, RunSpec, RunStats

__all__ = ["DEFAULT_CACHE_DIR", "RunCache", "spec_key"]

#: Default cache directory, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

_SCHEMA = "repro/runcache/v1"


def _canon(obj: Any) -> Any:
    """Reduce an object to a canonical JSON-serializable form.

    Dataclasses become ``{"__dataclass__": qualified-name, fields...}``,
    enums ``{"__enum__": qualified-name, "value": ...}``, mappings get
    sorted keys.  Deterministic across processes and sessions — this is
    what gets hashed.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out: Dict[str, Any] = {
            "__dataclass__": "%s.%s" % (type(obj).__module__, type(obj).__qualname__)
        }
        for f in dataclasses.fields(obj):
            out[f.name] = _canon(getattr(obj, f.name))
        return out
    if isinstance(obj, enum.Enum):
        return {
            "__enum__": "%s.%s" % (type(obj).__module__, type(obj).__qualname__),
            "value": obj.value,
        }
    if isinstance(obj, dict):
        return {str(k): _canon(v) for k, v in sorted(obj.items())}
    if isinstance(obj, (frozenset, set)):
        # Fault-event op sets; canonical order makes equal sets hash equal.
        return sorted(_canon(v) for v in obj)
    if isinstance(obj, (list, tuple)):
        return [_canon(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    raise TypeError("cannot canonicalize %r for cache keying" % (obj,))


def _dumps(obj: Any) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def spec_key(spec: RunSpec) -> str:
    """Stable SHA-256 cache key of a run spec (includes package version)."""
    material: Dict[str, Any] = {
        "schema": _SCHEMA,
        "version": repro.__version__,
        "framework": _canon(spec.framework),
        "workload": spec.workload,
        "workload_args": _canon(dict(spec.workload_args)),
        "config": _canon(spec.config),
        "nprocs": spec.nprocs,
        "seed": spec.seed,
    }
    # Only telemetric specs add the field, so every pre-telemetry cache
    # entry keeps its key (no version bump, no mass invalidation).
    if getattr(spec, "telemetry", False):
        material["telemetry"] = True
    # Same widening rule for the fault plane: only faulted/bounded specs
    # key on the chaos fields, so plain points keep their old keys.
    if getattr(spec, "faults", None) is not None or getattr(spec, "sim_timeout", None) is not None:
        material["faults"] = _canon(spec.faults)
        material["sim_timeout"] = spec.sim_timeout
        material["retries"] = spec.retries
    # Archived specs widen the key too (a flag, not the store path: the
    # run id is content-derived, so it is valid for any archive location).
    # The segment codec joins the key only when non-default, so every
    # pre-columnar archived entry keeps its key.
    if getattr(spec, "store", None) is not None:
        material["store"] = True
        codec = getattr(spec, "store_codec", "v1")
        if codec != "v1":
            material["store_codec"] = codec
    return hashlib.sha256(_dumps(material).encode("utf-8")).hexdigest()


def _decode_value(obj: Any) -> Any:
    """Inverse of :func:`_canon` for the value types stored in params."""
    if isinstance(obj, dict) and "__enum__" in obj:
        modname, _, qualname = obj["__enum__"].rpartition(".")
        import importlib

        cls = getattr(importlib.import_module(modname), qualname)
        return cls(obj["value"])
    if isinstance(obj, list):
        return [_decode_value(v) for v in obj]
    return obj


def _stats_payload(stats: RunStats) -> Dict[str, Any]:
    return {
        "elapsed": stats.elapsed,
        "bytes_moved": stats.bytes_moved,
        "events_executed": stats.events_executed,
    }


def _stats_from_payload(payload: Dict[str, Any]) -> RunStats:
    return RunStats(
        elapsed=float(payload["elapsed"]),
        bytes_moved=int(payload["bytes_moved"]),
        events_executed=int(payload["events_executed"]),
    )


class RunCache:
    """Deterministic run cache rooted at a directory (see module docstring).

    ``hits``/``misses``/``stores`` count this instance's traffic; the
    hit-rate over a whole sweep comes from the sweep's
    :class:`~repro.harness.parallel.SweepReport`.
    """

    def __init__(self, root: Union[str, Path] = DEFAULT_CACHE_DIR):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _path_for(self, key: str) -> Path:
        return self.root / key[:2] / (key + ".json")

    def get(self, spec: RunSpec) -> Optional[PointResult]:
        """Return the cached result for ``spec``, or None.

        Verifies the entry's payload checksum and ``events_executed``
        fingerprint; a failed check deletes the entry and reports a miss.
        """
        key = spec_key(spec)
        path = self._path_for(key)
        try:
            entry = json.loads(path.read_text("utf-8"))
        except (OSError, ValueError):
            self.misses += 1
            return None
        if not self._verify(entry, key):
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            return None
        payload = entry["payload"]
        self.hits += 1
        return PointResult(
            params=tuple(
                (str(k), _decode_value(v)) for k, v in payload["params"]
            ),
            untraced=_stats_from_payload(payload["untraced"]),
            traced=_stats_from_payload(payload["traced"]),
            wall_seconds=float(payload["wall_seconds"]),
            cached=True,
            telemetry=payload.get("telemetry"),
            error=payload.get("error"),
            attempts=int(payload.get("attempts", 1)),
            chaos=payload.get("chaos"),
            store_run_id=payload.get("store_run_id"),
        )

    @staticmethod
    def _verify(entry: Any, key: str) -> bool:
        """Integrity + drift checks for one loaded entry."""
        try:
            if entry["schema"] != _SCHEMA or entry["key"] != key:
                return False
            payload = entry["payload"]
            digest = hashlib.sha256(_dumps(payload).encode("utf-8")).hexdigest()
            if digest != entry["payload_sha256"]:
                return False
            fp = entry["fingerprint"]
            return (
                fp["untraced_events"] == payload["untraced"]["events_executed"]
                and fp["traced_events"] == payload["traced"]["events_executed"]
            )
        except (KeyError, TypeError):
            return False

    def put(self, spec: RunSpec, result: PointResult) -> str:
        """Store ``result`` under ``spec``'s key (atomic write); returns key."""
        key = spec_key(spec)
        payload = {
            "params": [[k, _canon(v)] for k, v in result.params],
            "untraced": _stats_payload(result.untraced),
            "traced": _stats_payload(result.traced),
            "wall_seconds": result.wall_seconds,
        }
        if result.telemetry is not None:
            # Telemetry exports are already plain JSON (the collector
            # normalizes through a json round trip), so they serialize
            # byte-identically here and on reload — covered by the
            # payload checksum like everything else.
            payload["telemetry"] = result.telemetry
        if result.error is not None:
            payload["error"] = result.error
        if result.attempts != 1:
            payload["attempts"] = result.attempts
        if result.chaos is not None:
            # Chaos payloads are canonical-JSON round-tripped at creation,
            # so cached and fresh points compare byte-identical.
            payload["chaos"] = result.chaos
        if result.store_run_id is not None:
            payload["store_run_id"] = result.store_run_id
        entry = {
            "schema": _SCHEMA,
            "key": key,
            "version": repro.__version__,
            "fingerprint": {
                "untraced_events": result.untraced.events_executed,
                "traced_events": result.traced.events_executed,
            },
            "payload": payload,
            "payload_sha256": hashlib.sha256(
                _dumps(payload).encode("utf-8")
            ).hexdigest(),
        }
        path = self._path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(entry, fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1
        return key

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        removed = 0
        if not self.root.exists():
            return 0
        for path in self.root.glob("*/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))
