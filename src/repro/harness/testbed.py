"""Standard simulated testbed.

Reproduces the paper's machine (§4.1.2): a 32-processor Linux cluster on
gigabit Ethernet, a parallel file system striping over RAID-5 storage
(64 KiB stripes, 252 drives total), an NFS-served home directory, and
node-local scratch.  Every experiment builds a *fresh* testbed (same seed
⇒ identical machine), so traced and untraced runs start from identical
state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.simfs.localfs import LocalFS
from repro.simfs.nfs import NFS
from repro.simfs.pfs import ParallelFS, PFSParams
from repro.simfs.vfs import VFS

__all__ = ["Testbed", "TestbedConfig", "build_testbed"]


@dataclass(frozen=True)
class TestbedConfig:
    """Everything needed to rebuild the machine deterministically."""

    __test__ = False  # not a pytest test class, despite the name

    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    pfs: PFSParams = field(default_factory=PFSParams)
    pfs_mount: str = "/pfs"
    nfs_mount: str = "/home"
    scratch_mount: str = "/tmp"
    with_nfs: bool = True
    with_scratch: bool = True

    def with_seed(self, seed: int) -> "TestbedConfig":
        """A copy of this config with the cluster seed replaced."""
        from dataclasses import replace

        return replace(self, cluster=replace(self.cluster, seed=seed))


class Testbed:
    """An assembled machine: cluster + VFS with mounted file systems."""

    __test__ = False  # not a pytest test class, despite the name

    def __init__(self, config: Optional[TestbedConfig] = None):
        self.config = config or TestbedConfig()
        self.cluster = Cluster(self.config.cluster)
        sim = self.cluster.sim
        self.vfs = VFS(sim)
        self.pfs = ParallelFS(sim, self.cluster.network, self.config.pfs, name="pfs")
        self.vfs.mount(self.config.pfs_mount, self.pfs)
        self.nfs: Optional[NFS] = None
        if self.config.with_nfs:
            self.nfs = NFS(sim, self.cluster.network, name="home")
            self.vfs.mount(self.config.nfs_mount, self.nfs)
        self.scratch: Optional[LocalFS] = None
        if self.config.with_scratch:
            self.scratch = LocalFS(sim, name="scratch")
            self.vfs.mount(self.config.scratch_mount, self.scratch)

    @property
    def sim(self):
        return self.cluster.sim


def build_testbed(
    config: Optional[TestbedConfig] = None, seed: Optional[int] = None
) -> Testbed:
    """Build a fresh testbed; ``seed`` overrides the config's cluster seed."""
    cfg = config or TestbedConfig()
    if seed is not None:
        cfg = cfg.with_seed(seed)
    return Testbed(cfg)
