"""Parallel sweep executor: fan independent overhead points over processes.

Every point of a figure sweep — one (framework, workload args, testbed,
seed) tuple measured traced and untraced — is an independent, perfectly
deterministic unit of work.  This module makes such points schedulable:

* :class:`FrameworkSpec` / :class:`RunSpec` are pickle-safe descriptions
  of a point.  The old harness passed ``lambda: LANLTrace(...)`` closures,
  which cannot cross a process boundary; specs name a factory in
  :data:`FRAMEWORK_FACTORIES` and a workload in :data:`WORKLOADS` instead.
* :func:`execute_spec` runs one point in the current process and returns a
  :class:`PointResult` — plain numbers (elapsed, payload bytes, kernel
  event fingerprints), no live simulator state, so it pickles and caches.
* :func:`run_sweep` executes a list of specs, serially or over a
  ``ProcessPoolExecutor`` (``jobs > 1``), consulting an optional
  :class:`~repro.harness.runcache.RunCache` first.  Results come back in
  spec order regardless of completion order, so a sweep's output is
  byte-identical whether it ran with ``jobs=1``, ``jobs=N``, or entirely
  from a warm cache — the determinism contract the tests pin down.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.errors import ReproError
from repro.frameworks.base import TracingFramework
from repro.harness.experiment import (
    RunOutcome,
    measure_overhead,
    sweep_args_for_block_size,
)
from repro.harness.testbed import TestbedConfig

__all__ = [
    "FRAMEWORK_FACTORIES",
    "WORKLOADS",
    "register_framework_factory",
    "register_workload",
    "as_framework_spec",
    "FrameworkSpec",
    "RunSpec",
    "RunStats",
    "PointResult",
    "SweepReport",
    "SweepResult",
    "build_sweep_specs",
    "execute_spec",
    "execute_spec_safe",
    "ingest_spec_bundle",
    "parallel_map",
    "run_sweep",
    "spec_store_meta",
]

#: Named framework factories: name -> callable(params dict) -> TracingFramework.
FRAMEWORK_FACTORIES: Dict[str, Callable[[Mapping[str, Any]], TracingFramework]] = {}

#: Named workload generator functions: name -> app(mpi, args) generator fn.
WORKLOADS: Dict[str, Callable] = {}


def register_framework_factory(
    name: str,
) -> Callable[[Callable[[Mapping[str, Any]], TracingFramework]], Callable]:
    """Decorator: register ``fn(params) -> TracingFramework`` under ``name``."""

    def deco(fn: Callable[[Mapping[str, Any]], TracingFramework]) -> Callable:
        FRAMEWORK_FACTORIES[name] = fn
        return fn

    return deco


def register_workload(name: str, fn: Callable) -> Callable:
    """Register a workload generator function under ``name``; returns ``fn``."""
    WORKLOADS[name] = fn
    return fn


def _kv(mapping: Mapping[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    """Canonical hashable form of a kwargs mapping: sorted (key, value) pairs."""
    return tuple(sorted(mapping.items()))


@dataclass(frozen=True)
class FrameworkSpec:
    """Pickle-safe recipe for a tracing framework instance.

    ``name`` selects a factory in :data:`FRAMEWORK_FACTORIES`; ``params``
    (sorted key/value pairs) are its construction kwargs.  ``build()`` in a
    worker process recreates exactly the framework a closure would have.
    """

    name: str
    params: Tuple[Tuple[str, Any], ...] = ()

    @staticmethod
    def create(name: str, **params: Any) -> "FrameworkSpec":
        """Construct a spec from keyword parameters."""
        return FrameworkSpec(name=name, params=_kv(params))

    def build(self) -> TracingFramework:
        """Instantiate the framework via its registered factory."""
        try:
            factory = FRAMEWORK_FACTORIES[self.name]
        except KeyError:
            raise ReproError(
                "no framework factory registered as %r (known: %s)"
                % (self.name, ", ".join(sorted(FRAMEWORK_FACTORIES)) or "none")
            ) from None
        return factory(dict(self.params))


@dataclass(frozen=True)
class RunSpec:
    """Pickle-safe description of one overhead measurement point.

    ``telemetry`` asks the worker to run both measurements inside
    :func:`repro.obs.tracepoints.session` and attach the exported
    payloads to the result.  It is part of the cache key (telemetric and
    plain entries never alias) but never changes the simulated history —
    fingerprints match with it on or off.
    """

    framework: FrameworkSpec
    workload: str
    workload_args: Tuple[Tuple[str, Any], ...]
    config: Optional[TestbedConfig] = None
    nprocs: Optional[int] = None
    seed: Optional[int] = None
    telemetry: bool = False
    #: Optional :class:`~repro.faults.schedule.FaultSchedule` to install on
    #: both runs; routes the point through the chaos executor.  Part of the
    #: cache key (faulted and plain points never alias).
    faults: Optional[Any] = None
    #: Simulated-time horizon per attempt; exceeding it raises
    #: :class:`~repro.errors.SimTimeoutError` instead of hanging.
    sim_timeout: Optional[float] = None
    #: Timeout retries (exponential horizon doubling) before the point is
    #: annotated as failed.
    retries: int = 0
    #: TraceBank archive root; when set, the worker ingests the traced
    #: run's bundle after measuring and records the run id on the result.
    #: Part of the cache key (archived and plain points never alias).
    store: Optional[str] = None
    #: Segment codec for ``store`` ingests ("v1" row-major, "v2"
    #: columnar).  Part of the cache key only when non-default, so
    #: pre-columnar cache entries keep their keys.
    store_codec: str = "v1"

    @staticmethod
    def create(
        framework: Union["FrameworkSpec", str],
        workload: str,
        workload_args: Mapping[str, Any],
        config: Optional[TestbedConfig] = None,
        nprocs: Optional[int] = None,
        seed: Optional[int] = None,
        telemetry: bool = False,
        faults: Optional[Any] = None,
        sim_timeout: Optional[float] = None,
        retries: int = 0,
        store: Optional[str] = None,
        store_codec: str = "v1",
    ) -> "RunSpec":
        """Construct a spec from plain arguments (dict args, name or spec)."""
        return RunSpec(
            framework=as_framework_spec(framework),
            workload=workload,
            workload_args=_kv(workload_args),
            config=config,
            nprocs=nprocs,
            seed=seed,
            telemetry=telemetry,
            faults=faults,
            sim_timeout=sim_timeout,
            retries=retries,
            store=store,
            store_codec=store_codec,
        )

    def args_dict(self) -> Dict[str, Any]:
        """The workload arguments as a plain dict."""
        return dict(self.workload_args)

    def workload_fn(self) -> Callable:
        """Resolve the registered workload generator function."""
        try:
            return WORKLOADS[self.workload]
        except KeyError:
            raise ReproError(
                "no workload registered as %r (known: %s)"
                % (self.workload, ", ".join(sorted(WORKLOADS)) or "none")
            ) from None


def as_framework_spec(framework: Any) -> FrameworkSpec:
    """Coerce a spec, registered factory name, or framework class to a spec.

    Closures (the old ``lambda: LANLTrace(...)`` idiom) are rejected with a
    pointed error: they cannot cross a process boundary, which is the whole
    reason specs exist.
    """
    if isinstance(framework, FrameworkSpec):
        return framework
    if isinstance(framework, str):
        if framework not in FRAMEWORK_FACTORIES:
            raise ReproError(
                "no framework factory registered as %r (known: %s)"
                % (framework, ", ".join(sorted(FRAMEWORK_FACTORIES)) or "none")
            )
        return FrameworkSpec(name=framework)
    if isinstance(framework, type) and issubclass(framework, TracingFramework):
        name = framework.name
        if name in FRAMEWORK_FACTORIES:
            return FrameworkSpec(name=name)
    raise ReproError(
        "parallel/cached sweeps need a pickle-safe framework spec "
        "(FrameworkSpec or a registered factory name), not %r — closures "
        "cannot cross a process boundary" % (framework,)
    )


# -- results ----------------------------------------------------------------


@dataclass(frozen=True)
class RunStats:
    """Pickle-safe summary of one run: the numbers the figures need."""

    elapsed: float
    bytes_moved: int
    events_executed: int

    @property
    def aggregate_bandwidth(self) -> float:
        """Total payload bytes over true elapsed seconds."""
        if self.elapsed <= 0:
            return 0.0
        return self.bytes_moved / self.elapsed

    @staticmethod
    def from_outcome(outcome: RunOutcome) -> "RunStats":
        """Strip a live :class:`RunOutcome` down to its cacheable numbers."""
        return RunStats(
            elapsed=outcome.elapsed,
            bytes_moved=outcome.bytes_moved,
            events_executed=outcome.events_executed,
        )


@dataclass(frozen=True)
class PointResult:
    """One measured sweep point, reduced to pickle-safe numbers.

    Mirrors :class:`~repro.harness.experiment.OverheadMeasurement`'s
    overhead properties so figure assembly treats them interchangeably.
    ``wall_seconds`` is the real (host) time the measurement took;
    ``cached`` marks results served from a :class:`RunCache`.

    ``telemetry``, present when the spec asked for it, is
    ``{"untraced": payload, "traced": payload}`` where each payload is a
    deterministic :meth:`~repro.obs.tracepoints.TelemetryCollector.export`
    dict (metrics snapshot + Chrome trace).  It is cached alongside the
    numbers, so warm-cache points return byte-identical payloads.
    """

    params: Tuple[Tuple[str, Any], ...]
    untraced: RunStats
    traced: RunStats
    wall_seconds: float = 0.0
    cached: bool = False
    telemetry: Optional[Dict[str, Any]] = None
    #: Failure annotation: ``None`` for a completed point, otherwise a
    #: one-line description ("traced: node-crash (...)").  Failed points
    #: carry zeroed/partial stats and still render (as FAILED rows).
    error: Optional[str] = None
    #: How many attempts the slower of the two runs took (retries + 1 max).
    attempts: int = 1
    #: Chaos payload (fault log, counters, per-run status) for points run
    #: under a fault schedule; canonical-JSON-clean for byte-identity.
    chaos: Optional[Dict[str, Any]] = None
    #: TraceBank run id of the traced run's archived bundle, for points
    #: executed with ``spec.store`` set (content-derived, so cache-stable).
    store_run_id: Optional[str] = None

    @property
    def elapsed_overhead(self) -> float:
        """The paper's §3.1 formula: (T_traced - T_untraced) / T_untraced."""
        if self.untraced.elapsed <= 0:
            return 0.0
        return (self.traced.elapsed - self.untraced.elapsed) / self.untraced.elapsed

    @property
    def bandwidth_overhead(self) -> float:
        """Fractional bandwidth loss: (BW_u - BW_t) / BW_u, in [0, 1)."""
        bw_u = self.untraced.aggregate_bandwidth
        if bw_u <= 0:
            return 0.0
        return (bw_u - self.traced.aggregate_bandwidth) / bw_u

    @property
    def events_executed(self) -> int:
        """Combined kernel-event fingerprint of both runs."""
        return self.untraced.events_executed + self.traced.events_executed

    def params_dict(self) -> Dict[str, Any]:
        """The point's workload arguments as a plain dict."""
        return dict(self.params)

    @property
    def events_per_sec(self) -> float:
        """Kernel events dispatched per host second across both runs.

        The wall clock is clamped at 1 ns: a sub-resolution measurement
        (events executed but ``perf_counter`` ticked ~0) yields a large
        finite rate instead of dividing by zero or faking a dead 0.0.
        """
        if self.events_executed <= 0:
            return 0.0
        return self.events_executed / max(self.wall_seconds, 1e-9)

    @property
    def wall_time_per_sim_second(self) -> float:
        """Host seconds burned per simulated second (both runs combined)."""
        sim_seconds = self.untraced.elapsed + self.traced.elapsed
        if sim_seconds <= 0:
            return 0.0
        return self.wall_seconds / sim_seconds

    def headline(self) -> Dict[str, Any]:
        """The point's baseline-sentinel metrics as one plain-JSON row.

        These are the quantities ``BENCH_history.jsonl`` tracks per
        figure point (see :mod:`repro.obs.baseline`): simulated elapsed
        for both runs, the §3.1 overhead as a percentage, and the
        host-clock rates.  Callers add the identity keys (figure, block
        size) before recording.
        """
        return {
            "elapsed_untraced": self.untraced.elapsed,
            "elapsed_traced": self.traced.elapsed,
            "overhead_pct": 100.0 * self.elapsed_overhead,
            "events_executed": self.events_executed,
            "events_per_sec": self.events_per_sec,
            "wall_seconds": self.wall_seconds,
            "wall_time_per_sim_second": self.wall_time_per_sim_second,
            "cached": self.cached,
            "error": self.error,
        }


@dataclass
class SweepReport:
    """Execution statistics for one :func:`run_sweep` call."""

    jobs: int
    n_points: int
    cache_hits: int = 0
    cache_misses: int = 0
    wall_seconds: float = 0.0

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of points served from the cache (0 when empty sweep)."""
        if self.n_points <= 0:
            return 0.0
        return self.cache_hits / self.n_points


@dataclass
class SweepResult:
    """Points (in spec order) plus the sweep's execution report."""

    points: List[PointResult]
    report: SweepReport = field(default_factory=lambda: SweepReport(jobs=1, n_points=0))


# -- execution --------------------------------------------------------------


def build_sweep_specs(
    framework: Union[FrameworkSpec, str],
    workload: Union[str, Callable],
    base_args: Mapping[str, Any],
    block_sizes: Iterable[int],
    total_bytes_per_rank: int,
    config: Optional[TestbedConfig] = None,
    nprocs: Optional[int] = None,
    seed: Optional[int] = None,
    telemetry: bool = False,
    store: Optional[str] = None,
    store_codec: str = "v1",
) -> List[RunSpec]:
    """Specs for a constant-bytes-per-rank block-size sweep (one per size)."""
    fw = as_framework_spec(framework)
    wl = workload if isinstance(workload, str) else _workload_name(workload)
    return [
        RunSpec.create(
            fw,
            wl,
            sweep_args_for_block_size(dict(base_args), bs, total_bytes_per_rank),
            config=config,
            nprocs=nprocs,
            seed=seed,
            telemetry=telemetry,
            store=store,
            store_codec=store_codec,
        )
        for bs in block_sizes
    ]


def _workload_name(fn: Callable) -> str:
    for name, registered in WORKLOADS.items():
        if registered is fn:
            return name
    raise ReproError(
        "workload %r is not registered; register_workload() it so worker "
        "processes can resolve it by name" % (fn,)
    )


def spec_store_meta(spec: RunSpec) -> Dict[str, Any]:
    """The queryable run metadata a sweep point archives with its bundle."""
    return {
        "kind": "sweep",
        "framework": spec.framework.name,
        "framework_params": dict(spec.framework.params),
        "workload": spec.workload,
        "workload_args": dict(spec.workload_args),
        "nprocs": spec.nprocs,
        "seed": spec.seed,
    }


def ingest_spec_bundle(
    spec: RunSpec, bundle: Any, extra: Optional[Mapping[str, Any]] = None
) -> Optional[str]:
    """Archive a worker-side trace bundle when the spec asks for it.

    Returns the content-derived TraceBank run id, or None when the spec
    carries no ``store`` or the run produced no bundle.  Safe from
    concurrent workers: segment writes are atomic and content-addressed.
    """
    if spec.store is None or bundle is None:
        return None
    from repro.store.bank import TraceBank

    meta = spec_store_meta(spec)
    if extra:
        meta.update(dict(extra))
    codec = getattr(spec, "store_codec", "v1")
    return TraceBank(spec.store).ingest_bundle(bundle, meta=meta, codec=codec).run_id


def execute_spec(spec: RunSpec) -> PointResult:
    """Measure one point in this process (the process-pool worker entry).

    Runs the full §3.1 protocol (fresh testbed untraced, identical fresh
    testbed traced) and reduces the outcome to a :class:`PointResult`.
    With ``spec.telemetry`` each of the two runs gets its own telemetry
    session, and the exported payloads ride along on the result.  With
    ``spec.store`` the traced run's bundle is archived into the TraceBank
    there and the result carries its run id.
    """
    if spec.faults is not None or spec.sim_timeout is not None:
        from repro.faults.chaos import execute_fault_spec

        return execute_fault_spec(spec)
    t0 = time.perf_counter()
    if spec.telemetry:
        from repro.harness.experiment import run_traced, run_untraced
        from repro.obs.tracepoints import session

        with session() as col_u:
            untraced = run_untraced(
                spec.workload_fn(),
                spec.args_dict(),
                config=spec.config,
                nprocs=spec.nprocs,
                seed=spec.seed,
            )
            payload_u = col_u.export(end_time=untraced.elapsed)
        with session() as col_t:
            traced, traced_run = run_traced(
                spec.framework.build,
                spec.workload_fn(),
                spec.args_dict(),
                config=spec.config,
                nprocs=spec.nprocs,
                seed=spec.seed,
            )
            payload_t = col_t.export(end_time=traced.elapsed)
        # Ingest outside the sessions so archive tracepoints never leak
        # into the measurement's telemetry payloads.
        run_id = ingest_spec_bundle(spec, traced_run.bundle)
        wall = time.perf_counter() - t0
        return PointResult(
            params=spec.workload_args,
            untraced=RunStats.from_outcome(untraced),
            traced=RunStats.from_outcome(traced),
            wall_seconds=wall,
            telemetry={"untraced": payload_u, "traced": payload_t},
            store_run_id=run_id,
        )
    m = measure_overhead(
        spec.framework.build,
        spec.workload_fn(),
        spec.args_dict(),
        config=spec.config,
        nprocs=spec.nprocs,
        seed=spec.seed,
    )
    run_id = ingest_spec_bundle(spec, m.traced_run.bundle)
    wall = time.perf_counter() - t0
    return PointResult(
        params=_kv(m.params),
        untraced=RunStats.from_outcome(m.untraced),
        traced=RunStats.from_outcome(m.traced),
        wall_seconds=wall,
        store_run_id=run_id,
    )


def execute_spec_safe(spec: RunSpec) -> PointResult:
    """:func:`execute_spec`, degrading library failures to annotated points.

    A point that raises a :class:`~repro.errors.ReproError` (injected I/O
    storm, deadlock, mis-specified schedule...) becomes a zero-stats
    result with ``error`` set instead of aborting the whole sweep —
    figures still come out, with the failed point annotated.  Non-library
    exceptions (genuine bugs) still propagate.
    """
    try:
        return execute_spec(spec)
    except ReproError as exc:
        return PointResult(
            params=spec.workload_args,
            untraced=RunStats(0.0, 0, 0),
            traced=RunStats(0.0, 0, 0),
            error="%s: %s" % (type(exc).__name__, exc),
        )


def _store_has_run(store: str, run_id: str) -> bool:
    """Whether ``run_id`` is actually present in the ``store`` archive.

    Guards cache hits for archived specs: the cache key deliberately
    excludes the store *path* (run ids are content-derived), so a hit can
    carry a run id that was ingested into a different archive.  Serving
    that hit against a fresh store would hand out a dangling run id.
    """
    from repro.errors import ReproError as _ReproError
    from repro.store.bank import TraceBank

    try:
        TraceBank(store, create=False).manifest(run_id)
        return True
    except (_ReproError, OSError):
        return False


def run_sweep(
    specs: List[RunSpec],
    jobs: int = 1,
    cache: Optional[Any] = None,
    progress: Optional[Callable[[int, int, PointResult], None]] = None,
) -> SweepResult:
    """Execute every spec, in parallel when ``jobs > 1``, cache-first.

    Points already in ``cache`` (a :class:`~repro.harness.runcache.RunCache`)
    are served from disk; misses are executed — fanned out over a
    ``ProcessPoolExecutor`` when ``jobs > 1`` — and written back.  The
    returned points are in spec order, so output ordering never depends on
    worker completion order.

    ``progress``, when given, is called as ``progress(done, total, point)``
    after each point completes (cache hits first, then fresh points as the
    pool yields them).  It only observes the sweep — results are identical
    with or without it.
    """
    if jobs < 1:
        raise ReproError("jobs must be >= 1, got %r" % (jobs,))
    t0 = time.perf_counter()
    results: List[Optional[PointResult]] = [None] * len(specs)
    pending: List[Tuple[int, RunSpec]] = []
    hits = 0
    done = 0
    total = len(specs)
    for i, spec in enumerate(specs):
        got = cache.get(spec) if cache is not None else None
        if (
            got is not None
            and spec.store is not None
            and got.store_run_id is not None
            and not _store_has_run(spec.store, got.store_run_id)
        ):
            # Archived point cached from a run against a *different*
            # store: the numbers are valid but the bundle is not in this
            # archive.  Re-execute so the ingest happens here too.
            got = None
        if got is not None:
            results[i] = replace(got, cached=True)
            hits += 1
            done += 1
            if progress is not None:
                progress(done, total, results[i])
        else:
            pending.append((i, spec))
    if pending:
        todo = [spec for _i, spec in pending]
        if jobs > 1 and len(todo) > 1:
            with ProcessPoolExecutor(max_workers=min(jobs, len(todo))) as pool:
                fresh_iter = pool.map(execute_spec_safe, todo)
                fresh = []
                for point in fresh_iter:
                    fresh.append(point)
                    done += 1
                    if progress is not None:
                        progress(done, total, point)
        else:
            fresh = []
            for spec in todo:
                point = execute_spec_safe(spec)
                fresh.append(point)
                done += 1
                if progress is not None:
                    progress(done, total, point)
        for (i, spec), point in zip(pending, fresh):
            results[i] = point
            if cache is not None:
                cache.put(spec, point)
    report = SweepReport(
        jobs=jobs,
        n_points=len(specs),
        cache_hits=hits,
        cache_misses=len(pending),
        wall_seconds=time.perf_counter() - t0,
    )
    return SweepResult(points=[p for p in results if p is not None], report=report)


def parallel_map(fn: Callable[[Any], Any], items: Iterable[Any], jobs: int = 1) -> List[Any]:
    """Order-preserving map over a process pool (the archive's scan fan-out).

    The generic sibling of :func:`run_sweep`: results always come back in
    input order regardless of completion order, so callers that merge
    partials sequentially get byte-identical output for any ``jobs``.
    ``fn`` must be a module-level function and ``items`` pickle-safe when
    ``jobs > 1``; with one job (or one item) everything runs in-process
    with no pool overhead.
    """
    if jobs < 1:
        raise ReproError("jobs must be >= 1, got %r" % (jobs,))
    work = list(items)
    if jobs > 1 and len(work) > 1:
        with ProcessPoolExecutor(max_workers=min(jobs, len(work))) as pool:
            return list(pool.map(fn, work))
    return [fn(item) for item in work]


# -- built-in registrations --------------------------------------------------


def _register_builtins() -> None:
    """Register the paper's frameworks and workload under their names."""
    from repro.frameworks.lanltrace import LANLTrace, LANLTraceConfig
    from repro.frameworks.ptrace import PTrace, PTraceConfig
    from repro.frameworks.tracefs import Tracefs, TracefsConfig
    from repro.workloads import mpi_io_test
    from repro.workloads.zoo_workloads import (
        checkpoint_tiered,
        log_append,
        metadata_storm,
        ml_epoch,
    )

    FRAMEWORK_FACTORIES.setdefault(
        "lanl-trace", lambda params: LANLTrace(LANLTraceConfig(**params))
    )
    FRAMEWORK_FACTORIES.setdefault(
        "tracefs", lambda params: Tracefs(TracefsConfig(**params))
    )
    FRAMEWORK_FACTORIES.setdefault(
        "ptrace", lambda params: PTrace(PTraceConfig(**params))
    )
    WORKLOADS.setdefault("mpi_io_test", mpi_io_test)
    WORKLOADS.setdefault("zoo_checkpoint_tiered", checkpoint_tiered)
    WORKLOADS.setdefault("zoo_ml_epoch", ml_epoch)
    WORKLOADS.setdefault("zoo_log_append", log_append)
    WORKLOADS.setdefault("zoo_metadata_storm", metadata_storm)


_register_builtins()
