"""Series generators for the paper's figures and headline numbers.

* :func:`paper_testbed` — the calibrated simulated machine standing in for
  the paper's 32-processor cluster (§4.1.2);
* :func:`figure_series` — one of Figures 2/3/4: LANL-Trace bandwidth and
  bandwidth-overhead versus block size for a given access pattern;
* :func:`elapsed_overhead_range` — the §4.1.1 headline "24% to 222%"
  elapsed-time overhead span across patterns and block sizes.

Calibration notes (see DESIGN.md §4): the network's per-client effective
bandwidth is set to 2007-era TCP-over-GigE goodput (~40 MiB/s) rather
than wire speed, the parallel FS has 8 storage servers × 31-drive RAID-5
(the paper's 252 drives, 64 KiB stripes), and LANL-Trace's per-event costs
are in :class:`~repro.frameworks.lanltrace.framework.LANLTraceConfig`.
Absolute bandwidths are simulator units; the reproduced quantities are the
overhead percentages and their block-size/pattern structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Union

from repro.cluster.cluster import ClusterConfig
from repro.cluster.network import NetworkConfig
from repro.harness.experiment import sweep_block_sizes
from repro.harness.parallel import (
    FrameworkSpec,
    SweepReport,
    build_sweep_specs,
    run_sweep,
)
from repro.harness.testbed import TestbedConfig
from repro.simfs.pfs import PFSParams
from repro.units import KiB, MiB
from repro.workloads import AccessPattern

__all__ = [
    "FigurePoint",
    "FigureSeries",
    "FigureSweep",
    "paper_testbed",
    "figure_series",
    "run_figures",
    "elapsed_overhead_range",
    "PAPER_BLOCK_SIZES",
    "FIGURE_PATTERNS",
]

#: Block sizes swept in Figures 2-4 (the paper reports 64 KiB and 8192 KiB
#: endpoints explicitly).
PAPER_BLOCK_SIZES: Sequence[int] = (
    64 * KiB,
    256 * KiB,
    1024 * KiB,
    8192 * KiB,
)

#: Figure number -> access pattern, as in the paper.
FIGURE_PATTERNS: Dict[int, AccessPattern] = {
    2: AccessPattern.N_TO_1_STRIDED,
    3: AccessPattern.N_TO_1_NONSTRIDED,
    4: AccessPattern.N_TO_N,
}


def paper_testbed(seed: int = 0, nprocs: int = 32) -> TestbedConfig:
    """The calibrated stand-in for the paper's testbed."""
    return TestbedConfig(
        cluster=ClusterConfig(
            n_nodes=nprocs,
            seed=seed,
            network=NetworkConfig(link_bandwidth=40 * MiB, fabric_streams=24),
        ),
        pfs=PFSParams(server_threads=16),
    )


@dataclass(frozen=True)
class FigurePoint:
    """One x-position of a figure: a block size with its measurements.

    ``error`` is the graceful-degradation seam: a point whose measurement
    failed (fault injection, timeout...) carries zeroed numbers plus the
    annotation here, and the figure is still emitted around it.
    """

    block_size: int
    untraced_bandwidth: float
    traced_bandwidth: float
    bandwidth_overhead: float  # fraction in [0, 1)
    elapsed_overhead: float  # fraction, may exceed 1
    error: Optional[str] = None


@dataclass(frozen=True)
class FigureSeries:
    """A full figure: pattern + points ordered by block size.

    ``measurements`` keeps the raw per-point result objects (when the
    generating sweep provided them) so callers can reach data the
    :class:`FigurePoint` summary drops — notably telemetry payloads.  It
    is excluded from equality: point results carry host wall-clock times,
    and two byte-identical series must compare equal across runs.
    """

    figure_number: int
    pattern: AccessPattern
    nprocs: int
    points: List[FigurePoint]
    measurements: List[Any] = field(default_factory=list, compare=False, repr=False)

    def block_sizes(self) -> List[int]:
        """The x axis: block sizes in point order."""
        return [p.block_size for p in self.points]

    def bandwidth_overheads(self) -> List[float]:
        """Bandwidth-overhead fractions in point order."""
        return [p.bandwidth_overhead for p in self.points]

    def elapsed_overheads(self) -> List[float]:
        """Elapsed-time-overhead fractions in point order."""
        return [p.elapsed_overhead for p in self.points]


def _figure_points(sizes: Sequence[int], measurements: Sequence[Any]) -> List[FigurePoint]:
    # Works for both OverheadMeasurement and parallel.PointResult — the two
    # expose identical overhead/bandwidth accessors by design.
    return [
        FigurePoint(
            block_size=bs,
            untraced_bandwidth=m.untraced.aggregate_bandwidth,
            traced_bandwidth=m.traced.aggregate_bandwidth,
            bandwidth_overhead=m.bandwidth_overhead,
            elapsed_overhead=m.elapsed_overhead,
            error=getattr(m, "error", None),
        )
        for bs, m in zip(sizes, measurements)
    ]


def figure_series(
    figure_number: int,
    block_sizes: Optional[Iterable[int]] = None,
    total_bytes_per_rank: int = 32 * MiB,
    nprocs: int = 32,
    seed: int = 0,
    framework_factory: Optional[Callable] = None,
    framework: Union[FrameworkSpec, str] = "lanl-trace",
    jobs: int = 1,
    cache: Optional[Any] = None,
    telemetry: bool = False,
    progress: Optional[Callable] = None,
    store: Optional[str] = None,
    store_codec: str = "v1",
) -> FigureSeries:
    """Regenerate Figure 2, 3 or 4.

    ``total_bytes_per_rank`` is the scaled-down stand-in for the paper's
    100 GB (N-1) / 10 GB-per-rank (N-N) files: constant per block size, so
    large blocks still amortize per-run costs as in the paper.

    ``framework`` is a pickle-safe spec (or registered factory name); with
    ``jobs > 1`` the sweep points fan out over worker processes, and with a
    ``cache`` (:class:`~repro.harness.runcache.RunCache`) previously
    measured points are served from disk.  The legacy ``framework_factory``
    closure argument forces the serial in-process path.  All paths produce
    byte-identical series — the simulator is deterministic.
    """
    try:
        pattern = FIGURE_PATTERNS[figure_number]
    except KeyError:
        raise ValueError("paper figures with overhead sweeps are 2, 3, 4") from None
    sizes = sorted(block_sizes if block_sizes is not None else PAPER_BLOCK_SIZES)
    measurements = sweep_block_sizes(
        framework_factory if framework_factory is not None else framework,
        "mpi_io_test",
        {"pattern": pattern, "path": "/pfs/mpi_io_test.out"},
        sizes,
        total_bytes_per_rank,
        config=paper_testbed(seed=seed, nprocs=nprocs),
        nprocs=nprocs,
        seed=seed,
        jobs=jobs,
        cache=cache,
        telemetry=telemetry,
        progress=progress,
        store=store,
        store_codec=store_codec,
    )
    return FigureSeries(
        figure_number=figure_number,
        pattern=pattern,
        nprocs=nprocs,
        points=_figure_points(sizes, measurements),
        measurements=list(measurements),
    )


@dataclass
class FigureSweep:
    """All figure series from one combined sweep, plus execution stats.

    ``bench_points`` is one record per sweep point with the wall-clock,
    kernel-event, and cache data the ``BENCH_sweep.json`` artifact reports.
    """

    series: Dict[int, FigureSeries]
    overhead_range: Dict[str, float]
    report: SweepReport
    bench_points: List[Dict[str, Any]] = field(default_factory=list)


def run_figures(
    figures: Sequence[int] = (2, 3, 4),
    block_sizes: Optional[Iterable[int]] = None,
    total_bytes_per_rank: int = 32 * MiB,
    nprocs: int = 32,
    seed: int = 0,
    framework: Union[FrameworkSpec, str] = "lanl-trace",
    jobs: int = 1,
    cache: Optional[Any] = None,
    telemetry: bool = False,
    progress: Optional[Callable] = None,
    store: Optional[str] = None,
    store_codec: str = "v1",
) -> FigureSweep:
    """Regenerate several figures as one flat sweep (maximum parallelism).

    All points of all requested figures go into a single
    :func:`~repro.harness.parallel.run_sweep` call, so with ``jobs > 1``
    the pool stays saturated across figure boundaries instead of draining
    between them.
    """
    sizes = sorted(block_sizes if block_sizes is not None else PAPER_BLOCK_SIZES)
    config = paper_testbed(seed=seed, nprocs=nprocs)
    specs = []
    owners: List[int] = []
    for figno in figures:
        try:
            pattern = FIGURE_PATTERNS[figno]
        except KeyError:
            raise ValueError("paper figures with overhead sweeps are 2, 3, 4") from None
        specs.extend(
            build_sweep_specs(
                framework,
                "mpi_io_test",
                {"pattern": pattern, "path": "/pfs/mpi_io_test.out"},
                sizes,
                total_bytes_per_rank,
                config=config,
                nprocs=nprocs,
                seed=seed,
                telemetry=telemetry,
                store=store,
                store_codec=store_codec,
            )
        )
        owners.extend([figno] * len(sizes))
    result = run_sweep(specs, jobs=jobs, cache=cache, progress=progress)

    series: Dict[int, FigureSeries] = {}
    bench_points: List[Dict[str, Any]] = []
    for idx, figno in enumerate(figures):
        chunk = result.points[idx * len(sizes) : (idx + 1) * len(sizes)]
        series[figno] = FigureSeries(
            figure_number=figno,
            pattern=FIGURE_PATTERNS[figno],
            nprocs=nprocs,
            points=_figure_points(sizes, chunk),
            measurements=list(chunk),
        )
        for bs, point in zip(sizes, chunk):
            row = {"figure": figno, "block_size": bs}
            row.update(point.headline())
            bench_points.append(row)
    # Failed (annotated) points carry zeroed numbers; keep them out of the
    # headline range so one bad point doesn't fake a 0% minimum.
    overheads = [
        p.elapsed_overhead
        for s in series.values()
        for p in s.points
        if p.error is None
    ]
    if not overheads:
        overheads = [0.0]
    return FigureSweep(
        series=series,
        overhead_range={"min": min(overheads), "max": max(overheads)},
        report=result.report,
        bench_points=bench_points,
    )


def elapsed_overhead_range(
    block_sizes: Optional[Iterable[int]] = None,
    total_bytes_per_rank: int = 32 * MiB,
    nprocs: int = 32,
    seed: int = 0,
    jobs: int = 1,
    cache: Optional[Any] = None,
) -> Dict[str, float]:
    """The §4.1.1 headline: min/max elapsed-time overhead across patterns
    and block sizes ("observed to be highly variable ranging from 24% to
    222% ... related directly to the block size").

    ``jobs``/``cache`` parallelize and memoize the 24-simulation sweep
    exactly as in :func:`run_figures`, with identical results.
    """
    sweep = run_figures(
        figures=tuple(FIGURE_PATTERNS),
        block_sizes=block_sizes,
        total_bytes_per_rank=total_bytes_per_rank,
        nprocs=nprocs,
        seed=seed,
        jobs=jobs,
        cache=cache,
    )
    return sweep.overhead_range
