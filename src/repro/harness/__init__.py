"""Experiment harness: testbed assembly, overhead protocol, figure series.

* :mod:`repro.harness.testbed` — builds the standard simulated machine
  (cluster + parallel FS at ``/pfs`` + NFS home at ``/home`` + local
  scratch at ``/tmp``), mirroring the paper's testbed;
* :mod:`repro.harness.experiment` — traced-vs-untraced measurement
  protocol and parameter sweeps;
* :mod:`repro.harness.parallel` — pickle-safe run specs and the
  process-pool sweep executor;
* :mod:`repro.harness.runcache` — content-addressed on-disk cache of
  sweep-point results (determinism makes every point replayable);
* :mod:`repro.harness.figures` — series generators for the paper's
  Figures 2-4;
* :mod:`repro.harness.report` — paper-style text rendering of results.
"""

from repro.harness.testbed import Testbed, TestbedConfig, build_testbed
from repro.harness.experiment import (
    OverheadMeasurement,
    measure_overhead,
    run_untraced,
    sweep_block_sizes,
)
from repro.harness.parallel import (
    FrameworkSpec,
    PointResult,
    RunSpec,
    SweepReport,
    execute_spec,
    run_sweep,
)
from repro.harness.runcache import RunCache

__all__ = [
    "Testbed",
    "TestbedConfig",
    "build_testbed",
    "OverheadMeasurement",
    "measure_overhead",
    "run_untraced",
    "sweep_block_sizes",
    "FrameworkSpec",
    "PointResult",
    "RunSpec",
    "SweepReport",
    "execute_spec",
    "run_sweep",
    "RunCache",
]
