"""Experiment harness: testbed assembly, overhead protocol, figure series.

* :mod:`repro.harness.testbed` — builds the standard simulated machine
  (cluster + parallel FS at ``/pfs`` + NFS home at ``/home`` + local
  scratch at ``/tmp``), mirroring the paper's testbed;
* :mod:`repro.harness.experiment` — traced-vs-untraced measurement
  protocol and parameter sweeps;
* :mod:`repro.harness.figures` — series generators for the paper's
  Figures 2-4;
* :mod:`repro.harness.report` — paper-style text rendering of results.
"""

from repro.harness.testbed import Testbed, TestbedConfig, build_testbed
from repro.harness.experiment import (
    OverheadMeasurement,
    measure_overhead,
    run_untraced,
    sweep_block_sizes,
)

__all__ = [
    "Testbed",
    "TestbedConfig",
    "build_testbed",
    "OverheadMeasurement",
    "measure_overhead",
    "run_untraced",
    "sweep_block_sizes",
]
