"""The taxonomy's overhead measurement protocol (§3.1).

The paper defines elapsed time overhead as::

    (elapsed time of traced app  -  elapsed time of untraced app)
    --------------------------------------------------------------
                elapsed time of untraced app

"These measurements can be made using a tool such as the Linux command
line utility time."  Our ``time`` utility is the simulator's true clock:
each measurement builds two *identical* fresh testbeds (same seed), runs
the workload untraced on one and traced on the other, and compares.

Bandwidth overhead (Figures 2-4) is reported as the fractional bandwidth
*loss*, ``(BW_untraced - BW_traced) / BW_untraced`` — equivalent to time
overhead mapped into [0, 1), which is how the paper's per-pattern
percentages (51.3% ... 0.6%) behave.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.frameworks.base import TracedRun, TracingFramework
from repro.harness.testbed import Testbed, TestbedConfig, build_testbed
from repro.simmpi.runtime import JobResult, mpirun

__all__ = [
    "RunOutcome",
    "OverheadMeasurement",
    "run_untraced",
    "run_traced",
    "measure_overhead",
    "sweep_args_for_block_size",
    "sweep_block_sizes",
]

FrameworkFactory = Callable[[], TracingFramework]


@dataclass(frozen=True)
class RunOutcome:
    """One application run on a fresh testbed.

    ``events_executed`` is the testbed simulator's kernel-event count at
    job end — a determinism fingerprint: two runs of the same spec must
    match it exactly (the run cache verifies this on every hit).
    """

    elapsed: float
    bytes_moved: int
    job: JobResult
    events_executed: int = 0

    @property
    def aggregate_bandwidth(self) -> float:
        """Total payload bytes over true elapsed seconds."""
        if self.elapsed <= 0:
            return 0.0
        return self.bytes_moved / self.elapsed


def _total_payload(job: JobResult) -> int:
    # Read and written bytes count independently: a read-only workload
    # (read_back replays, pseudo-app reads) has no ``bytes_written``
    # attribute yet still moves payload.
    total = 0
    for r in job.results:
        total += int(getattr(r, "bytes_written", 0) or 0)
        total += int(getattr(r, "bytes_read", 0) or 0)
    return total


def run_untraced(
    workload: Callable,
    workload_args: Dict[str, Any],
    config: Optional[TestbedConfig] = None,
    nprocs: Optional[int] = None,
    seed: Optional[int] = None,
) -> RunOutcome:
    """Run the workload with no tracer attached, on a fresh testbed.

    ``seed`` overrides the config's cluster seed when given; by default
    the config's own seed is used (so two calls with the same config see
    the same machine, clocks and all).
    """
    tb = build_testbed(config, seed=seed)
    job = mpirun(tb.cluster, tb.vfs, workload, nprocs=nprocs, args=workload_args)
    return RunOutcome(
        elapsed=job.elapsed,
        bytes_moved=_total_payload(job),
        job=job,
        events_executed=tb.sim.events_executed,
    )


def run_traced(
    framework_factory: FrameworkFactory,
    workload: Callable,
    workload_args: Dict[str, Any],
    config: Optional[TestbedConfig] = None,
    nprocs: Optional[int] = None,
    seed: Optional[int] = None,
) -> tuple[RunOutcome, TracedRun]:
    """Run the workload with a tracer attached, on an identical testbed."""
    tb = build_testbed(config, seed=seed)
    framework = framework_factory()
    framework.prepare(tb)
    app = framework.wrap_app(workload)
    job = mpirun(
        tb.cluster,
        tb.vfs,
        app,
        nprocs=nprocs,
        args=workload_args,
        setup=framework.setup_rank,
    )
    bundle = framework.finalize(job)
    traced = TracedRun(framework_name=framework.name, job=job, bundle=bundle)
    return (
        RunOutcome(
            elapsed=job.elapsed,
            bytes_moved=_total_payload(job),
            job=job,
            events_executed=tb.sim.events_executed,
        ),
        traced,
    )


@dataclass(frozen=True)
class OverheadMeasurement:
    """Paired traced/untraced measurement with the paper's two overheads."""

    untraced: RunOutcome
    traced: RunOutcome
    traced_run: TracedRun
    params: Dict[str, Any]

    @property
    def elapsed_overhead(self) -> float:
        """The paper's §3.1 formula: (T_traced - T_untraced) / T_untraced."""
        if self.untraced.elapsed <= 0:
            return 0.0
        return (self.traced.elapsed - self.untraced.elapsed) / self.untraced.elapsed

    @property
    def bandwidth_overhead(self) -> float:
        """Fractional bandwidth loss: (BW_u - BW_t) / BW_u, in [0, 1)."""
        bw_u = self.untraced.aggregate_bandwidth
        if bw_u <= 0:
            return 0.0
        return (bw_u - self.traced.aggregate_bandwidth) / bw_u


def measure_overhead(
    framework_factory: FrameworkFactory,
    workload: Callable,
    workload_args: Dict[str, Any],
    config: Optional[TestbedConfig] = None,
    nprocs: Optional[int] = None,
    seed: Optional[int] = None,
) -> OverheadMeasurement:
    """The full protocol: identical machines, one untraced + one traced run."""
    untraced = run_untraced(workload, workload_args, config, nprocs, seed)
    traced, traced_run = run_traced(
        framework_factory, workload, workload_args, config, nprocs, seed
    )
    return OverheadMeasurement(
        untraced=untraced,
        traced=traced,
        traced_run=traced_run,
        params=dict(workload_args),
    )


def sweep_args_for_block_size(
    base_args: Dict[str, Any], block_size: int, total_bytes_per_rank: int
) -> Dict[str, Any]:
    """Workload args for one sweep point at constant bytes per rank.

    The paper holds file size constant and varies block size, so the
    number of objects per rank is ``total_bytes_per_rank // block_size``.
    """
    nobj = max(1, total_bytes_per_rank // block_size)
    return dict(base_args, block_size=block_size, nobj=nobj)


def sweep_block_sizes(
    framework_factory: Any,
    workload: Any,
    base_args: Dict[str, Any],
    block_sizes: Iterable[int],
    total_bytes_per_rank: int,
    config: Optional[TestbedConfig] = None,
    nprocs: Optional[int] = None,
    seed: Optional[int] = None,
    jobs: int = 1,
    cache: Optional[Any] = None,
    telemetry: bool = False,
    progress: Optional[Callable] = None,
    store: Optional[str] = None,
    store_codec: str = "v1",
) -> List[Any]:
    """Measure overhead across block sizes at constant bytes per rank.

    With the defaults this is the original serial protocol and returns
    :class:`OverheadMeasurement` objects (carrying live trace bundles).
    Passing ``jobs > 1``, a :class:`~repro.harness.runcache.RunCache`, a
    pickle-safe framework spec (a :class:`~repro.harness.parallel.FrameworkSpec`
    or registered factory name instead of a closure), ``telemetry=True``,
    a ``store`` archive root (each point then ingests its traced bundle
    into that TraceBank), or a ``progress`` callback routes the sweep through
    :func:`repro.harness.parallel.run_sweep` and returns
    :class:`~repro.harness.parallel.PointResult` objects — same overhead
    numbers and fingerprints, no live simulator state.
    """
    from repro.harness.parallel import FrameworkSpec, build_sweep_specs, run_sweep

    if (
        jobs != 1
        or cache is not None
        or telemetry
        or store is not None
        or progress is not None
        or isinstance(framework_factory, (FrameworkSpec, str))
    ):
        specs = build_sweep_specs(
            framework_factory,
            workload,
            base_args,
            block_sizes,
            total_bytes_per_rank,
            config=config,
            nprocs=nprocs,
            seed=seed,
            telemetry=telemetry,
            store=store,
            store_codec=store_codec,
        )
        return run_sweep(specs, jobs=jobs, cache=cache, progress=progress).points
    if isinstance(workload, str):
        from repro.harness.parallel import WORKLOADS

        workload = WORKLOADS[workload]
    out: List[OverheadMeasurement] = []
    for bs in block_sizes:
        args = sweep_args_for_block_size(base_args, bs, total_bytes_per_rank)
        out.append(
            measure_overhead(framework_factory, workload, args, config, nprocs, seed)
        )
    return out
