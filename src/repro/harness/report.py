"""Paper-style text rendering of harness results."""

from __future__ import annotations

from typing import Iterable, List

from repro.harness.experiment import OverheadMeasurement
from repro.harness.figures import FigureSeries
from repro.units import format_bandwidth, format_size

__all__ = ["render_figure", "render_measurements", "render_overhead_range"]

_FIGURE_TITLES = {
    2: "Figure 2. LANL-Trace overhead, N procs -> 1 file, strided",
    3: "Figure 3. LANL-Trace overhead, N procs -> 1 file, non-strided",
    4: "Figure 4. LANL-Trace overhead, N procs -> N files",
}


def render_figure(series: FigureSeries) -> str:
    """One figure as the paper's data series, in a text table."""
    title = _FIGURE_TITLES.get(
        series.figure_number, "Figure %d" % series.figure_number
    )
    lines = [
        title,
        "pattern=%s nprocs=%d" % (series.pattern.value, series.nprocs),
        "%-10s %16s %16s %12s %12s"
        % ("block", "untraced BW", "traced BW", "BW ovh", "elapsed ovh"),
        "-" * 72,
    ]
    for p in series.points:
        if getattr(p, "error", None):
            lines.append(
                "%-10s   FAILED: %s" % (format_size(p.block_size), p.error)
            )
            continue
        lines.append(
            "%-10s %16s %16s %11.1f%% %11.1f%%"
            % (
                format_size(p.block_size),
                format_bandwidth(p.untraced_bandwidth),
                format_bandwidth(p.traced_bandwidth),
                100.0 * p.bandwidth_overhead,
                100.0 * p.elapsed_overhead,
            )
        )
    return "\n".join(lines) + "\n"


def render_measurements(
    measurements: Iterable[OverheadMeasurement], label: str = ""
) -> str:
    """Generic sweep rendering (one row per measurement)."""
    lines: List[str] = []
    if label:
        lines.append(label)
    lines.append(
        "%-34s %12s %12s" % ("parameters", "BW ovh", "elapsed ovh")
    )
    lines.append("-" * 62)
    for m in measurements:
        params = ", ".join(
            "%s=%s" % (k, format_size(v) if k == "block_size" else v)
            for k, v in sorted(m.params.items())
            if k in ("block_size", "nobj", "pattern")
        )
        lines.append(
            "%-34s %11.1f%% %11.1f%%"
            % (params, 100.0 * m.bandwidth_overhead, 100.0 * m.elapsed_overhead)
        )
    return "\n".join(lines) + "\n"


def render_overhead_range(bounds: dict, paper_min: float, paper_max: float) -> str:
    """The §4.1.1 headline comparison line."""
    return (
        "elapsed time overhead: measured %.0f%% - %.0f%%  (paper: %.0f%% - %.0f%%)\n"
        % (100 * bounds["min"], 100 * bounds["max"], paper_min, paper_max)
    )
